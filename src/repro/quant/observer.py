"""Range observers that track quantisation scales across steps.

A fixed per-batch max-abs scale is noisy; production INT8 training
tracks ranges with a running estimate.  Both variants are provided and
ablatable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxObserver", "EmaObserver"]


class MinMaxObserver:
    """Scale = running max of |x| / qmax (never shrinks)."""

    def __init__(self, qmax: int):
        self.qmax = qmax
        self._peak = 0.0

    def observe(self, x: np.ndarray) -> None:
        self._peak = max(self._peak, float(np.abs(x).max()))

    @property
    def scale(self) -> float:
        return self._peak / self.qmax if self._peak > 0 else 1.0


class EmaObserver:
    """Scale from an exponential moving average of the batch peak."""

    def __init__(self, qmax: int, momentum: float = 0.95):
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.qmax = qmax
        self.momentum = momentum
        self._ema: float | None = None

    def observe(self, x: np.ndarray) -> None:
        self.update(float(np.abs(x).max()))

    def update(self, peak: float) -> None:
        """Fold one batch peak into the EMA.

        Split out of :meth:`observe` so callers that already hold the
        batch peak (the compiled graph executor computes it into a
        preallocated scratch buffer) run the *same* EMA arithmetic —
        the scale trajectory is bit-identical either way.
        """
        if self._ema is None:
            self._ema = peak
        else:
            self._ema = self.momentum * self._ema + (1 - self.momentum) * peak

    @property
    def scale(self) -> float:
        if self._ema is None or self._ema == 0.0:
            return 1.0
        return self._ema / self.qmax
