"""Figure 14: accuracy-vs-time curves of the mixed-precision algorithm.

Four modes: Ours-FP32 (CPU only), Ours-INT8 (NPU only), Ours-Half
(fixed alpha = 0.7) and Ours-Mixed (dynamic alpha/beta).  The paper's
reading: Mixed combines INT8's speed with FP32's accuracy; the fixed
split misses both.
"""

from conftest import print_block

from repro.harness import format_table

MODES = {
    "Ours-FP32": dict(precision="fp32", mixed=False),
    "Ours-Mixed": dict(),
    "Ours-Half": dict(fixed_alpha=0.7),
    "Ours-INT8": dict(precision="int8"),
}
EPOCHS = 6


def test_fig14_precision_mode_curves(benchmark, suite):
    def compute():
        return {label: suite.run("vgg11", "socflow", max_epochs=EPOCHS,
                                 preset="bench", **options)
                for label, options in MODES.items()}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        per_epoch_h = result.sim_time_hours / result.epochs_run
        curve = " ".join(
            f"({(i + 1) * per_epoch_h:.3f}h,{100 * acc:.0f}%)"
            for i, acc in enumerate(result.accuracy_history))
        rows.append([label, round(result.sim_time_hours, 3),
                     round(100 * result.best_accuracy, 1), curve])
    print_block("Figure 14: accuracy-vs-time (VGG-11, first epochs)",
                format_table(["mode", "hours", "best_acc_pct",
                              "curve (time, acc)"], rows))

    time = {label: r.sim_time_hours for label, r in results.items()}
    acc = {label: r.best_accuracy for label, r in results.items()}

    # the speed ordering of the paper's x-axis
    assert time["Ours-INT8"] <= time["Ours-Mixed"] * 1.001
    assert time["Ours-Mixed"] < time["Ours-Half"] < time["Ours-FP32"]
    # Mixed reaches a usable accuracy while being much faster than FP32
    assert time["Ours-FP32"] / time["Ours-Mixed"] > 1.5
    assert acc["Ours-Mixed"] > 0.5 * acc["Ours-FP32"]
