"""Trace determinism (end-to-end).

Two runs with the same seed and fault schedule must export
byte-identical JSONL traces and metrics; turning tracing on must not
perturb the simulation (identical final weights and simulated clock).
"""

import numpy as np
import pytest

from repro.cluster import FaultSchedule, NicDegradation, SoCCrash
from repro.core import SoCFlow, SoCFlowOptions
from repro.harness import make_run_config
from repro.telemetry import Telemetry, to_jsonl


def _schedule():
    # the crash forces a rollback/re-group recovery; the deep NIC
    # degradation forces retry timeouts, i.e. nic_wait spans
    return FaultSchedule((SoCCrash(1, 3),
                          NicDegradation(1, 0, 0.2, recover_epoch=3)))


def _run(telemetry=None, seed=3):
    config = make_run_config("lenet5_fmnist", "quick", num_socs=16,
                             num_groups=4, max_epochs=3, seed=seed,
                             fault_schedule=_schedule(),
                             telemetry=telemetry)
    return SoCFlow(SoCFlowOptions()).train(config)


@pytest.fixture(scope="module")
def traced_runs():
    results = []
    for _ in range(2):
        telemetry = Telemetry.active()
        results.append((telemetry, _run(telemetry=telemetry)))
    return results


@pytest.fixture(scope="module")
def untraced_run():
    return _run(telemetry=None)


class TestByteIdenticalExports:
    def test_trace_jsonl_identical(self, traced_runs):
        (tel_a, _), (tel_b, _) = traced_runs
        a, b = to_jsonl(tel_a.tracer), to_jsonl(tel_b.tracer)
        assert a and a == b

    def test_metrics_jsonl_identical(self, traced_runs):
        (tel_a, _), (tel_b, _) = traced_runs
        a, b = tel_a.metrics.to_jsonl(), tel_b.metrics.to_jsonl()
        assert a and a == b

    def test_epoch_rows_identical(self, traced_runs):
        (tel_a, _), (tel_b, _) = traced_runs
        assert tel_a.epoch_rows == tel_b.epoch_rows


class TestTracingIsSideEffectFree:
    def test_final_weights_identical(self, traced_runs, untraced_run):
        (_, traced) = traced_runs[0]
        state_t = traced.extra["final_state"]
        state_u = untraced_run.extra["final_state"]
        assert set(state_t) == set(state_u)
        for key in state_t:
            assert np.array_equal(state_t[key], state_u[key]), key

    def test_simulated_clock_identical(self, traced_runs, untraced_run):
        (_, traced) = traced_runs[0]
        assert traced.sim_time_s == untraced_run.sim_time_s
        assert traced.breakdown == untraced_run.breakdown

    def test_accuracy_and_recoveries_identical(self, traced_runs,
                                               untraced_run):
        (_, traced) = traced_runs[0]
        assert traced.accuracy_history == untraced_run.accuracy_history
        assert traced.extra["recoveries"] == untraced_run.extra["recoveries"]
        assert (traced.extra["network_retries"]
                == untraced_run.extra["network_retries"])


class TestFaultRunSpanContent:
    def test_required_kinds_present(self, traced_runs):
        (telemetry, _) = traced_runs[0]
        kinds = {r.kind for r in telemetry.tracer.records}
        for want in ("compute", "allreduce", "leader_sync", "nic_wait",
                     "recovery", "fault", "epoch"):
            assert want in kinds, want

    def test_compute_spans_have_soc_pcb_lg(self, traced_runs):
        (telemetry, _) = traced_runs[0]
        computes = [r for r in telemetry.tracer.records
                    if r.kind == "compute"]
        assert computes
        topo = telemetry.topology
        for record in computes:
            assert record.soc is not None and record.lg is not None
            assert record.pcb == topo.pcb_of(record.soc)

    def test_nic_wait_spans_carry_pcb_and_retries(self, traced_runs):
        (telemetry, _) = traced_runs[0]
        waits = [r for r in telemetry.tracer.records if r.kind == "nic_wait"]
        assert waits
        assert any(r.args.get("retries", 0) > 0 for r in waits)
        assert all(r.pcb is not None for r in waits)

    def test_allreduce_spans_carry_cg(self, traced_runs):
        (telemetry, _) = traced_runs[0]
        reduces = [r for r in telemetry.tracer.records
                   if r.kind == "allreduce"]
        assert reduces and all(r.cg is not None for r in reduces)

    def test_recovery_span_matches_result(self, traced_runs):
        (telemetry, result) = traced_runs[0]
        recoveries = [r for r in telemetry.tracer.records
                      if r.kind == "recovery" and r.ph == "X"]
        assert len(recoveries) == len(result.extra["recoveries"])
        span = recoveries[0]
        assert span.dur_s > 0
        assert span.args["dead_socs"] == [3]

    def test_timeline_monotone_nonnegative(self, traced_runs):
        (telemetry, result) = traced_runs[0]
        for record in telemetry.tracer.records:
            assert record.ts_s >= 0
            assert record.ts_s + record.dur_s <= result.sim_time_s + 1e-9

    def test_metrics_cover_nic_and_phases(self, traced_runs):
        (telemetry, _) = traced_runs[0]
        names = {row["name"] for row in telemetry.metrics.collect()}
        for want in ("nic.bytes", "net.retries", "phase.seconds",
                     "epoch.seconds", "recovery.count", "faults.injected"):
            assert want in names, want
