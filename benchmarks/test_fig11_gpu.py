"""Figure 11: SoCFlow on the full 60-SoC server vs datacenter GPUs.

(a/c) Snapdragon 865 cluster vs NVIDIA V100;
(b/d) Snapdragon 8gen1 cluster vs NVIDIA A100.
The paper's claim: comparable training speed (0.80-2.79x) with
2.31-10.23x lower energy.
"""

from dataclasses import replace

from conftest import print_block

from repro.cluster import ClusterTopology
from repro.cluster.spec import SOC_REGISTRY
from repro.core import SoCFlow
from repro.harness import (format_table, gpu_energy_kj, gpu_training_time_s,
                           make_run_config)

PAIRS = [("sd865", "v100"), ("sd8gen1", "a100")]
WORKLOADS_FIG11 = ["vgg11", "resnet18", "lenet5_emnist", "lenet5_fmnist"]


def _socflow_result(workload: str, soc_name: str):
    config = make_run_config(workload, "quick", num_socs=60, num_groups=12,
                             max_epochs=3)
    topology = ClusterTopology(num_socs=60, soc=SOC_REGISTRY[soc_name])
    return SoCFlow().train(replace(config, topology=topology)), config


def test_fig11_gpu_comparison(benchmark):
    def compute():
        table = {}
        for soc_name, gpu_name in PAIRS:
            for workload in WORKLOADS_FIG11:
                ours, config = _socflow_result(workload, soc_name)
                gpu_s = gpu_training_time_s(
                    gpu_name, config.model_name, ours.epochs_run,
                    config.sim_samples_per_epoch)
                table[(soc_name, gpu_name, workload)] = (
                    ours.sim_time_hours, gpu_s / 3600,
                    ours.energy.total_kj, gpu_energy_kj(gpu_name, gpu_s))
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    for soc_name, gpu_name in PAIRS:
        rows = []
        for workload in WORKLOADS_FIG11:
            ours_h, gpu_h, ours_kj, gpu_kj = table[(soc_name, gpu_name,
                                                    workload)]
            rows.append([workload, round(ours_h, 3), round(gpu_h, 3),
                         round(ours_kj, 1), round(gpu_kj, 1),
                         round(gpu_h / ours_h, 2),
                         round(gpu_kj / ours_kj, 2)])
        print_block(
            f"Figure 11: {soc_name} x60 vs {gpu_name}",
            format_table(["workload", "ours_h", "gpu_h", "ours_kJ",
                          "gpu_kJ", "speedup", "energy_saving"], rows))

    for soc_name, gpu_name in PAIRS:
        for workload in WORKLOADS_FIG11:
            ours_h, gpu_h, ours_kj, gpu_kj = table[(soc_name, gpu_name,
                                                    workload)]
            # comparable speed: paper band 0.80-2.79x, allow slack
            assert 0.4 <= gpu_h / ours_h <= 6.0, (workload, gpu_name)
            # energy: SoC cluster always cheaper
            assert gpu_kj > ours_kj, (workload, gpu_name)

    savings = [table[("sd865", "v100", w)][3] / table[("sd865", "v100", w)][2]
               for w in WORKLOADS_FIG11]
    # paper: 2.31-10.23x; require >1x everywhere and the LeNet rows to
    # show the order-of-magnitude saving
    assert min(savings) > 1.0
    assert max(savings) > 8.0
