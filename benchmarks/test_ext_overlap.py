"""Extension: bucketed gradient fusion with comm/compute overlap.

A Fig.-8-style epoch-time comparison with the fusion knobs off vs on
(``--fusion-threshold-mb 4``).  The overlap timeline starts each
gradient bucket's collective as soon as backward has produced it, so
strategies whose sync is long relative to the §4.1 baseline hiding
(PS incast above all) finish the epoch strictly earlier; SoCFlow's
CG-planned pipeline already hides its sync under the full compute
window, so fusion leaves its clock exactly unchanged (the adaptive
clamp at work) — the breakdown still attributes the hidden share.

Writes the epoch-breakdown report to ``$BENCH_OVERLAP_OUT`` when set
(CI uploads it as a workflow artifact).
"""

import json
import os

from conftest import print_block

from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.harness import format_table
from repro.telemetry import Telemetry, Tracer, MetricsRegistry
from repro.telemetry.export import render_epoch_table

REPORT_ENV = "BENCH_OVERLAP_OUT"
THRESHOLD_MB = 4.0
#: Fig. 8 rows exercised here: the compute-heavy ResNet-18 panel is
#: where overlap has room to win; VGG11 pins the clamp's "never
#: slower" guarantee on a sync-dominated workload.
WORKLOADS = ["resnet18", "vgg11"]
METHODS = ["ps", "ring", "socflow"]
EPOCHS = 2


def run(suite, workload, method, fused, telemetry=None):
    config = suite.config(workload, num_socs=16, max_epochs=EPOCHS,
                          **(dict(fusion_threshold_mb=THRESHOLD_MB)
                             if fused else {}))
    if telemetry is not None:
        import dataclasses
        config = dataclasses.replace(config, telemetry=telemetry)
    if method == "socflow":
        return SoCFlow(SoCFlowOptions()).train(config)
    return build_strategy(method).train(config)


def hidden_fraction(result):
    hidden = result.extra.get("sync_hidden_s", 0.0)
    visible = result.breakdown.get("sync", 0.0)
    busy = hidden + visible
    return hidden / busy if busy > 0 else 0.0


def test_overlap_epoch_time(benchmark, suite):
    def compute():
        out = {}
        for workload in WORKLOADS:
            for method in METHODS:
                out[workload, method] = (
                    run(suite, workload, method, fused=False),
                    run(suite, workload, method, fused=True))
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows, report = [], {"threshold_mb": THRESHOLD_MB, "epochs": EPOCHS,
                        "rows": []}
    for (workload, method), (ref, fused) in sorted(results.items()):
        epoch_ref = ref.sim_time_s / ref.epochs_run
        epoch_fused = fused.sim_time_s / fused.epochs_run
        frac = hidden_fraction(fused)
        rows.append([workload, method, round(epoch_ref, 2),
                     round(epoch_fused, 2),
                     round(100 * (1 - epoch_fused / epoch_ref), 2),
                     round(100 * frac, 1)])
        report["rows"].append({
            "workload": workload, "method": method,
            "epoch_s_unfused": epoch_ref, "epoch_s_fused": epoch_fused,
            "comm_hidden_fraction": frac,
            "sync_hidden_s": fused.extra.get("sync_hidden_s", 0.0),
            "sync_visible_s": fused.breakdown.get("sync", 0.0)})
    print_block(
        f"ext-6: epoch time, fusion off vs on ({THRESHOLD_MB} MB buckets)",
        format_table(["workload", "method", "epoch_s", "epoch_s_fused",
                      "saved_pct", "hidden_pct"], rows))

    # per-epoch breakdown (with the hidden column) for the artifact
    telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
    traced = run(suite, "resnet18", "socflow", fused=True,
                 telemetry=telemetry)
    epoch_table = render_epoch_table(telemetry.epoch_rows)
    print_block("ext-6: fused SoCFlow resnet18 epoch breakdown", epoch_table)
    report["epoch_breakdown"] = telemetry.epoch_rows
    assert any(row.get("hidden_s") for row in telemetry.epoch_rows)
    assert traced.accuracy_history == \
        results["resnet18", "socflow"][1].accuracy_history

    out = os.environ.get(REPORT_ENV)
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for (workload, method), (ref, fused) in results.items():
        # fusion never changes what is learned, and never loses time
        assert fused.accuracy_history == ref.accuracy_history, \
            (workload, method)
        assert fused.sim_time_s <= ref.sim_time_s, (workload, method)
        assert hidden_fraction(fused) > 0.0, (workload, method)
    # the headline claim: overlap strictly shortens the epoch on the
    # compute-heavy Fig. 8 panel for the incast-bound baseline
    ref, fused = results["resnet18", "ps"]
    assert fused.sim_time_s < ref.sim_time_s
    # SoCFlow's planned pipeline already overlapped: exact tie, by clamp
    ref, fused = results["resnet18", "socflow"]
    assert fused.sim_time_s == ref.sim_time_s
