"""Deep Gradient Compression (Lin et al., ICLR'18) — HiPress's sparsifier.

Per parameter tensor, only the top ``ratio`` fraction of gradient
entries by magnitude is transmitted; the rest accumulates locally in a
residual and is folded into later rounds.  This is the algorithm the
HiPress baseline (Bai et al., SOSP'21) plugs into its synchronisation
pipeline, and it is applied *for real* here so its accuracy effect is
measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseGradient", "DgcCompressor"]


@dataclass(frozen=True)
class SparseGradient:
    """A compressed gradient tensor: values at flat indices."""

    indices: np.ndarray
    values: np.ndarray
    shape: tuple[int, ...]

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def wire_bytes(self) -> int:
        """4-byte value + 4-byte index per kept entry."""
        return 8 * self.nnz

    def densify(self) -> np.ndarray:
        dense = np.zeros(int(np.prod(self.shape)), dtype=np.float32)
        dense[self.indices] = self.values
        return dense.reshape(self.shape)


class DgcCompressor:
    """Top-k sparsification with local residual accumulation.

    Parameters
    ----------
    ratio:
        Fraction of entries kept per tensor (DGC's headline setting is
        0.001–0.01; HiPress evaluates at 0.01).
    min_keep:
        Lower bound on kept entries so tiny tensors still synchronise.
    """

    def __init__(self, ratio: float = 0.01, min_keep: int = 1):
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.min_keep = min_keep
        self._residuals: dict[str, np.ndarray] = {}

    def compress(self, name: str, grad: np.ndarray) -> SparseGradient:
        """Sparsify ``grad``; dropped mass is remembered for next time."""
        residual = self._residuals.get(name)
        if residual is None:
            residual = np.zeros_like(grad)
        accumulated = grad + residual
        flat = accumulated.ravel()
        keep = max(self.min_keep, int(round(self.ratio * flat.size)))
        keep = min(keep, flat.size)
        if keep == flat.size:
            top = np.arange(flat.size)
        else:
            top = np.argpartition(np.abs(flat), -keep)[-keep:]
        values = flat[top].astype(np.float32)
        new_residual = accumulated.copy()
        new_residual.ravel()[top] = 0.0
        self._residuals[name] = new_residual
        return SparseGradient(top.astype(np.int64), values, grad.shape)

    def compression_ratio(self) -> float:
        """Wire bytes relative to a dense FP32 transfer (value+index)."""
        return 2.0 * self.ratio

    def reset(self) -> None:
        self._residuals.clear()
