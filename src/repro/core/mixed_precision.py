"""Per-group mixed-precision execution (§3.2).

One :class:`GroupMixedTrainer` embodies a logical group: because the
group synchronises every batch, its SoCs' CPU sub-batches are
mathematically one FP32 SGD step and its NPU sub-batches one INT8 step
(DESIGN.md decision 2).  Each batch is split by the controller's
``max(e^-alpha, 1-beta)`` rule, both paths step, and the weights merge
on-chip via Eq. 5 before the (instantaneous-in-math) intra-group ring.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..distributed.base import RunConfig, fp32_train_step, make_model
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from ..quant.int8 import QuantConfig
from ..quant.mixed import MixedPrecisionController, merge_weights
from ..quant.trainer import Int8Trainer
from ..telemetry import NULL_TELEMETRY

__all__ = ["GroupMixedTrainer"]


class GroupMixedTrainer:
    """FP32(CPU) + INT8(NPU) replica pair for one logical group."""

    def __init__(self, config: RunConfig,
                 controller: MixedPrecisionController,
                 quant_config: QuantConfig, seed_offset: int = 0,
                 mixed: bool = True):
        self.config = config
        self.controller = controller
        self.mixed = mixed
        self.telemetry = (config.telemetry if config.telemetry is not None
                          else NULL_TELEMETRY)
        self.fp32 = make_model(config, seed_offset=seed_offset)
        self.fp32_opt = SGD(self.fp32.parameters(), lr=config.lr,
                            momentum=config.momentum,
                            weight_decay=config.weight_decay,
                            flat=self.fp32.flatten_parameters())
        if config.graph:
            # Trace-once/replay-many FP32 step; replays are bit-identical,
            # so group results match the eager trainer exactly.
            self.fp32.enable_graph_executor()
        self.int8: Int8Trainer | None = None
        if mixed:
            int8_model = make_model(config, seed_offset=seed_offset)
            int8_model.load_state_dict(self.fp32.state_dict())
            self.int8 = Int8Trainer(int8_model, lr=config.lr,
                                    config=quant_config,
                                    momentum=config.momentum,
                                    weight_decay=config.weight_decay,
                                    seed=config.seed + seed_offset)
            if config.graph:
                # The INT8 replica honours the flag too: the whole
                # quantised step (weight/input/gradient fake-quant and
                # the stochastic-rounding RNG stream included) compiles
                # to the same arena machinery.  Where capture cannot
                # succeed the executor stays attached in fallback mode
                # so ``graph.int8_fallbacks`` is reported, not dropped.
                self.int8.enable_graph_executor()

    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> None:
        """One group step: split, dual step, Eq. 5 merge."""
        if not self.mixed or self.int8 is None:
            fp32_train_step(self.fp32, self.fp32_opt, x, y)
            return
        cpu_n, npu_n = self.controller.split_batch(len(x))
        if cpu_n:
            fp32_train_step(self.fp32, self.fp32_opt, x[:cpu_n], y[:cpu_n])
        if npu_n:
            self.int8.train_step(x[cpu_n:], y[cpu_n:])
        merged = merge_weights(self.fp32.state_dict(),
                               self.int8.model.state_dict(),
                               self.controller.alpha)
        self._load_both(merged)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            # Real-execution (not simulated-scale) split accounting: how
            # many samples each processor actually trained, per Eq. 5
            # merge performed.
            metrics.counter("mixed.cpu_samples").inc(cpu_n)
            metrics.counter("mixed.npu_samples").inc(npu_n)
            metrics.counter("mixed.merges").inc()

    def _load_both(self, state: "OrderedDict[str, np.ndarray]") -> None:
        self.fp32.load_state_dict(state)
        if self.int8 is not None:
            self.int8.model.load_state_dict(state)

    # ------------------------------------------------------------------
    def update_alpha(self, val_x: np.ndarray) -> float:
        """Profile FP32/INT8 logits on the validation set (per epoch)."""
        if not self.mixed or self.int8 is None:
            return self.controller.alpha
        self.fp32.eval()
        with no_grad():
            logits_fp32 = self.fp32(Tensor(val_x)).data
        logits_int8 = self.int8.predict_logits(val_x)
        return self.controller.update_alpha(logits_fp32, logits_int8)

    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return self.fp32.state_dict()

    def load_state(self, state: "OrderedDict[str, np.ndarray]") -> None:
        self._load_both(state)

    # ------------------------------------------------------------------
    @staticmethod
    def _module_rng_states(model) -> list:
        """RNG state of every stateful-layer generator (e.g. Dropout)."""
        return [m.rng.bit_generator.state for m in model.modules()
                if getattr(m, "rng", None) is not None]

    @staticmethod
    def _load_module_rng_states(model, states: list) -> None:
        holders = [m for m in model.modules()
                   if getattr(m, "rng", None) is not None]
        for module, rng_state in zip(holders, states):
            module.rng.bit_generator.state = rng_state

    def runtime_state(self) -> dict:
        """Every mutable input of ``train_batch``, picklable, so a worker
        process can resume this group bit-identically mid-run.

        The controller is deliberately excluded: within an epoch it is
        read-only (alpha/beta update only at epoch boundaries), so the
        executor ships its two scalars separately.
        """
        state = {
            "fp32": self.fp32.state_dict(),
            "fp32_opt": self.fp32_opt.state_dict(),
            "fp32_rngs": self._module_rng_states(self.fp32),
        }
        if self.int8 is not None:
            state["int8"] = self.int8.runtime_state()
            state["int8_rngs"] = self._module_rng_states(self.int8.model)
        return state

    def load_runtime_state(self, state: dict) -> None:
        self.fp32.load_state_dict(state["fp32"])
        self.fp32_opt.load_state_dict(state["fp32_opt"])
        self._load_module_rng_states(self.fp32, state["fp32_rngs"])
        if self.int8 is not None and "int8" in state:
            self.int8.load_runtime_state(state["int8"])
            self._load_module_rng_states(self.int8.model,
                                         state["int8_rngs"])

    def set_lr(self, lr: float) -> None:
        self.fp32_opt.lr = lr
        if self.int8 is not None:
            self.int8.lr = lr

    # ------------------------------------------------------------------
    def graph_stats(self) -> dict | None:
        """Per-precision graph-executor counters, or ``None`` when the
        graph flag is off (neither replica has an executor)."""
        stats = {}
        fp32_exec = getattr(self.fp32, "_graph_exec", None)
        if fp32_exec is not None:
            stats["fp32"] = fp32_exec.snapshot()
        if self.int8 is not None:
            int8_stats = self.int8.graph_stats()
            if int8_stats is not None:
                stats["int8"] = int8_stats
        return stats or None
