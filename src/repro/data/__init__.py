"""Synthetic stand-ins for the paper's datasets (offline substitution).

The paper trains on CIFAR-10, EMNIST, Fashion-MNIST, CelebA and
CINIC-10.  With no network access, :mod:`repro.data` generates
deterministic class-conditional image tasks with matching shapes and
class counts; every strategy sees the same data, so the relative
accuracy results the paper reports are preserved.
"""

from .synthetic import SyntheticImageTask, make_classification_images
from .datasets import DATASET_REGISTRY, DatasetSpec, load_dataset
from .loader import ArrayDataset, DataLoader, iid_partition, shard
from .partition import dirichlet_partition, label_distribution, skewness

__all__ = [
    "SyntheticImageTask", "make_classification_images",
    "DATASET_REGISTRY", "DatasetSpec", "load_dataset",
    "ArrayDataset", "DataLoader", "iid_partition", "shard",
    "dirichlet_partition", "label_distribution", "skewness",
]
