"""Extension: elastic multi-tenant scheduling vs a static window (ext-5).

Three tenants share a 16-SoC cluster whose day job is tidal user
sessions.  The elastic scheduler starts every job at its gang floor,
grows it into whatever the trace leaves idle (capped at ``max_socs``),
and shrinks or preempts when sessions reclaim chips.  The baseline is
the operator playbook the paper argues against: a fixed overnight
maintenance window in which each job only ever holds its ``min_socs``
floor.  Both policies run the same job file over the same simulated
day, so the comparison isolates the scheduling policy.

Expected outcome: the elastic run finishes every job, harvests
strictly more of the idle SoC-hours, and gives up nothing on final
accuracy.  When ``BENCH_ELASTIC_OUT`` is set the side-by-side report
is written there as JSON (CI uploads it as an artifact).
"""

import json
import os

from conftest import print_block

from repro.cluster import ClusterTopology
from repro.cluster.workload import SessionSimulator
from repro.harness import format_table
from repro.jobs import ElasticScheduler, TrainingJob

SOCS = 16
PEAK_SESSIONS = 30          # scaled to the 16-SoC cluster
HORIZON_HOURS = 12.0        # midnight trough through the morning ramp
STATIC_WINDOW = (0.0, 6.0)  # the operator's overnight window
REPORT_ENV = "BENCH_ELASTIC_OUT"

#: One job file, two policies.  Mixed sizes and priorities so the
#: fair-share surplus and the gang floors both matter.
JOBS = (
    # mobilenet's warm-up admits only large groups at quick scale
    # (Eq. 1: splitting it across more groups costs accuracy it cannot
    # recover in 3 epochs), so growth adds SoCs inside the group
    TrainingJob(id="mobilenet-nightly", workload="mobilenet", priority=3,
                min_socs=4, max_socs=12, epochs=3, target_group_size=8),
    TrainingJob(id="fmnist-batch", workload="lenet5_fmnist", priority=2,
                min_socs=2, max_socs=8, epochs=3),
    TrainingJob(id="emnist-batch", workload="lenet5_emnist", priority=1,
                min_socs=2, max_socs=8, epochs=3, submit_hour=0.5),
)


def run_policy(elastic: bool):
    topology = ClusterTopology(num_socs=SOCS)
    sessions = SessionSimulator(
        topology, peak_sessions_per_hour=PEAK_SESSIONS,
        seed=0).simulate_day()
    kwargs = {} if elastic else {"elastic": False, "window": STATIC_WINDOW}
    scheduler = ElasticScheduler(topology, sessions,
                                 horizon_hours=HORIZON_HOURS, **kwargs)
    for job in JOBS:
        scheduler.submit(job)
    return scheduler.run()


def comparison_report(elastic, static) -> dict:
    return {
        "socs": SOCS,
        "horizon_hours": HORIZON_HOURS,
        "static_window": list(STATIC_WINDOW),
        "elastic": elastic.to_dict(),
        "static": static.to_dict(),
        "utilisation_gain": round(
            elastic.utilisation - static.utilisation, 6),
    }


def test_elastic_beats_static_overnight_window(benchmark):
    def compute():
        return run_policy(elastic=True), run_policy(elastic=False)

    elastic, static = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, report in (("elastic", elastic), ("static", static)):
        rows.append([label, round(100 * report.utilisation, 1),
                     round(report.used_soc_hours, 1),
                     round(report.available_soc_hours, 1),
                     len(report.completed), report.rounds])
    print_block("ext-5: elastic vs static overnight window",
                format_table(["policy", "util_pct", "used_soc_h",
                              "avail_soc_h", "completed", "rounds"], rows))
    acc_rows = [[job.id,
                 round(100 * elastic.jobs[job.id].final_accuracy, 1),
                 round(100 * static.jobs[job.id].final_accuracy, 1),
                 elastic.jobs[job.id].resizes,
                 round(elastic.jobs[job.id].soc_hours, 1),
                 round(static.jobs[job.id].soc_hours, 1)]
                for job in JOBS]
    print_block("ext-5: per-job accuracy and footprint",
                format_table(["job", "elastic_acc", "static_acc",
                              "resizes", "elastic_soc_h", "static_soc_h"],
                             acc_rows))

    out = os.environ.get(REPORT_ENV)
    if out:
        with open(out, "w") as fh:
            json.dump(comparison_report(elastic, static), fh, indent=2,
                      sort_keys=True)

    # every tenant finishes its full epoch budget under both policies,
    # so the accuracy comparison is like for like
    assert elastic.completed == sorted(j.id for j in JOBS)
    assert static.completed == sorted(j.id for j in JOBS)
    for job in JOBS:
        assert elastic.jobs[job.id].epochs_done == job.epochs
        # elastic growth re-shards the data over more groups; it must
        # not cost accuracy (beyond quick-scale noise)
        assert (elastic.jobs[job.id].final_accuracy
                >= static.jobs[job.id].final_accuracy - 0.03)
    # the headline claim: elastic harvests strictly more idle capacity
    assert elastic.used_soc_hours > static.used_soc_hours
    assert elastic.utilisation > static.utilisation
    # and it actually used the elasticity, not just bigger gangs
    assert sum(r.resizes for r in elastic.jobs.values()) >= 1
    assert all(r.resizes == 0 for r in static.jobs.values())
