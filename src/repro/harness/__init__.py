"""Experiment harness: one entry point per paper table/figure.

Each ``run_*`` function builds the workloads at a chosen scale preset,
executes the real strategies, and returns structured rows; the
``benchmarks/`` suite calls these and prints the same series the paper
reports (see EXPERIMENTS.md for paper-vs-measured).
"""

from .experiments import (SCALE_PRESETS, WORKLOADS, ScalePreset, Workload,
                          make_run_config, prepare_task, pretrain_for_transfer)
from .gpu import gpu_training_time_s, gpu_energy_kj
from .reporting import format_table, format_series

__all__ = [
    "SCALE_PRESETS", "WORKLOADS", "ScalePreset", "Workload",
    "make_run_config", "prepare_task", "pretrain_for_transfer",
    "gpu_training_time_s", "gpu_energy_kj", "format_table", "format_series",
]
