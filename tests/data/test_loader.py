"""DataLoader, sharding and IID partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import ArrayDataset, DataLoader, iid_partition, shard


def dataset(n=100):
    x = np.arange(n, dtype=np.float32).reshape(n, 1)
    y = np.arange(n, dtype=np.int64)
    return ArrayDataset(x, y)


class TestArrayDataset:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1)), np.zeros(4))

    def test_indexing(self):
        ds = dataset(10)
        x, y = ds[3]
        assert y == 3


class TestDataLoader:
    def test_batch_count_without_drop(self):
        loader = DataLoader(dataset(10), batch_size=3, shuffle=False)
        assert len(loader) == 4
        batches = list(loader)
        assert len(batches[-1][0]) == 1

    def test_drop_last(self):
        loader = DataLoader(dataset(10), batch_size=3, shuffle=False,
                            drop_last=True)
        assert len(loader) == 3
        assert all(len(x) == 3 for x, _ in loader)

    def test_covers_every_sample_once(self):
        loader = DataLoader(dataset(50), batch_size=7, shuffle=True, seed=3)
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen.tolist()) == list(range(50))

    def test_shuffle_changes_order_across_epochs(self):
        loader = DataLoader(dataset(50), batch_size=50, shuffle=True, seed=3)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(dataset(10), batch_size=4, shuffle=False)
        x, y = next(iter(loader))
        np.testing.assert_array_equal(y, [0, 1, 2, 3])

    def test_reshuffle_resets_stream(self):
        loader = DataLoader(dataset(20), batch_size=20, shuffle=True, seed=5)
        a = next(iter(loader))[1].copy()
        loader.reshuffle(5)
        b = next(iter(loader))[1].copy()
        np.testing.assert_array_equal(a, b)

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(dataset(), batch_size=0)


class TestSharding:
    def test_strided_shards_disjoint_and_complete(self):
        ds = dataset(10)
        shards = [shard(ds.x, ds.y, 3, i) for i in range(3)]
        labels = np.concatenate([s.y for s in shards])
        assert sorted(labels.tolist()) == list(range(10))

    def test_shard_index_validation(self):
        ds = dataset(10)
        with pytest.raises(ValueError):
            shard(ds.x, ds.y, 3, 3)

    @given(st.integers(1, 16), st.integers(16, 200))
    @settings(max_examples=30, deadline=None)
    def test_iid_partition_complete_and_balanced(self, parts, n):
        x = np.arange(n, dtype=np.float32).reshape(n, 1)
        y = np.arange(n, dtype=np.int64)
        partition = iid_partition(x, y, parts, seed=0)
        assert len(partition) == parts
        all_labels = np.concatenate([p.y for p in partition])
        assert sorted(all_labels.tolist()) == list(range(n))
        sizes = [len(p) for p in partition]
        assert max(sizes) - min(sizes) <= 1

    def test_iid_partition_validation(self):
        with pytest.raises(ValueError):
            iid_partition(np.zeros((4, 1)), np.zeros(4), 0)
