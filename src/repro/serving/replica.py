"""Per-SoC serving replicas: service-time model and batching queues.

A replica is one SoC running one model's inference server.  Its
service time comes from the same Figure-4a calibration the training
:class:`~repro.distributed.base.CostModel` uses: the measured per-sample
NPU *training* latency (forward + backward + update) is scaled to the
hosting SoC's NPU throughput, then divided by
``INFERENCE_TRAIN_RATIO`` for the forward-only pass.  Batching
amortises a fixed launch overhead across the batch, which is why
replicas queue requests instead of serving them one by one — and why
latency has a load-dependent tail the SLO must police.

The queue itself lives in :class:`~repro.serving.plane.ServingPlane`
(it is shared, so a scale-up can drain a backlog); a replica only
tracks when its NPU frees up and how much work it has done.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.spec import SOC_REGISTRY, SoCSpec, model_profile

__all__ = ["ServiceModel", "Replica"]

#: forward-only inference cost as a share of the measured
#: forward+backward+update training step (the backward pass is ~2x the
#: forward at these depths, so serving one sample costs about a third
#: of training on it).
INFERENCE_TRAIN_RATIO = 1.0 / 3.0


@dataclass(frozen=True)
class ServiceModel:
    """Calibrated inference timing for one model on one SoC type.

    ``per_request_s`` is the marginal cost of one more request in a
    batch; ``batch_overhead_s`` is the fixed cost of launching a batch
    (graph dispatch, DMA setup).  ``batch_seconds(n)`` is the service
    time of an ``n``-request batch.
    """

    model_name: str
    per_request_s: float
    batch_overhead_s: float
    max_batch: int

    def __post_init__(self):
        if self.per_request_s <= 0:
            raise ValueError("per_request_s must be positive")
        if self.batch_overhead_s < 0:
            raise ValueError("batch_overhead_s must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    @classmethod
    def for_model(cls, model_name: str, *, soc: SoCSpec | None = None,
                  max_batch: int = 8,
                  batch_overhead_s: float = 0.015) -> "ServiceModel":
        """Derive from the shared calibration (same rule as CostModel).

        Measured SD865 NPU latencies are rescaled to ``soc``'s NPU;
        models without a measurement fall back to FLOPs over sustained
        NPU throughput.  Either way the training-step time is scaled by
        :data:`INFERENCE_TRAIN_RATIO` for the forward-only pass.
        """
        soc = soc or SOC_REGISTRY["sd865"]
        profile = model_profile(model_name)
        sd865 = SOC_REGISTRY["sd865"]
        if profile.t_npu_sample_s is not None:
            train_s = profile.t_npu_sample_s * sd865.npu.flops / soc.npu.flops
        else:
            train_s = profile.flops_per_sample / soc.npu.flops
        return cls(model_name=model_name,
                   per_request_s=train_s * INFERENCE_TRAIN_RATIO,
                   batch_overhead_s=batch_overhead_s,
                   max_batch=max_batch)

    def batch_seconds(self, n: int) -> float:
        """Service time of an ``n``-request batch."""
        if not 1 <= n <= self.max_batch:
            raise ValueError(f"batch size {n} not in [1, {self.max_batch}]")
        return self.batch_overhead_s + n * self.per_request_s

    @property
    def peak_rps(self) -> float:
        """Best-case throughput: full batches back to back."""
        return self.max_batch / self.batch_seconds(self.max_batch)


class Replica:
    """One SoC's serving state: ready time, busy time, work counters."""

    def __init__(self, soc: int, service: ServiceModel, *,
                 ready_hour: float = 0.0):
        self.soc = soc
        self.service = service
        #: not schedulable before this (model load / warm-up on spin-up)
        self.ready_hour = ready_hour
        #: the NPU is occupied until this hour
        self.free_hour = ready_hour
        self.requests_served = 0
        self.batches = 0
        self.busy_s = 0.0

    def serve_batch(self, start_hour: float, n: int) -> float:
        """Run an ``n``-request batch starting at ``start_hour``.

        Returns the completion hour and advances the replica clock.
        """
        seconds = self.service.batch_seconds(n)
        self.free_hour = start_hour + seconds / 3600.0
        self.requests_served += n
        self.batches += 1
        self.busy_s += seconds
        return self.free_hour

    def utilisation(self, since_hour: float, until_hour: float) -> float:
        """Busy share of the replica's lifetime inside a window."""
        alive = max(0.0, until_hour - max(since_hour, self.ready_hour))
        if alive <= 0:
            return 0.0
        return min(1.0, (self.busy_s / 3600.0) / alive)
