"""Fused segment quantisation must match per-tensor quantisation bit
for bit, including the stochastic-rounding random stream."""

import numpy as np
import pytest

from repro.quant.int8 import (QuantConfig, SegmentQuantizer, fake_quantize,
                              fake_quantize_segments)


def segmented_array(sizes, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    flat = (rng.standard_normal(sum(sizes)) * scale).astype(np.float32)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    return flat, starts, np.asarray(sizes, dtype=np.int64)


def perkey_reference(flat, starts, sizes, config, rng=None):
    out = np.empty_like(flat)
    for start, size in zip(starts, sizes):
        seg = flat[start:start + size]
        out[start:start + size] = fake_quantize(seg, config, rng=rng)
    return out


SIZES = [64, 1, 300, 7, 128]


@pytest.mark.parametrize("bits", [8, 4])
def test_deterministic_rounding_matches_per_tensor(bits):
    config = QuantConfig(bits=bits, stochastic_rounding=False)
    flat, starts, sizes = segmented_array(SIZES)
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))


def test_stochastic_rounding_consumes_identical_rng_stream():
    config = QuantConfig(bits=8, stochastic_rounding=True)
    flat, starts, sizes = segmented_array(SIZES, seed=3)
    fused = fake_quantize_segments(flat, starts, sizes, config,
                                   rng=np.random.default_rng(42))
    perkey = perkey_reference(flat, starts, sizes, config,
                              rng=np.random.default_rng(42))
    assert np.array_equal(fused, perkey)


def test_rng_position_identical_after_call():
    config = QuantConfig(bits=8, stochastic_rounding=True)
    flat, starts, sizes = segmented_array(SIZES, seed=5)
    rng_fused = np.random.default_rng(7)
    rng_perkey = np.random.default_rng(7)
    fake_quantize_segments(flat, starts, sizes, config, rng=rng_fused)
    perkey_reference(flat, starts, sizes, config, rng=rng_perkey)
    # downstream draws must agree, i.e. both consumed the same stream
    assert np.array_equal(rng_fused.random(8), rng_perkey.random(8))


def test_zero_segment_uses_unit_scale():
    config = QuantConfig(bits=8, stochastic_rounding=False)
    flat, starts, sizes = segmented_array([16, 16, 16], seed=1)
    flat[16:32] = 0.0
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))
    assert np.all(fused[16:32] == 0.0)


def test_float16_format_matches_per_tensor():
    config = QuantConfig(float16=True)
    flat, starts, sizes = segmented_array(SIZES, seed=2)
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))


def test_extreme_magnitudes_match_per_tensor():
    config = QuantConfig(bits=8, stochastic_rounding=False)
    flat, starts, sizes = segmented_array([32, 32], seed=4, scale=1e30)
    flat[32:] *= 1e-60  # second segment tiny
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))


# ----------------------------------------------------------------------
# SegmentQuantizer: the preallocated in-place twin the graph executor
# replays — must be indistinguishable from the functional form.
# ----------------------------------------------------------------------

PREALLOC_CONFIGS = [
    QuantConfig(bits=8, stochastic_rounding=False),
    QuantConfig(bits=4, stochastic_rounding=False),
    QuantConfig(bits=8, stochastic_rounding=True),
    QuantConfig(float16=True),
]


@pytest.mark.parametrize("config", PREALLOC_CONFIGS,
                         ids=lambda c: c.format_name +
                         ("_sr" if c.stochastic_rounding else ""))
def test_prealloc_quantizer_matches_functional(config):
    flat, starts, sizes = segmented_array(SIZES, seed=6)
    stochastic = config.stochastic_rounding
    expected = fake_quantize_segments(
        flat, starts, sizes, config,
        rng=np.random.default_rng(11) if stochastic else None)
    quantizer = SegmentQuantizer(starts, sizes, config,
                                 stochastic=stochastic)
    inplace = flat.copy()
    quantizer(inplace,
              rng=np.random.default_rng(11) if stochastic else None)
    assert np.array_equal(inplace, expected)


def test_prealloc_quantizer_rng_stream_identical():
    """Replay after replay, the in-place form must leave the generator
    in the exact state the functional form would — the graph executor
    threads one RNG through many replays."""
    config = QuantConfig(bits=8, stochastic_rounding=True)
    rng_fn = np.random.default_rng(13)
    rng_pre = np.random.default_rng(13)
    quantizer = SegmentQuantizer(*segmented_array(SIZES, seed=8)[1:],
                                 config, stochastic=True)
    for seed in range(4):
        flat, starts, sizes = segmented_array(SIZES, seed=seed)
        expected = fake_quantize_segments(flat, starts, sizes, config,
                                          rng=rng_fn)
        inplace = flat.copy()
        quantizer(inplace, rng=rng_pre)
        assert np.array_equal(inplace, expected)
        assert rng_fn.bit_generator.state == rng_pre.bit_generator.state


def test_prealloc_quantizer_zero_segment():
    config = QuantConfig(bits=8, stochastic_rounding=False)
    flat, starts, sizes = segmented_array([16, 16, 16], seed=1)
    flat[16:32] = 0.0
    expected = fake_quantize_segments(flat, starts, sizes, config)
    quantizer = SegmentQuantizer(starts, sizes, config)
    quantizer(flat)
    assert np.array_equal(flat, expected)


def test_prealloc_quantizer_reusable_across_calls():
    """Scratch buffers are owned state; a second call must not see
    residue from the first."""
    config = QuantConfig(bits=8, stochastic_rounding=False)
    quantizer = SegmentQuantizer(*segmented_array(SIZES)[1:], config)
    for seed in (2, 9):
        flat, starts, sizes = segmented_array(SIZES, seed=seed)
        expected = fake_quantize_segments(flat, starts, sizes, config)
        quantizer(flat)
        assert np.array_equal(flat, expected)
