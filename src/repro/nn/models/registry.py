"""Name-based model construction used by the experiment harness."""

from __future__ import annotations

from typing import Callable

from ..modules import Module
from .lenet import LeNet5
from .mobilenet import MobileNetV1
from .resnet import ResNet18, ResNet50
from .transformer import VisionTransformer
from .vgg import VGG11

MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "lenet5": LeNet5,
    "vgg11": VGG11,
    "resnet18": ResNet18,
    "resnet50": ResNet50,
    "mobilenet_v1": MobileNetV1,
    "vit_tiny": VisionTransformer,
}


def build_model(name: str, **kwargs) -> Module:
    """Construct a zoo model by name (``lenet5``, ``vgg11``, ...)."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(f"unknown model {name!r}; known models: {known}") from None
    return factory(**kwargs)
