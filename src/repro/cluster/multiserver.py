"""Multi-server (LAN–WAN) topology extension.

The paper deploys tens of thousands of SoC-Cluster servers across edge
sites; its related work points at LAN-WAN orchestration (Yuan et al.)
for aggregating across them.  :class:`EdgeSite` wraps one server with a
WAN uplink; :class:`WanFabric` prices cross-site collectives the same
way :class:`~repro.cluster.network.NetworkFabric` prices intra-server
ones — uplinks are the scarce resource (tens of Mbps, not Gbps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .topology import ClusterTopology

__all__ = ["EdgeSite", "WanFabric"]


@dataclass(frozen=True)
class EdgeSite:
    """One SoC-Cluster server behind a WAN uplink."""

    name: str
    topology: ClusterTopology = field(
        default_factory=lambda: ClusterTopology(num_socs=60))
    #: uplink/downlink toward the aggregation point, bits/s
    wan_bps: float = 100e6
    #: one-way WAN latency, seconds
    wan_latency_s: float = 0.02

    def __post_init__(self):
        if self.wan_bps <= 0:
            raise ValueError("wan_bps must be positive")


class WanFabric:
    """Cross-site transfer times (star topology to an aggregator)."""

    def __init__(self, sites: list[EdgeSite],
                 aggregator_bps: float = 1e9):
        if not sites:
            raise ValueError("need at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        self.sites = list(sites)
        self.aggregator_bps = aggregator_bps

    def sync_time(self, nbytes: float) -> float:
        """All sites upload then download one payload via the aggregator.

        Uplinks run in parallel (each site is limited by its own WAN
        link); the aggregator's link carries every site's payload in
        each direction.
        """
        if nbytes < 0:
            raise ValueError("payload must be non-negative")
        slowest_uplink = max(8.0 * nbytes / site.wan_bps
                             for site in self.sites)
        aggregator = 8.0 * nbytes * len(self.sites) / self.aggregator_bps
        one_way = max(slowest_uplink, aggregator) + max(
            site.wan_latency_s for site in self.sites)
        return 2.0 * one_way

    def per_site_epoch_ratio(self, site: EdgeSite,
                             epoch_seconds: float,
                             nbytes: float,
                             sync_every_epochs: int = 1) -> float:
        """Overhead factor the WAN sync adds to a site's epoch time."""
        if sync_every_epochs < 1:
            raise ValueError("sync_every_epochs must be >= 1")
        del site  # uniform in the star model; kept for future per-site cost
        extra = self.sync_time(nbytes) / sync_every_epochs
        return (epoch_seconds + extra) / epoch_seconds
