"""Synchronous data-parallel SGD core shared by PS / RING / HiPress / 2D.

All four baselines compute mathematically identical updates (Table 3
shows them converging to the same accuracy); they differ in *where the
time goes*, which is what their ``step_sync_seconds`` hooks model.
HiPress additionally transforms the gradients for real (DGC).
"""

from __future__ import annotations

import numpy as np

from ..data.loader import ArrayDataset, DataLoader
from ..nn.optim import SGD
from .base import (CostModel, RunConfig, Strategy, StrategyResult,
                   evaluate_accuracy, flush_graph_stats, fp32_train_step,
                   make_model, record_epoch_telemetry)

__all__ = ["SsgdStrategy"]


class SsgdStrategy(Strategy):
    """Template: per-batch whole-cluster synchronisation, FP32 on CPUs."""

    name = "ssgd"

    # -- hooks ------------------------------------------------------------
    def step_sync_seconds(self, cost: CostModel,
                          nbytes: float | None = None,
                          num_tensors: float | None = None) -> float:
        """Simulated synchronisation time of one training step.

        With ``nbytes``/``num_tensors`` set, price the same collective
        for one gradient *bucket* (a slice of the payload and of the
        launch cost) instead of the whole model — bucketed fusion calls
        the hook once per bucket.
        """
        raise NotImplementedError

    def step_compute_seconds(self, cost: CostModel,
                             num_socs: int | None = None) -> float:
        """Per-step compute; each SoC trains its slice of the batch."""
        num_socs = num_socs or cost.topology.num_socs
        per_soc = cost.config.sim_global_batch / num_socs
        return cost.compute_seconds(per_soc, "cpu")

    def transform_gradients(self, model) -> None:
        """Hook for strategies that modify gradients (HiPress)."""

    def extra_epoch_sync_seconds(self, cost: CostModel) -> float:
        return 0.0

    def on_epoch_begin(self, epoch: int) -> None:
        """Hook for per-epoch schedules (HiPress's DGC warm-up)."""

    # -- bucketed fusion ---------------------------------------------------
    def bucketed_step_sync(self, cost: CostModel, layout, compute_s: float,
                           whole_sync_s: float):
        """Price one step's sync under bucketed gradient fusion.

        Returns ``(sync_s, hidden_s, schedule)``; with fusion off (or no
        flat layout) ``hidden_s`` is ``None`` and the caller falls back
        to the generic :data:`~repro.distributed.base.OVERLAP_FRACTION`
        rule, bit-identically to the pre-fusion code path.
        """
        plan = cost.bucket_plan(layout)
        if plan is None:
            return whole_sync_s, None, None
        bucket_times = [
            self.step_sync_seconds(cost, nbytes=nbytes, num_tensors=tensors)
            for nbytes, tensors in zip(plan.sim_bytes(cost.grad_bytes),
                                       plan.sim_tensors(
                                           cost.profile.num_tensors))]
        from .base import OVERLAP_FRACTION
        baseline_hidden = min(whole_sync_s, OVERLAP_FRACTION * compute_s)
        return cost.overlapped_sync(compute_s, plan, bucket_times,
                                    whole_sync_s, baseline_hidden)

    # -- main loop ---------------------------------------------------------
    def train(self, config: RunConfig) -> StrategyResult:
        cost = CostModel(config, telemetry=config.telemetry)
        model = make_model(config)
        flat = model.flatten_parameters()
        optimizer = SGD(model.parameters(), lr=config.lr,
                        momentum=config.momentum,
                        weight_decay=config.weight_decay,
                        flat=flat)
        hook_eager = config.graph and self._uses_gradient_hook()
        if config.graph and not hook_eager:
            model.enable_graph_executor()
        # Gradient-hook strategies (HiPress DGC) mutate gradients
        # between backward and step; the compiled program fuses those
        # phases, so they stay on the eager interpreter — recorded as an
        # explicit fallback at flush time rather than silently.
        loader = DataLoader(
            ArrayDataset(config.task.x_train, config.task.y_train),
            config.batch_size, shuffle=True, seed=config.seed)

        layout = flat.layout
        compute_s = self.step_compute_seconds(cost)
        sync_s, hidden_s, schedule = self.bucketed_step_sync(
            cost, layout, compute_s, self.step_sync_seconds(cost))
        telemetry = cost.telemetry
        history: list[float] = []
        state: dict = {}
        extra: dict = {}
        for epoch in range(config.max_epochs):
            epoch_t0 = cost.clock.now
            if telemetry.enabled:
                phases0 = cost.clock.breakdown()
                hidden0 = cost.clock.attributed_breakdown().get("sync", 0.0)
            dead, abort = self._epoch_fault_state(config, epoch, cost)
            if abort:
                # fail-stop: the synchronous ring/PS collective hangs on
                # the dead member and the job dies with it.
                extra.update(aborted=True, abort_epoch=epoch,
                             dead_socs=sorted(dead))
                break
            num_socs = cost.topology.num_socs - len(dead)
            if dead or config.fault_schedule is not None:
                # continue-with-survivors: the same global batch spreads
                # over fewer chips and syncs over possibly degraded links.
                compute_s = self.step_compute_seconds(cost, num_socs)
                sync_s, hidden_s, schedule = self.bucketed_step_sync(
                    cost, layout, compute_s, self.step_sync_seconds(cost))
            self.on_epoch_begin(epoch)
            for x, y in loader:
                if self._uses_gradient_hook():
                    self._step_with_hook(model, optimizer, x, y)
                else:
                    fp32_train_step(model, optimizer, x, y)
            for _ in range(cost.steps_per_epoch):
                cost.charge_step(compute_s, sync_s, num_socs,
                                 hidden_s=hidden_s,
                                 bucket_schedule=schedule)
            epoch_sync = self.extra_epoch_sync_seconds(cost)
            if epoch_sync:
                cost.charge_epoch_sync(epoch_sync, num_socs)
            accuracy = evaluate_accuracy(model, config.task.x_test,
                                         config.task.y_test)
            self._epoch_accuracy_bookkeeping(accuracy, epoch, config,
                                             history, state)
            if telemetry.enabled:
                record_epoch_telemetry(telemetry, cost, epoch, epoch_t0,
                                       phases0, hidden0, accuracy)
        if config.fault_schedule is not None:
            extra.setdefault("aborted", False)
        flush_graph_stats(model, cost, extra, hook_fallback=hook_eager)
        return self._result(self.name, config, cost, history, state, extra)

    # -- gradient-hook plumbing ---------------------------------------------
    def _uses_gradient_hook(self) -> bool:
        return type(self).transform_gradients is not SsgdStrategy.transform_gradients

    def _step_with_hook(self, model, optimizer: SGD, x: np.ndarray,
                        y: np.ndarray) -> float:
        from ..nn import functional as F
        from ..nn.tensor import Tensor
        model.train()
        optimizer.zero_grad()
        logits = model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        self.transform_gradients(model)
        optimizer.step()
        return loss.item()
