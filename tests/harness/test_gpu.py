"""GPU cost model for the Figure 11 comparison."""

import pytest

from repro.harness import gpu_energy_kj, gpu_training_time_s


class TestTime:
    def test_a100_faster_than_v100(self):
        v = gpu_training_time_s("v100", "vgg11", 10, 50_000)
        a = gpu_training_time_s("a100", "vgg11", 10, 50_000)
        assert a < v

    def test_scales_with_epochs(self):
        one = gpu_training_time_s("v100", "vgg11", 1, 50_000)
        ten = gpu_training_time_s("v100", "vgg11", 10, 50_000)
        assert ten == pytest.approx(10 * one, rel=1e-6)

    def test_small_model_pays_real_overhead(self):
        """Per-step launch overhead is a visible share of LeNet time."""
        t = gpu_training_time_s("v100", "lenet5", 1, 60_000, batch_size=64)
        overhead = (60_000 / 64) * 0.004
        assert overhead / t > 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_training_time_s("v100", "vgg11", 0, 100)


class TestEnergy:
    def test_watts_times_seconds(self):
        assert gpu_energy_kj("v100", 1000.0) == pytest.approx(300.0)
        assert gpu_energy_kj("a100", 1000.0) == pytest.approx(400.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gpu_energy_kj("v100", -1.0)
