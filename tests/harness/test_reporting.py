"""Text table rendering."""

from repro.harness import format_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [["vgg11", 1.5], ["r18", 20]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000123], [12345.6], [1.5]])
        assert "0.000123" in out
        assert "1.23e+04" in out or "12345" in out.replace(",", "")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_numeric_columns_right_aligned(self):
        out = format_table(["name", "value"],
                           [["short", 1.5], ["longer-label", -20000.25]])
        header, _, first, second = out.splitlines()
        # label column stays left-aligned, numeric column right-aligned:
        # every value (and the header) ends at the same column
        assert header.startswith("name")
        assert len(first) == len(second) == len(header)
        assert first.endswith("1.5")
        assert second.endswith("-20,000.2")

    def test_negative_and_large_values_share_a_column_edge(self):
        out = format_table(["v"], [[-1.5], [12345.6], [0.25]])
        lines = out.splitlines()[2:]
        assert [len(line) for line in lines] == [len(lines[0])] * 3
        assert lines[0].endswith("-1.5")
        assert lines[1].endswith("12,345.6")
        assert lines[2].endswith("0.25")

    def test_mixed_column_stays_left_aligned(self):
        out = format_table(["col"], [["text"], [1.0]])
        lines = out.splitlines()
        assert lines[2].startswith("text")
        assert lines[3].startswith("1")


class TestFormatSeries:
    def test_series_header_and_rows(self):
        out = format_series("fig4b", [4, 8], [1.0, 2.0],
                            x_label="socs", y_label="latency")
        assert out.startswith("[fig4b]")
        assert "socs" in out and "latency" in out
        assert "4" in out and "8" in out
