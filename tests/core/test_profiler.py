"""Processor profiling (the real-measurement side of beta)."""

import pytest

from repro.core import ProcessorProfiler, ProfileResult


class TestProfileResult:
    def test_beta_semantics(self):
        # NPU 4x faster -> it should receive 80% of the batch
        result = ProfileResult(t_cpu_sample_s=0.4, t_npu_sample_s=0.1)
        assert result.beta == pytest.approx(0.8)
        assert result.npu_speedup == pytest.approx(4.0)


class TestProfiler:
    def test_measures_positive_latencies(self, quick_config):
        profiler = ProcessorProfiler(quick_config, batch_size=8,
                                     warmup_steps=1, timed_steps=2)
        result = profiler.profile()
        assert result.t_cpu_sample_s > 0
        assert result.t_npu_sample_s > 0
        assert 0.0 < result.beta < 1.0

    def test_speedup_assumption_rescales(self, quick_config):
        profiler = ProcessorProfiler(quick_config, batch_size=8,
                                     warmup_steps=0, timed_steps=1,
                                     npu_speedup_assumption=3.9)
        result = profiler.profile()
        assert result.npu_speedup == pytest.approx(3.9)
        assert result.beta == pytest.approx(3.9 / 4.9, rel=1e-6)

    def test_validation(self, quick_config):
        with pytest.raises(ValueError):
            ProcessorProfiler(quick_config, timed_steps=0)

    def test_feeds_controller(self, quick_config):
        from repro.quant.mixed import MixedPrecisionController
        result = ProcessorProfiler(quick_config, batch_size=8,
                                   warmup_steps=0, timed_steps=1,
                                   npu_speedup_assumption=3.9).profile()
        controller = MixedPrecisionController(result.t_cpu_sample_s,
                                              result.t_npu_sample_s)
        cpu, npu = controller.split_batch(64)
        assert cpu + npu == 64
