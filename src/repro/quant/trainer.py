"""The INT8 training loop wrapper (simulated NPU execution).

:class:`Int8Trainer` drives a model exactly like FP32 SGD but forces
the quantisation error sources of integer training:

- the *forward/backward pass* runs on weights snapped to the INT8 grid
  and on INT8-quantised inputs,
- *gradients* are quantised (stochastically rounded, as NITI does)
  before the update,
- FP32 master weights absorb the updates, exactly like integer training
  schemes keep higher-precision accumulators so that sub-grid updates
  are not erased.

This reproduces the error-accumulation behaviour the paper measures
(Figure 4c: 5.94–8.25% accuracy drop at 32 SoCs) without integer-only
kernels, which are irrelevant to the learning dynamics.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from ..nn import functional as F
from .int8 import QuantConfig, fake_quantize, fake_quantize_segments
from .observer import EmaObserver

__all__ = ["Int8Trainer"]


class Int8Trainer:
    """Run SGD steps with INT8 fake-quantised weights/activations/grads."""

    def __init__(self, model: Module, lr: float, config: QuantConfig,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 seed: int = 0, max_grad_norm: float | None = 2.0):
        self.model = model
        self.config = config
        self.max_grad_norm = max_grad_norm
        self.optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                             weight_decay=weight_decay)
        self.rng = np.random.default_rng(seed)
        self._graph_exec = None
        self._input_observer = EmaObserver(config.qmax)
        if config.quantize_activations:
            from .ste import attach_activation_quant
            attach_activation_quant(model, config)
        flat = model.flatten_parameters()
        if flat is not None:
            self.optimizer.bind_flat(flat)

    def _flat(self):
        flat = self.model._flat
        if flat is not None and flat.is_intact():
            return flat
        return None

    @staticmethod
    def _param_segments(flat):
        layout = flat.layout
        n = layout.num_params
        return (np.asarray(layout.offsets[:n], dtype=np.intp),
                np.asarray(layout.sizes[:n], dtype=np.intp))

    # ------------------------------------------------------------------
    def _quantized_weights(self):
        """Snap weights onto the INT8 grid, returning the FP32 masters.

        On a flattened model this is one fused pass over the contiguous
        parameter region (masters come back as a single array copy); the
        per-parameter loop remains for unflattened models.
        """
        flat = self._flat()
        if flat is not None:
            masters = flat.params.copy()
            if self.config.quantize_weights:
                starts, sizes = self._param_segments(flat)
                flat.params[...] = fake_quantize_segments(
                    flat.params, starts, sizes, self.config)
            return masters
        masters: list[np.ndarray] = []
        for param in self.model.parameters():
            masters.append(param.data)
            if self.config.quantize_weights:
                param.data = fake_quantize(param.data, self.config)
        return masters

    def _restore_weights(self, masters) -> None:
        if isinstance(masters, np.ndarray):       # fused snapshot
            self.model._flat.params[...] = masters
            return
        for param, master in zip(self.model.parameters(), masters):
            param.data = master

    def _quantize_input(self, x: np.ndarray) -> np.ndarray:
        if not self.config.quantize_activations:
            return x
        self._input_observer.observe(x)
        return fake_quantize(x, self.config,
                             scale=self._input_observer.scale)

    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One SGD step on the INT8 path; returns the batch loss."""
        if self._graph_exec is not None:
            return self._graph_exec.step(inputs, targets)
        return self._eager_step(np.asarray(inputs, dtype=np.float32),
                                np.asarray(targets))

    def _eager_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """The uncompiled step: build the autograd tape every time."""
        self.model.train()
        self.optimizer.zero_grad()
        masters = self._quantized_weights()
        x = Tensor(self._quantize_input(inputs))
        logits = self.model(x)
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        return self._finish_step(loss, masters)

    def _finish_step(self, loss, masters) -> float:
        """Post-backward tail shared by the eager step and graph capture:
        master restore, clip, gradient quantisation, optimiser step."""
        self._restore_weights(masters)
        if self.max_grad_norm is not None:
            self._clip_gradients()
        if self.config.quantize_gradients:
            rng = self.rng if self.config.stochastic_rounding else None
            flat = self._flat()
            if flat is not None and flat.grads_ready():
                # Fused: quantise the whole gradient buffer in one pass,
                # writing in place so the fused SGD step stays armed.
                starts, sizes = self._param_segments(flat)
                flat.grads[...] = fake_quantize_segments(
                    flat.grads, starts, sizes, self.config, rng=rng)
            else:
                for param in self.model.parameters():
                    if param.grad is not None:
                        param.grad = fake_quantize(param.grad, self.config,
                                                   rng=rng)
        self.optimizer.step()
        return loss.item()

    def _clip_gradients(self) -> None:
        """Global-norm gradient clipping: integer-training schemes bound
        the gradient scale so quantisation noise cannot self-amplify."""
        total = 0.0
        grads = [p.grad for p in self.model.parameters() if p.grad is not None]
        for grad in grads:
            total += float(np.sum(grad.astype(np.float64) ** 2))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm:
            scale = self.max_grad_norm / norm
            for grad in grads:
                grad *= scale

    # ------------------------------------------------------------------
    def enable_graph_executor(self, max_programs: int = 8,
                              fuse: bool = True):
        """Compile-and-replay the INT8 step via the graph executor.

        Mirrors ``Module.enable_graph_executor`` but wraps the *whole*
        trainer step (weight/input/gradient quantisation included), not
        just forward/backward.  Idempotent."""
        from ..nn.graph import attach_int8_graph_executor
        return attach_int8_graph_executor(self, max_programs=max_programs,
                                          fuse=fuse)

    def disable_graph_executor(self) -> None:
        self._graph_exec = None

    def graph_stats(self) -> dict | None:
        if self._graph_exec is None:
            return None
        return self._graph_exec.snapshot()

    # ------------------------------------------------------------------
    def _activation_observers(self):
        observers = []
        for module in self.model.modules():
            quant = getattr(module, "output_quant", None)
            if quant is not None and hasattr(quant, "observer"):
                observers.append(quant.observer)
        return observers

    def runtime_state(self) -> dict:
        """Everything needed to resume this trainer bit-identically in
        another process: weights, optimiser velocity, the stochastic-
        rounding RNG stream and every EMA range observer."""
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "rng": self.rng.bit_generator.state,
            "input_ema": self._input_observer._ema,
            "activation_emas": [o._ema for o in self._activation_observers()],
        }

    def load_runtime_state(self, state: dict) -> None:
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.rng.bit_generator.state = state["rng"]
        self._input_observer._ema = state["input_ema"]
        for observer, ema in zip(self._activation_observers(),
                                 state["activation_emas"]):
            observer._ema = ema

    def predict_logits(self, inputs: np.ndarray) -> np.ndarray:
        """Inference logits through the quantised model."""
        self.model.eval()
        masters = self._quantized_weights()
        try:
            with no_grad():
                x = Tensor(self._quantize_input(
                    np.asarray(inputs, dtype=np.float32)))
                return self.model(x).data
        finally:
            self._restore_weights(masters)

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value
