"""Logical-group count selection (§3.1, "Determining group size").

Two tools:

- :func:`epoch_time_model` — Eq. 1 of the paper: per-epoch time as a
  function of the group count ``N``; monotonically decreasing in ``N``
  (more groups = more parallel epochs-worth of data per unit time).
- :class:`GroupSizeSelector` — the paper's heuristic: train *one epoch*
  at increasing group counts and stop at the first count whose
  first-epoch accuracy falls more than ``drop_threshold`` (~15%) below
  the best observed, because first-epoch accuracy closely mirrors
  convergence accuracy (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributed.base import CostModel, RunConfig

__all__ = ["epoch_time_model", "first_epoch_accuracy_profile",
           "GroupSizeSelector", "survivor_group_count",
           "allocation_group_count"]


def allocation_group_count(num_allocated: int, target_group_size: int,
                           max_groups: int | None = None) -> int:
    """Re-run Eq. 1's group sizing for an elastic job allocation.

    The accuracy-admissible group size is fixed by the job's warm-up
    (``target_group_size``); Eq. 1 is monotone decreasing in N, so the
    fastest admissible choice on ``num_allocated`` SoCs is the largest
    N keeping groups at or above that size: ``num_allocated //
    target_group_size``, clamped to at least one group, at most one
    group per SoC, and optionally to ``max_groups``.  Unlike
    :func:`survivor_group_count` this re-grows the group count when an
    elastic scheduler hands the job *more* SoCs than it had before.
    """
    if num_allocated <= 0:
        raise ValueError("need at least one allocated SoC")
    if target_group_size <= 0:
        raise ValueError("target_group_size must be positive")
    count = max(1, min(num_allocated // target_group_size, num_allocated))
    if max_groups is not None:
        count = max(1, min(count, max_groups))
    return count


def survivor_group_count(num_alive: int, prev_num_groups: int,
                         prev_num_socs: int) -> int:
    """Re-run Eq. 1's group sizing after SoCs die (or rejoin).

    The warm-up heuristic established that groups of size
    ``prev_num_socs / prev_num_groups`` are accuracy-admissible; Eq. 1
    is monotone decreasing in N, so the fastest admissible choice on
    the shrunken cluster is the largest N that keeps the group size at
    or above that bound: ``floor(num_alive / group_size)``, clamped to
    at least one group and at most one group per survivor.
    """
    if num_alive <= 0:
        raise ValueError("need at least one surviving SoC")
    if prev_num_groups <= 0 or prev_num_socs <= 0:
        raise ValueError("previous group count and SoC count must be positive")
    group_size = max(1, prev_num_socs // prev_num_groups)
    return max(1, min(num_alive // group_size, num_alive, prev_num_groups))


def epoch_time_model(num_samples: int, num_groups: int, group_batch: int,
                     t_train_group_batch: float, t_sync: float,
                     num_socs: int) -> float:
    """Eq. 1: ``T_epoch = NUM/(N*BS_g) * (T_train^{BS_g} * N/M + T_sync)``.

    ``t_train_group_batch`` is the time for one SoC to train ``group_batch``
    samples; within a group of ``M/N`` SoCs that work is divided, hence
    the ``N/M`` factor.
    """
    if min(num_samples, num_groups, group_batch, num_socs) <= 0:
        raise ValueError("all sizes must be positive")
    steps = num_samples / (num_groups * group_batch)
    per_step = (t_train_group_batch * num_groups / num_socs) + t_sync
    return steps * per_step


def first_epoch_accuracy_profile(config: RunConfig,
                                 candidate_groups: list[int],
                                 socflow_factory) -> dict[int, float]:
    """Train one epoch per candidate group count; return accuracies.

    ``socflow_factory(num_groups)`` must build a strategy; the warm-up
    profile runs each candidate for a single epoch on the real task.
    """
    profile: dict[int, float] = {}
    for n in candidate_groups:
        one_epoch = RunConfig(**{**config.__dict__, "max_epochs": 1,
                                 "num_groups": n})
        result = socflow_factory(n).train(one_epoch)
        profile[n] = result.final_accuracy
    return profile


@dataclass
class GroupSizeSelector:
    """The warm-up heuristic: largest N whose first-epoch accuracy holds.

    Scans candidates small→large and halts at the first count whose
    first-epoch accuracy drops by more than ``drop_threshold`` relative
    to the best seen so far; returns the previous (last good) count.
    """

    drop_threshold: float = 0.15

    def select(self, profile: dict[int, float]) -> int:
        if not profile:
            raise ValueError("empty accuracy profile")
        candidates = sorted(profile)
        best_seen = profile[candidates[0]]
        chosen = candidates[0]
        for n in candidates:
            accuracy = profile[n]
            best_seen = max(best_seen, accuracy)
            if accuracy < best_seen * (1.0 - self.drop_threshold):
                break
            chosen = n
        return chosen

    def select_with_time(self, profile: dict[int, float],
                         config: RunConfig) -> int:
        """Among accuracy-admissible counts, pick the fastest by Eq. 1.

        Eq. 1 is monotone decreasing in N, so this normally returns the
        same answer as :meth:`select`; it exists so the utility function
        is exercised end-to-end and stays correct under different cost
        parameters.
        """
        admissible = self._admissible(profile)
        cost = CostModel(config)
        group_batch = max(1, config.sim_global_batch
                          // max(1, config.num_groups))

        def time_of(n: int) -> float:
            return epoch_time_model(
                config.sim_samples_per_epoch, n, group_batch,
                cost.compute_seconds(group_batch, "cpu"),
                t_sync=cost.fabric.ring_allreduce_time(
                    list(range(max(2, config.topology.num_socs // n))),
                    cost.grad_bytes),
                num_socs=config.topology.num_socs)

        return min(admissible, key=time_of)

    def _admissible(self, profile: dict[int, float]) -> list[int]:
        candidates = sorted(profile)
        admissible: list[int] = []
        best_seen = profile[candidates[0]]
        for n in candidates:
            best_seen = max(best_seen, profile[n])
            if profile[n] < best_seen * (1.0 - self.drop_threshold):
                break
            admissible.append(n)
        return admissible
