"""The paper's mixed-precision control metrics (§3.2).

Two metrics steer the per-batch CPU/NPU data split on every SoC:

- ``alpha`` — *confidence*: cosine similarity between the FP32 and INT8
  models' logits on a validation set, profiled before each epoch (Eq. 4).
- ``beta`` — *compute power ratio*: ``T_npu / (T_npu + T_cpu)`` (Eq. 6),
  i.e. the share of a batch the NPU should take so neither processor
  idles.

The CPU receives ``max(e^-alpha, 1 - beta)`` of each batch, and weights
merge on-chip as ``w = e^-alpha * w_fp32 + (1 - e^-alpha) * w_int8``
(Eq. 5).
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from ..nn.flat import FlatState, common_flat_layout

__all__ = ["compute_alpha", "compute_beta", "cpu_fraction", "merge_weights",
           "MixedPrecisionController"]


def compute_alpha(logits_fp32: np.ndarray, logits_int8: np.ndarray) -> float:
    """Cosine similarity of the two models' logits (Eq. 4), in [-1, 1].

    Flattens across the whole validation batch so one number summarises
    the INT8 model's agreement with the FP32 reference.
    """
    a = np.asarray(logits_fp32, dtype=np.float64)
    b = np.asarray(logits_int8, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"logit shapes differ: {a.shape} vs {b.shape}")
    a = a.ravel()
    b = b.ravel()
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b) / norm)


def compute_beta(t_cpu: float, t_npu: float) -> float:
    """NPU share of compute power, ``T_npu / (T_npu + T_cpu)`` (Eq. 6).

    ``t_cpu``/``t_npu`` are per-sample (or per-batch, same batch) training
    latencies.  A faster NPU has *smaller* ``t_npu``; the fraction of data
    it should receive to finish simultaneously with the CPU is
    ``t_cpu / (t_cpu + t_npu)`` — which is what Eq. 6 denotes with its
    ``T`` symbols standing for throughputs.  We follow the semantics (NPU
    gets the larger share when it is faster) rather than the ambiguous
    symbol, and expose both latencies for the energy model.
    """
    if t_cpu <= 0 or t_npu <= 0:
        raise ValueError("latencies must be positive")
    return t_cpu / (t_cpu + t_npu)


def cpu_fraction(alpha: float, beta: float) -> float:
    """Portion of each mini-batch fed to the CPU: ``max(e^-alpha, 1-beta)``."""
    return min(1.0, max(math.exp(-alpha), 1.0 - beta))


def merge_weights(w_fp32: "OrderedDict[str, np.ndarray]",
                  w_int8: "OrderedDict[str, np.ndarray]",
                  alpha: float) -> "OrderedDict[str, np.ndarray]":
    """On-chip weight aggregation (Eq. 5).

    When both states are intact :class:`~repro.nn.flat.FlatState`
    snapshots sharing a layout, the merge is one fused vectorised
    expression over the whole model (bit-identical to the per-key loop:
    same weak-typed float32 elementwise ops over the same segments).
    """
    coeff = math.exp(-alpha)
    layout = common_flat_layout((w_fp32, w_int8))
    if layout is not None:
        merged_flat = (coeff * w_fp32.flat
                       + (1.0 - coeff) * w_int8.flat).astype(np.float32)
        return FlatState(layout, merged_flat)
    merged: OrderedDict[str, np.ndarray] = OrderedDict()
    for name, fp32_value in w_fp32.items():
        merged[name] = (coeff * fp32_value
                        + (1.0 - coeff) * w_int8[name]).astype(np.float32)
    return merged


class MixedPrecisionController:
    """Tracks alpha/beta over a training run and exposes the batch split.

    The paper profiles ``alpha`` on the validation set prior to each
    epoch; call :meth:`update_alpha` with fresh logits at epoch
    boundaries.  ``beta`` is profiled once, before training starts.
    """

    def __init__(self, t_cpu: float, t_npu: float):
        self.beta = compute_beta(t_cpu, t_npu)
        self.t_cpu = t_cpu
        self.t_npu = t_npu
        self.alpha = 1.0
        self.history: list[tuple[float, float]] = []

    def update_alpha(self, logits_fp32: np.ndarray,
                     logits_int8: np.ndarray) -> float:
        self.alpha = compute_alpha(logits_fp32, logits_int8)
        self.history.append((self.alpha, self.cpu_share))
        return self.alpha

    @property
    def cpu_share(self) -> float:
        return cpu_fraction(self.alpha, self.beta)

    @property
    def npu_share(self) -> float:
        return 1.0 - self.cpu_share

    def split_batch(self, batch_size: int) -> tuple[int, int]:
        """Integer (cpu_count, npu_count) split of one mini-batch."""
        cpu = int(round(self.cpu_share * batch_size))
        cpu = min(batch_size, max(0, cpu))
        return cpu, batch_size - cpu

    def step_time(self, batch_size: int) -> float:
        """Wall time of one mixed step: both processors run in parallel."""
        cpu_n, npu_n = self.split_batch(batch_size)
        return max(cpu_n * self.t_cpu, npu_n * self.t_npu)
