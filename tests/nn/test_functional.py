"""Forward-semantics tests for the functional ops."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.functional import col2im, im2col


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        cols = im2col(x, kernel=3, stride=1)
        back = col2im(cols.copy(), x.shape, kernel=3, stride=1)
        # centre pixels participate in more windows than corners
        assert back[0, 0, 0, 0] == 1.0
        assert back[0, 0, 1, 1] == 4.0

    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols = im2col(x, kernel=3, stride=2)
        assert cols.shape == (2, 27, 9)


class TestConvForward:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).standard_normal((1, 1, 5, 5)).astype(
            np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        np.testing.assert_allclose(out.numpy(), x, rtol=1e-6)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w)).numpy()
        # naive triple loop
        expected = np.zeros((1, 3, 3, 3), dtype=np.float32)
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i:i + 3, j:j + 3]
                    expected[0, o, i, j] = (patch * w[o]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_stride_and_padding_shapes(self):
        x = Tensor(np.zeros((2, 3, 9, 9), dtype=np.float32))
        w = Tensor(np.zeros((4, 3, 3, 3), dtype=np.float32))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 5, 5)

    def test_depthwise_channel_independence(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).numpy()
        # channel 0 of output must not depend on channel 1 of input
        x2 = x.copy()
        x2[0, 1] = 0.0
        out2 = F.conv2d(Tensor(x2), Tensor(w), padding=1, groups=2).numpy()
        np.testing.assert_allclose(out[0, 0], out2[0, 0], rtol=1e-6)

    def test_groups_must_divide_channels(self):
        from repro.nn import Conv2d
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, np.random.default_rng(0), groups=2)


class TestPoolingForward:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool(self):
        x = np.ones((2, 3, 4, 4), dtype=np.float32)
        assert F.global_avg_pool2d(Tensor(x)).shape == (2, 3)


class TestBatchNorm:
    def test_training_normalizes(self):
        rng = np.random.default_rng(3)
        x = (5.0 + 3.0 * rng.standard_normal((64, 4))).astype(np.float32)
        out = F.batch_norm(Tensor(x), Tensor(np.ones(4)), Tensor(np.zeros(4)),
                           np.zeros(4, np.float32), np.ones(4, np.float32),
                           training=True).numpy()
        np.testing.assert_allclose(out.mean(0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(0), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        rng = np.random.default_rng(4)
        x = (2.0 + rng.standard_normal((128, 3))).astype(np.float32)
        mean = np.zeros(3, np.float32)
        var = np.ones(3, np.float32)
        F.batch_norm(Tensor(x), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                     mean, var, training=True, momentum=1.0)
        np.testing.assert_allclose(mean, x.mean(0), rtol=1e-4)

    def test_eval_uses_running_stats(self):
        x = np.ones((4, 2), dtype=np.float32)
        mean = np.array([1.0, 1.0], np.float32)
        var = np.array([4.0, 4.0], np.float32)
        out = F.batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                           mean, var, training=False).numpy()
        np.testing.assert_allclose(out, 0.0, atol=1e-3)
        # eval mode must not touch running stats
        np.testing.assert_allclose(mean, [1.0, 1.0])


class TestSoftmaxLossDropout:
    def test_log_softmax_normalizes(self):
        x = Tensor(np.random.default_rng(5).standard_normal((6, 9)))
        probs = np.exp(F.log_softmax(x).numpy())
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_matches_exp_log_softmax(self):
        x = Tensor(np.random.default_rng(6).standard_normal((3, 4)))
        np.testing.assert_allclose(F.softmax(x).numpy(),
                                   np.exp(F.log_softmax(x).numpy()),
                                   rtol=1e-6)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 8), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(8), rel=1e-5)

    def test_cross_entropy_shift_invariant(self):
        rng = np.random.default_rng(7)
        logits = rng.standard_normal((4, 6)).astype(np.float32)
        targets = np.array([1, 2, 3, 0])
        a = F.cross_entropy(Tensor(logits), targets).item()
        b = F.cross_entropy(Tensor(logits + 100.0), targets).item()
        assert a == pytest.approx(b, rel=1e-4)

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False,
                        rng=np.random.default_rng(0))
        assert out is x

    def test_dropout_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True,
                        rng=np.random.default_rng(0))
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.02)


class TestLinear:
    def test_linear_values(self):
        x = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        w = Tensor(np.array([[3.0, 4.0], [5.0, 6.0]], dtype=np.float32))
        b = Tensor(np.array([1.0, -1.0], dtype=np.float32))
        np.testing.assert_allclose(F.linear(x, w, b).numpy(),
                                   [[12.0, 16.0]])
