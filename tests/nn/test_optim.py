"""Optimizer math against hand-computed updates, plus LR schedules."""

import math

import numpy as np
import pytest

from repro.nn import SGD, ConstantLR, CosineAnnealingLR, StepLR, Tensor
from repro.nn.optim import Adam


def param_with_grad(value, grad):
    p = Tensor(np.array([value], dtype=np.float32), requires_grad=True)
    p.grad = np.array([grad], dtype=np.float32)
    return p


class TestSgd:
    def test_vanilla_update(self):
        p = param_with_grad(1.0, 0.5)
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_weight_decay(self):
        p = param_with_grad(2.0, 0.0)
        SGD([p], lr=0.1, weight_decay=0.01).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.01 * 2.0)

    def test_momentum_accumulates(self):
        p = param_with_grad(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()                       # v=1, p=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()                       # v=1.9, p=-2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_nesterov_differs_from_plain(self):
        p1 = param_with_grad(0.0, 1.0)
        p2 = param_with_grad(0.0, 1.0)
        SGD([p1], lr=1.0, momentum=0.9).step()
        SGD([p2], lr=1.0, momentum=0.9, nesterov=True).step()
        assert p2.data[0] == pytest.approx(-1.9)
        assert p1.data[0] == pytest.approx(-1.0)

    def test_skips_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = param_with_grad(1.0, 1.0)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1, nesterov=True)

    def test_state_dict_roundtrip(self):
        p = param_with_grad(0.0, 1.0)
        opt = SGD([p], lr=0.5, momentum=0.9)
        opt.step()
        saved = opt.state_dict()
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        after_two = p.data.copy()
        # rewind and replay
        p.data[...] = -0.5
        opt.load_state_dict(saved)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, after_two)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        """Bias correction makes step one move by ~lr regardless of
        gradient magnitude."""
        p = param_with_grad(0.0, 10.0)
        Adam([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_adapts_to_gradient_scale(self):
        big = param_with_grad(0.0, 100.0)
        small = param_with_grad(0.0, 0.01)
        Adam([big], lr=0.1).step()
        Adam([small], lr=0.1).step()
        assert big.data[0] == pytest.approx(small.data[0], rel=1e-2)

    def test_weight_decay_pulls_to_zero(self):
        p = param_with_grad(5.0, 0.0)
        Adam([p], lr=0.1, weight_decay=0.1).step()
        assert p.data[0] < 5.0

    def test_skips_gradless_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        Adam([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], betas=(1.0, 0.9))

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.grad = 2.0 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 0.05


class TestSchedules:
    def make(self, schedule_cls, **kw):
        p = param_with_grad(0.0, 0.0)
        opt = SGD([p], lr=1.0)
        return opt, schedule_cls(opt, **kw)

    def test_constant(self):
        opt, sched = self.make(ConstantLR)
        for _ in range(5):
            sched.step()
        assert opt.lr == 1.0

    def test_step_lr_decays(self):
        opt, sched = self.make(StepLR, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_endpoints(self):
        opt, sched = self.make(CosineAnnealingLR, total_epochs=10,
                               min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_midpoint(self):
        opt, sched = self.make(CosineAnnealingLR, total_epochs=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5 * (1 + math.cos(math.pi / 2)),
                                       abs=1e-9)
