"""HiPress baseline (Bai et al., SOSP'21): compression-aware sync.

HiPress plugs DGC sparsification into data-parallel gradient
synchronisation.  Here the DGC top-k with residual accumulation is
applied to the real gradients every step (so its accuracy effect is
measured), and the wire payload shrinks by the compression ratio plus a
per-step compression compute overhead.
"""

from __future__ import annotations

from ..comm.compression import DgcCompressor
from .base import CostModel
from .ssgd import SsgdStrategy

__all__ = ["HiPress"]

#: CPU-side compression/decompression cost per gradient element, seconds.
#: Top-k selection is a few passes over the gradient on the mobile CPU.
_COMPRESS_SECONDS_PER_ELEMENT = 6e-9


#: DGC warm-up: sparsity ramps up over the first epochs (Lin et al. §3.3)
_WARMUP_RATIOS = (0.25, 0.0625, 0.015625)


class HiPress(SsgdStrategy):
    name = "hipress"

    def __init__(self, compression_ratio: float = 0.01):
        self.final_ratio = compression_ratio
        self.compressor = DgcCompressor(ratio=_WARMUP_RATIOS[0])

    def on_epoch_begin(self, epoch: int) -> None:
        if epoch < len(_WARMUP_RATIOS):
            ratio = max(_WARMUP_RATIOS[epoch], self.final_ratio)
        else:
            ratio = self.final_ratio
        self.compressor.ratio = ratio

    def step_sync_seconds(self, cost: CostModel,
                          nbytes: float | None = None,
                          num_tensors: float | None = None) -> float:
        socs = list(range(cost.topology.num_socs))
        # Steady-state wire size (warm-up epochs transfer more but are few).
        payload = cost.grad_bytes if nbytes is None else nbytes
        wire_bytes = payload * 2.0 * self.final_ratio
        transfer = cost.fabric.ring_allreduce_time(socs, wire_bytes,
                                                   num_tensors=num_tensors)
        # Top-k compression walks only the bucket's share of the elements.
        scale = 1.0 if nbytes is None else nbytes / cost.grad_bytes
        compress = _COMPRESS_SECONDS_PER_ELEMENT * cost.profile.params * scale
        return transfer + compress

    def transform_gradients(self, model) -> None:
        for name, param in model.named_parameters():
            if param.grad is not None:
                sparse = self.compressor.compress(name, param.grad)
                param.grad = sparse.densify()
