"""User-workload (cloud gaming) session simulation — the Figure 1 story.

The SoC-Cluster's day job is serving user-triggered sessions (cloud
gaming, live streaming).  :class:`SessionSimulator` generates session
arrivals from a non-homogeneous Poisson process whose rate follows the
tidal trace, assigns sessions to SoCs, and exposes the resulting busy
timeline.  :func:`derive_training_events` converts a planned overnight
training window into the preemption events SoCFlow must absorb when
users show up early — closing the loop between the trace model, the
scheduler and the training engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import PreemptionEvent
from .topology import ClusterTopology
from .trace import TidalTrace

__all__ = ["Session", "SessionIndex", "SessionSimulator",
           "derive_training_events"]


@dataclass(frozen=True)
class Session:
    """One user session pinned to one SoC."""

    soc: int
    start_hour: float
    duration_hours: float

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours


class SessionIndex:
    """Sorted-interval index over a session list for occupancy queries.

    The naive queries rescan the whole session list per lookup
    (O(N·S) for a busy curve); once occupancy is queried at request
    resolution by the serving plane and the co-scheduler that rescan is
    a hot path.  The index sorts the intervals once and answers

    - :meth:`busy_socs_at` with one vectorised interval-stabbing pass
      over contiguous arrays (no Python attribute walks), and
    - :meth:`counts_at` with an event sweep: arrival/departure times are
      pre-sorted, so each query is two binary searches.

    Sessions are immutable, so the index never invalidates; build it
    once per session list and query freely.
    """

    def __init__(self, sessions: "list[Session]"):
        self._n = len(sessions)
        self._starts = np.array([s.start_hour for s in sessions])
        self._ends = np.array([s.end_hour for s in sessions])
        self._socs = np.array([s.soc for s in sessions], dtype=np.int64)
        # event sweep arrays: every interval edge in time order
        self._sorted_starts = np.sort(self._starts)
        self._sorted_ends = np.sort(self._ends)

    def __len__(self) -> int:
        return self._n

    def busy_socs_at(self, hour: float) -> "set[int]":
        """SoCs with a live session at ``hour`` (same predicate as the
        original scan: ``start <= hour < end``)."""
        if self._n == 0:
            return set()
        mask = (self._starts <= hour) & (hour < self._ends)
        return set(self._socs[mask].tolist())

    def busy_count_at(self, hour: float) -> int:
        """Number of live sessions at ``hour`` via the event sweep.

        Sessions never overlap on one SoC, so this equals the busy-SoC
        count.
        """
        started = int(np.searchsorted(self._sorted_starts, hour,
                                      side="right"))
        ended = int(np.searchsorted(self._sorted_ends, hour, side="right"))
        return started - ended

    def counts_at(self, hours: np.ndarray) -> np.ndarray:
        """Busy counts for many query times at once (O(H log N))."""
        hours = np.asarray(hours)
        started = np.searchsorted(self._sorted_starts, hours, side="right")
        ended = np.searchsorted(self._sorted_ends, hours, side="right")
        return started - ended

    def idle_socs_at(self, hour: float, num_socs: int) -> "list[int]":
        busy = self.busy_socs_at(hour)
        return [s for s in range(num_socs) if s not in busy]


class SessionSimulator:
    """Poisson session arrivals whose rate follows the tidal curve.

    Parameters
    ----------
    peak_sessions_per_hour:
        Arrival rate at the busiest moment; scaled down by the trace's
        busy ratio elsewhere.
    mean_session_hours:
        Exponential session-length mean (cloud-gaming sessions run tens
        of minutes).
    """

    def __init__(self, topology: ClusterTopology,
                 trace: TidalTrace | None = None,
                 peak_sessions_per_hour: float = 120.0,
                 mean_session_hours: float = 0.75,
                 seed: int = 0):
        self.topology = topology
        self.trace = trace or TidalTrace(seed=seed)
        self.peak_rate = peak_sessions_per_hour
        self.mean_session_hours = mean_session_hours
        self._rng = np.random.default_rng(seed)
        #: arrivals dropped at saturation by the most recent
        #: :meth:`simulate_day` call.  Overload used to be invisible —
        #: saturated arrivals silently vanished; now callers can report
        #: them (``serving.dropped_sessions`` in the metrics registry).
        self.dropped_sessions = 0

    # ------------------------------------------------------------------
    def simulate_day(self, resolution_hours: float = 0.1) -> list[Session]:
        """Generate one day of sessions via thinning.

        Sessions land on the lowest-numbered free SoC; arrivals beyond
        capacity are dropped (the real platform load-balances to other
        servers) and counted in :attr:`dropped_sessions` so overload is
        observable.
        """
        sessions: list[Session] = []
        free_at = np.zeros(self.topology.num_socs)
        steps = int(round(24.0 / resolution_hours))
        peak_busy = self.trace.peak_busy
        dropped = 0
        for i in range(steps):
            hour = i * resolution_hours
            rate = (self.peak_rate * self.trace.busy_ratio(hour)
                    / peak_busy)
            arrivals = self._rng.poisson(rate * resolution_hours)
            for _ in range(arrivals):
                soc = int(np.argmin(free_at))
                if free_at[soc] > hour:
                    dropped += 1  # saturated: drop, but make it visible
                    continue
                duration = float(self._rng.exponential(
                    self.mean_session_hours))
                sessions.append(Session(soc, hour, duration))
                free_at[soc] = hour + duration
        self.dropped_sessions = dropped
        return sessions

    # ------------------------------------------------------------------
    @staticmethod
    def busy_socs_at(sessions: list[Session], hour: float) -> set[int]:
        return SessionIndex(sessions).busy_socs_at(hour)

    def idle_socs_at(self, sessions: list[Session],
                     hour: float) -> list[int]:
        """SoCs free for training at ``hour``, in id order.

        The complement of :meth:`busy_socs_at` over the topology; the
        list is sorted so schedulers iterating it stay deterministic.
        At peak load this is legitimately *empty* — a training job must
        then stay queued rather than plan an empty logical group.
        """
        return self._index_for(sessions).idle_socs_at(
            hour, self.topology.num_socs)

    def busy_curve(self, sessions: list[Session],
                   resolution_hours: float = 0.25) -> tuple[np.ndarray,
                                                            np.ndarray]:
        """(hours, busy fraction) — the simulated counterpart of Fig 3.

        One event sweep over the sorted interval edges instead of a
        rescan per sample: O((N + H) log N) for the whole curve.
        """
        hours = np.arange(0.0, 24.0, resolution_hours)
        index = self._index_for(sessions)
        busy = index.counts_at(hours) / self.topology.num_socs
        return hours, busy

    def _index_for(self, sessions: "list[Session]") -> SessionIndex:
        """Memoise the index of the last-queried session list (sessions
        are immutable, so identity + length is a safe cache key)."""
        cached = getattr(self, "_index_cache", None)
        if cached is not None and cached[0] == id(sessions) \
                and cached[1] == len(sessions):
            return cached[2]
        index = SessionIndex(sessions)
        self._index_cache = (id(sessions), len(sessions), index)
        return index


def derive_training_events(sessions: list[Session],
                           window_start_hour: float,
                           epoch_hours: float,
                           max_epochs: int,
                           socs_per_group: int,
                           idle_socs: int) -> list[PreemptionEvent]:
    """Plan preemptions for a training job inside an idle window.

    The job starts at ``window_start_hour`` with ``idle_socs`` chips.
    Whenever new sessions claim enough previously-idle SoCs to exhaust
    a logical group's worth of capacity, one group is preempted at the
    next epoch boundary.

    A window too busy to host even one logical group (``idle_socs <
    socs_per_group`` — the zero-idle case included) returns no events:
    nothing was ever planned, so there is nothing to preempt.  Callers
    (e.g. the :mod:`repro.jobs` scheduler) must keep such a job queued
    instead of starting it — an empty logical group is never planned.
    """
    if socs_per_group <= 0 or epoch_hours <= 0:
        raise ValueError("socs_per_group and epoch_hours must be positive")
    if idle_socs < 0:
        raise ValueError("idle_socs must be non-negative")
    if idle_socs < socs_per_group:
        return []
    events: list[PreemptionEvent] = []
    index = SessionIndex(sessions)
    baseline = index.busy_count_at(window_start_hour)
    claimed_groups = 0
    for epoch in range(max_epochs):
        hour = (window_start_hour + (epoch + 1) * epoch_hours) % 24.0
        busy_now = index.busy_count_at(hour)
        surge = max(0, busy_now - baseline)
        groups_needed = min(surge // socs_per_group,
                            idle_socs // socs_per_group - claimed_groups)
        if groups_needed > claimed_groups:
            events.append(PreemptionEvent(
                epoch=epoch + 1,
                num_groups=groups_needed - claimed_groups))
            claimed_groups = groups_needed
    return events
