"""SoCFlow end-to-end: training, ablation switches, events."""

import numpy as np
import pytest

from repro.core import (PreemptionEvent, SoCFlow, SoCFlowOptions,
                        UnderclockEvent, build_socflow)


def run(config, **options):
    return SoCFlow(SoCFlowOptions(**options)).train(config)


class TestEndToEnd:
    def test_produces_complete_result(self, quick_config):
        result = run(quick_config)
        assert result.strategy == "socflow"
        assert result.epochs_run == quick_config.max_epochs
        assert result.sim_time_s > 0
        assert set(result.breakdown) == {"compute", "sync", "update"}
        assert result.energy.total_j > 0
        assert result.extra["num_groups"] == quick_config.num_groups

    def test_deterministic_given_seed(self, quick_config):
        a = run(quick_config)
        b = run(quick_config)
        assert a.accuracy_history == b.accuracy_history
        assert a.sim_time_s == b.sim_time_s

    def test_accuracy_above_chance_after_training(self, tiny_task,
                                                  quick_config):
        from dataclasses import replace
        config = replace(quick_config, max_epochs=6, num_groups=4)
        result = run(config)
        assert result.best_accuracy > 1.5 / tiny_task.num_classes

    def test_alpha_history_recorded(self, quick_config):
        result = run(quick_config)
        assert len(result.extra["alpha_history"]) == quick_config.max_epochs


class TestAblationSwitches:
    def test_grouping_off_single_ring(self, quick_config):
        result = run(quick_config, grouping=False)
        assert result.extra["num_groups"] == 1

    def test_planning_off_is_slower_or_equal(self, quick_config):
        planned = run(quick_config)
        unplanned = run(quick_config, planning=False)
        assert planned.sim_time_s <= unplanned.sim_time_s * 1.001

    def test_naive_mapping_no_faster_than_integrity(self, quick_config):
        integrity = run(quick_config, planning=False)
        naive = run(quick_config, planning=False, mapping="naive")
        assert integrity.sim_time_s <= naive.sim_time_s * 1.001

    def test_mixed_faster_than_fp32(self, quick_config):
        mixed = run(quick_config)
        fp32 = run(quick_config, precision="fp32", mixed=False)
        assert mixed.sim_time_s < fp32.sim_time_s

    def test_int8_fastest(self, quick_config):
        int8 = run(quick_config, precision="int8")
        mixed = run(quick_config)
        assert int8.sim_time_s <= mixed.sim_time_s * 1.001

    def test_int8_cheapest_energy(self, quick_config):
        int8 = run(quick_config, precision="int8")
        fp32 = run(quick_config, precision="fp32", mixed=False)
        assert int8.energy.total_j < fp32.energy.total_j

    def test_fixed_alpha_pins_controller(self, quick_config):
        result = run(quick_config, fixed_alpha=0.7)
        assert result.extra["alpha_history"] == []

    def test_invalid_options_raise(self):
        with pytest.raises(ValueError):
            SoCFlowOptions(mapping="random")
        with pytest.raises(ValueError):
            SoCFlowOptions(precision="fp64")

    def test_build_socflow_kwargs(self):
        strategy = build_socflow(planning=False)
        assert strategy.options.planning is False


class TestEvents:
    def test_preemption_drops_groups(self, quick_config):
        result = run(quick_config,
                     events=(PreemptionEvent(epoch=1, num_groups=2),))
        assert result.extra["groups_preempted"] == 2
        assert result.epochs_run == quick_config.max_epochs

    def test_preemption_never_kills_last_group(self, quick_config):
        result = run(quick_config,
                     events=(PreemptionEvent(epoch=0, num_groups=99),))
        assert result.extra["groups_preempted"] < quick_config.num_groups

    def test_underclock_slows_training(self, quick_config):
        slow = run(quick_config, rebalance=False,
                   events=(UnderclockEvent(epoch=0, soc=0, factor=0.4),))
        normal = run(quick_config)
        assert slow.sim_time_s > normal.sim_time_s

    def test_rebalancing_mitigates_underclock(self, quick_config):
        events = (UnderclockEvent(epoch=0, soc=0, factor=0.4),)
        rebalanced = run(quick_config, rebalance=True, events=events)
        straggler = run(quick_config, rebalance=False, events=events)
        assert rebalanced.sim_time_s < straggler.sim_time_s


class TestAutoGroupSize:
    def test_profile_recorded_and_applied(self, quick_config):
        from dataclasses import replace
        config = replace(quick_config, max_epochs=1,
                         topology=quick_config.topology.restricted(16))
        result = run(config, auto_group_size=True)
        profile = result.extra["group_size_profile"]
        assert set(profile) == {1, 2, 4, 8}
        assert result.extra["num_groups"] in profile

    def test_disabled_when_grouping_off(self, quick_config):
        from dataclasses import replace
        config = replace(quick_config, max_epochs=1)
        result = run(config, auto_group_size=True, grouping=False)
        assert "group_size_profile" not in result.extra
        assert result.extra["num_groups"] == 1


class TestBreakdown:
    def test_sync_share_between_dml_and_fl(self, quick_config):
        """Figure 12: SoCFlow's sync share sits between RING's (~80%)
        and FedAvg's (~15%)."""
        result = run(quick_config)
        share = result.phase_shares()["sync"]
        assert 0.10 < share < 0.80
