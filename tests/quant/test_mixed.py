"""Alpha/beta metrics and the Eq. 5 weight merge."""

import math
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (MixedPrecisionController, compute_alpha,
                         compute_beta, cpu_fraction, merge_weights)


class TestAlpha:
    def test_identical_logits_give_one(self):
        logits = np.random.default_rng(0).standard_normal((8, 10))
        assert compute_alpha(logits, logits) == pytest.approx(1.0)

    def test_opposite_logits_give_minus_one(self):
        logits = np.random.default_rng(1).standard_normal((8, 10))
        assert compute_alpha(logits, -logits) == pytest.approx(-1.0)

    def test_orthogonal_logits_near_zero(self):
        a = np.zeros((1, 2)); a[0, 0] = 1.0
        b = np.zeros((1, 2)); b[0, 1] = 1.0
        assert compute_alpha(a, b) == pytest.approx(0.0)

    def test_scale_invariant(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((4, 6))
        assert compute_alpha(a, b) == pytest.approx(
            compute_alpha(10 * a, 0.1 * b))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            compute_alpha(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_zero_logits_safe(self):
        assert compute_alpha(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0


class TestBeta:
    def test_equal_speed_gives_half(self):
        assert compute_beta(1.0, 1.0) == pytest.approx(0.5)

    def test_faster_npu_gets_more(self):
        # NPU 4x faster -> beta = 0.8 -> NPU receives 80% of the batch
        assert compute_beta(t_cpu=0.4, t_npu=0.1) == pytest.approx(0.8)

    def test_invalid_latency_raises(self):
        with pytest.raises(ValueError):
            compute_beta(0.0, 1.0)


class TestCpuFraction:
    def test_rule_is_max_of_both_terms(self):
        assert cpu_fraction(alpha=1.0, beta=0.9) == pytest.approx(
            math.exp(-1.0))
        assert cpu_fraction(alpha=1.0, beta=0.1) == pytest.approx(0.9)

    def test_low_alpha_forces_cpu(self):
        assert cpu_fraction(alpha=0.0, beta=0.99) == pytest.approx(1.0)

    @given(st.floats(-1, 1), st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_always_a_valid_fraction(self, alpha, beta):
        f = cpu_fraction(alpha, beta)
        assert 0.0 <= f <= 1.0
        # Eq. 5 floor: the CPU share never drops below e^-1 when alpha<=1
        assert f >= math.exp(-1.0) - 1e-9


class TestMergeWeights:
    def test_eq5_coefficients(self):
        w_fp = OrderedDict(w=np.array([1.0], dtype=np.float32))
        w_i8 = OrderedDict(w=np.array([3.0], dtype=np.float32))
        merged = merge_weights(w_fp, w_i8, alpha=0.0)  # e^0 = 1 -> all fp32
        np.testing.assert_allclose(merged["w"], [1.0])

    def test_alpha_one_favours_int8(self):
        w_fp = OrderedDict(w=np.array([0.0], dtype=np.float32))
        w_i8 = OrderedDict(w=np.array([1.0], dtype=np.float32))
        merged = merge_weights(w_fp, w_i8, alpha=1.0)
        np.testing.assert_allclose(merged["w"], [1.0 - math.exp(-1.0)],
                                   rtol=1e-6)

    def test_merge_identical_states_is_identity(self):
        state = OrderedDict(a=np.random.default_rng(0).standard_normal(5)
                            .astype(np.float32))
        merged = merge_weights(state, state, alpha=0.5)
        np.testing.assert_allclose(merged["a"], state["a"], rtol=1e-6)


class TestController:
    def make(self):
        return MixedPrecisionController(t_cpu=0.14, t_npu=0.036)

    def test_beta_from_latencies(self):
        ctrl = self.make()
        assert ctrl.beta == pytest.approx(0.14 / 0.176)

    def test_split_batch_sums(self):
        ctrl = self.make()
        cpu, npu = ctrl.split_batch(64)
        assert cpu + npu == 64
        assert cpu >= int(64 * math.exp(-1.0)) - 1

    def test_update_alpha_records_history(self):
        ctrl = self.make()
        logits = np.random.default_rng(0).standard_normal((4, 3))
        ctrl.update_alpha(logits, logits + 0.01)
        assert len(ctrl.history) == 1
        assert ctrl.alpha > 0.9

    def test_step_time_parallel_processors(self):
        ctrl = self.make()
        ctrl.alpha = 1.0
        cpu, npu = ctrl.split_batch(64)
        expected = max(cpu * 0.14, npu * 0.036)
        assert ctrl.step_time(64) == pytest.approx(expected)

    def test_low_alpha_slows_but_protects_accuracy(self):
        ctrl = self.make()
        ctrl.alpha = 0.01
        cpu, _ = ctrl.split_batch(100)
        assert cpu >= 98  # nearly everything on the CPU
