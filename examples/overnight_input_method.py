#!/usr/bin/env python
"""Scenario: the paper's motivating deployment (§1) — retraining an
input-method-style model overnight on idle SoCs.

The edge operator's day: game sessions occupy the cluster until late
evening; the tidal trace exposes the overnight idle window; the global
scheduler checks whether the training job fits; training runs with
preemption enabled in case users come back early.

Run:  python examples/overnight_input_method.py
"""

from repro.cluster import ClusterTopology, TidalTrace
from repro.core import PreemptionEvent, SoCFlow, SoCFlowOptions
from repro.data import load_dataset
from repro.distributed import RunConfig


def main() -> None:
    # --- 1. When is the cluster free? -------------------------------
    trace = TidalTrace(seed=7)
    window = trace.longest_idle_window(busy_threshold=0.25)
    print(f"average cluster utilisation : {trace.average_utilization():.0%}")
    print(f"overnight idle window       : "
          f"{window.start_hour % 24:.1f}h -> {window.end_hour:.1f}h "
          f"({window.duration_hours:.1f} h)")

    # --- 2. The training job ----------------------------------------
    # An EMNIST-style character model (the paper's input-method example
    # updates per region per night).
    task = load_dataset("emnist", scale=0.03, image_size=16, seed=1)
    config = RunConfig(
        task=task,
        model_name="lenet5",
        width=1.0,
        batch_size=16,
        lr=0.05,
        momentum=0.9,
        max_epochs=8,
        topology=ClusterTopology(num_socs=32),
        sim_samples_per_epoch=112_800,
        sim_global_batch=64,
        num_groups=4,
    )

    # --- 3. Train, tolerating an early-morning user surge ------------
    # At epoch 6 one logical group is preempted by returning user load;
    # SoCFlow checkpoints it and continues with the remaining groups.
    options = SoCFlowOptions(events=(PreemptionEvent(epoch=6,
                                                     num_groups=1),))
    result = SoCFlow(options).train(config)

    print("\n=== overnight training run ===")
    print(f"final accuracy   : {result.final_accuracy:.1%}")
    print(f"simulated time   : {result.sim_time_hours:.2f} h")
    print(f"groups preempted : {result.extra['groups_preempted']}")

    fits = result.sim_time_hours < window.duration_hours
    print(f"fits the idle window ({window.duration_hours:.1f} h)? "
          f"{'yes - model ships in the morning' if fits else 'NO'}")
    if not fits:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
