"""Perf smoke test: produce ``BENCH_perf.json`` and gate regressions.

Runs the host wall-clock harness (``perf_harness.py``) in smoke mode,
writes the report to ``$BENCH_PERF_OUT`` (default ``BENCH_perf.json``
in the current directory — CI uploads it as a workflow artifact), and
fails when the fused-vs-per-key aggregation speedup regresses more
than 25% relative to the committed ``baseline.json``.

Wall-clock assertions on shared CI runners are noisy, so the gate
retries once with more repeats before declaring a regression; the
measured margin (~4.3x fused speedup against a 2x floor and a 3.2x
baseline gate) leaves plenty of headroom.

Not part of the tier-1 suite (``testpaths = ["tests"]``); CI runs it
explicitly with ``python -m pytest benchmarks/perf -q``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from perf_harness import bench_aggregation, run_harness

_HERE = Path(__file__).resolve().parent


@pytest.fixture(scope="module")
def report() -> dict:
    report = run_harness("smoke")
    out = Path(os.environ.get("BENCH_PERF_OUT", "BENCH_perf.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


@pytest.fixture(scope="module")
def baseline() -> dict:
    with open(_HERE / "baseline.json") as fh:
        return json.load(fh)


def test_report_has_all_sections(report):
    assert set(report) >= {"mode", "host", "conv", "aggregation",
                           "bucketed_aggregation", "epoch"}
    for section in ("forward", "forward_backward"):
        assert report["conv"][section]["median_s"] > 0
    for path in ("fused", "per_key", "per_key_fallback"):
        assert report["aggregation"][path]["median_s"] > 0
    for variant in ("sequential", "workers2"):
        assert report["epoch"][variant]["median_s"] > 0


def test_bucketed_aggregation_geometries(report):
    """The per-bucket merge ran (bit-equality asserted inside the
    harness) and its geometries are what the overlap plan produces."""
    bucketed = report["bucketed_aggregation"]
    assert bucketed["one_bucket"]["num_buckets"] == 1
    assert bucketed["buckets8"]["num_buckets"] > 1
    assert bucketed["per_tensor"]["num_buckets"] > \
        bucketed["buckets8"]["num_buckets"]
    for name in ("one_bucket", "buckets8", "per_tensor"):
        assert bucketed[name]["median_s"] > 0


def test_fused_aggregation_meets_absolute_target(report):
    """Acceptance criterion: fused >= 2x over the per-key reference."""
    speedup = report["aggregation"]["speedup"]
    if speedup < 2.0:                                   # noisy runner: retry
        speedup = bench_aggregation(repeats=50)["speedup"]
    assert speedup >= 2.0, (
        f"fused aggregation only {speedup:.2f}x over the per-key "
        f"reference (need >= 2x)")


def test_fused_aggregation_not_regressed_vs_baseline(report, baseline):
    """CI gate: fail on a >25% relative regression vs the committed
    baseline speedup."""
    floor = 0.75 * baseline["aggregation"]["speedup"]
    speedup = report["aggregation"]["speedup"]
    if speedup < floor:                                 # noisy runner: retry
        speedup = bench_aggregation(repeats=50)["speedup"]
    assert speedup >= floor, (
        f"fused aggregation speedup {speedup:.2f}x fell below 75% of the "
        f"committed baseline ({baseline['aggregation']['speedup']:.2f}x; "
        f"gate at {floor:.2f}x) — the fused data plane regressed")
