"""Unit tests for the autograd Tensor: op semantics and graph mechanics."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_add_scalar_coercion(self):
        out = 2.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.numpy(), [3.0, 4.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([8.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-2.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [6.0])

    def test_neg_and_sub(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([4.0], requires_grad=True)
        (a - b).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((10.0 - a).numpy(), [8.0])
        np.testing.assert_allclose((10.0 / a).numpy(), [5.0])


class TestBroadcasting:
    def test_add_broadcast_grad_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_mul_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 5, 3)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 1, 3)
        np.testing.assert_allclose(a.grad, 5.0 * np.ones((2, 1, 3)))

    def test_matmul_batched_broadcast(self):
        a = Tensor(np.random.default_rng(0).standard_normal((5, 2, 3)),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).standard_normal((3, 4)),
                   requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (5, 2, 3)
        assert b.grad.shape == (3, 4)


class TestReductionsAndShaping:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.ones((2, 1)))
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_scales_gradient(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, 0.25 * np.ones(4))

    def test_mean_multi_axis(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1 / 12))

    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_gradient(self):
        a = Tensor(np.random.default_rng(2).standard_normal((2, 3, 4)),
                   requires_grad=True)
        a.transpose(2, 0, 1).sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_scatter_gradient(self):
        a = Tensor(np.zeros((5,)), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0, 1.0, 0, 0])

    def test_concatenate_splits_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_pad2d_gradient_strips_padding(self):
        a = Tensor(np.ones((1, 1, 3, 3)), requires_grad=True)
        out = a.pad2d(2)
        assert out.shape == (1, 1, 7, 7)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 3, 3)))


class TestNonlinearities:
    def test_relu_masks_gradient(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_exp_log_sqrt_tanh_sigmoid_values(self):
        x = np.array([0.5, 1.5], dtype=np.float32)
        a = Tensor(x)
        np.testing.assert_allclose(a.exp().numpy(), np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(a.log().numpy(), np.log(x), rtol=1e-6)
        np.testing.assert_allclose(a.sqrt().numpy(), np.sqrt(x), rtol=1e-6)
        np.testing.assert_allclose(a.tanh().numpy(), np.tanh(x), rtol=1e-6)
        np.testing.assert_allclose(a.sigmoid().numpy(),
                                   1 / (1 + np.exp(-x)), rtol=1e-6)

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_ties_split_gradient(self):
        a = Tensor([3.0, 3.0, 1.0], requires_grad=True)
        a.max().backward(np.array(1.0))
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2,)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_gradient_accumulates_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward(np.ones(1))  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [5.0])

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_on_exception(self):
        from repro.nn.tensor import is_grad_enabled
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_detach_and_copy(self):
        a = Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad
        c = a.copy()
        assert c.requires_grad
        c.data[0] = 9.0
        assert a.data[0] == 1.0

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.ones(1))
        a.zero_grad()
        assert a.grad is None

    def test_repr_and_len_and_item(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        assert "requires_grad" in repr(a)
        assert len(a) == 3
        assert Tensor([2.5]).item() == pytest.approx(2.5)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [1.0])
