"""Fixtures for co-scheduling tests: tiny jobs + hand-shaped arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterTopology
from repro.distributed import RunConfig


@pytest.fixture(scope="session")
def serving_topology():
    return ClusterTopology(num_socs=8)


@pytest.fixture()
def config_factory(tiny_task, serving_topology):
    """job -> RunConfig on the shared tiny task (fast real math)."""
    def factory(job):
        return RunConfig(
            task=tiny_task, model_name="lenet5", width=1.0, batch_size=16,
            lr=0.05, max_epochs=job.epochs, seed=job.seed,
            topology=serving_topology, sim_samples_per_epoch=2_000,
            sim_global_batch=64, num_groups=2)
    return factory


def uniform_times(t0: float, t1: float, rps: float) -> np.ndarray:
    """Evenly spaced arrivals at ``rps`` over ``[t0, t1)`` hours."""
    n = int(round((t1 - t0) * 3600.0 * rps))
    return t0 + (np.arange(n) + 0.5) * (t1 - t0) / max(n, 1)
