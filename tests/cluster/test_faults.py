"""Fault injection: events, schedules, the injector, spec parsing, and
degraded-link behaviour of the network fabric."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (ClusterTopology, FaultInjector, FaultSchedule,
                           FaultSpecError, Flow, NetworkFabric,
                           NicDegradation, PreemptionStorm, SoCCrash,
                           StragglerFault, parse_fault_spec)
from repro.comm import RetryPolicy


class TestEventValidation:
    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            SoCCrash(-1, 0)

    def test_recovery_must_follow_crash(self):
        with pytest.raises(ValueError):
            SoCCrash(3, 0, recover_epoch=3)

    def test_nic_multiplier_range(self):
        with pytest.raises(ValueError):
            NicDegradation(0, 0, 0.0)
        with pytest.raises(ValueError):
            NicDegradation(0, 0, 1.0)

    def test_straggler_factor_range(self):
        with pytest.raises(ValueError):
            StragglerFault(0, 0, 1.5)

    def test_storm_needs_positive_groups(self):
        with pytest.raises(ValueError):
            PreemptionStorm(0, num_groups=0)


class TestFaultSchedule:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(("not an event",))

    def test_dead_socs_respects_recovery_window(self):
        schedule = FaultSchedule((SoCCrash(2, 7, recover_epoch=5),))
        assert schedule.dead_socs(1) == set()
        assert schedule.dead_socs(2) == {7}
        assert schedule.dead_socs(4) == {7}
        assert schedule.dead_socs(5) == set()

    def test_permanent_crash_never_recovers(self):
        schedule = FaultSchedule((SoCCrash(1, 0),))
        assert schedule.dead_socs(100) == {0}

    def test_nic_multipliers_compound_and_expire(self):
        schedule = FaultSchedule((
            NicDegradation(1, 0, 0.5, recover_epoch=4),
            NicDegradation(2, 0, 0.5, recover_epoch=3),
            NicDegradation(1, 3, 0.25),
        ))
        assert schedule.nic_multipliers(0) == {}
        assert schedule.nic_multipliers(1) == {0: 0.5, 3: 0.25}
        assert schedule.nic_multipliers(2) == {0: 0.25, 3: 0.25}
        assert schedule.nic_multipliers(3) == {0: 0.5, 3: 0.25}
        assert schedule.nic_multipliers(4) == {3: 0.25}

    def test_straggler_factors_are_persistent_and_take_worst(self):
        schedule = FaultSchedule((StragglerFault(1, 0, 0.5),
                                  StragglerFault(3, 0, 0.8)))
        assert schedule.straggler_factors(0) == {}
        assert schedule.straggler_factors(2) == {0: 0.5}
        assert schedule.straggler_factors(3) == {0: 0.5}

    def test_max_epoch_and_len(self):
        schedule = FaultSchedule((SoCCrash(4, 0), PreemptionStorm(2)))
        assert schedule.max_epoch == 4
        assert len(schedule) == 2
        assert bool(schedule)
        assert not FaultSchedule(())

    def test_validate_for_rejects_out_of_range_ids(self):
        topo = ClusterTopology(num_socs=10)
        with pytest.raises(ValueError):
            FaultSchedule((SoCCrash(0, 10),)).validate_for(topo)
        with pytest.raises(ValueError):
            FaultSchedule((NicDegradation(0, 99, 0.5),)).validate_for(topo)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        topo = ClusterTopology(num_socs=32)
        a = FaultInjector(topo, seed=7, crash_rate=0.05, flap_rate=0.1,
                          straggler_rate=0.05, storm_rate=0.1).generate(10)
        b = FaultInjector(topo, seed=7, crash_rate=0.05, flap_rate=0.1,
                          straggler_rate=0.05, storm_rate=0.1).generate(10)
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        topo = ClusterTopology(num_socs=32)
        kwargs = dict(crash_rate=0.1, flap_rate=0.2, straggler_rate=0.1)
        a = FaultInjector(topo, seed=1, **kwargs).generate(12)
        b = FaultInjector(topo, seed=2, **kwargs).generate(12)
        assert a.events != b.events

    def test_epoch_zero_stays_clean(self):
        topo = ClusterTopology(num_socs=16)
        schedule = FaultInjector(topo, seed=0, crash_rate=0.5,
                                 flap_rate=0.5).generate(8)
        assert all(e.epoch >= 1 for e in schedule)

    def test_sample_exact_counts(self):
        topo = ClusterTopology(num_socs=32)
        schedule = FaultInjector(topo, seed=3).sample(
            8, num_crashes=4, num_flaps=1, num_stragglers=2)
        crashes = [e for e in schedule if isinstance(e, SoCCrash)]
        flaps = [e for e in schedule if isinstance(e, NicDegradation)]
        stragglers = [e for e in schedule if isinstance(e, StragglerFault)]
        assert len(crashes) == 4 and len(flaps) == 1 and len(stragglers) == 2
        # distinct SoCs across crashes and stragglers
        socs = [e.soc for e in crashes + stragglers]
        assert len(set(socs)) == len(socs)

    def test_sample_rejects_impossible_counts(self):
        topo = ClusterTopology(num_socs=4)
        with pytest.raises(ValueError):
            FaultInjector(topo, seed=0).sample(4, num_crashes=5)
        with pytest.raises(ValueError):
            FaultInjector(topo, seed=0).sample(1, num_crashes=1)


class TestSpecParsing:
    def test_crash_clause(self):
        schedule = parse_fault_spec("crash:epoch=1,soc=3,until=4")
        (event,) = schedule.events
        assert event == SoCCrash(1, 3, 4)

    def test_flap_alias_and_storm_default(self):
        schedule = parse_fault_spec(
            "flap:epoch=2,pcb=0,mult=0.2;storm:epoch=3")
        kinds = {type(e) for e in schedule}
        assert kinds == {NicDegradation, PreemptionStorm}
        storm = next(e for e in schedule if isinstance(e, PreemptionStorm))
        assert storm.num_groups == 1

    def test_random_clause_needs_topology(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("random:seed=1,epochs=4,crashes=2")
        topo = ClusterTopology(num_socs=16)
        schedule = parse_fault_spec("random:seed=1,epochs=4,crashes=2", topo)
        assert len(schedule) == 2

    @pytest.mark.parametrize("bad", [
        "",
        "   ;  ",
        "bogus",
        "warp:epoch=1",
        "crash:epoch=1",                        # missing soc
        "crash:epoch=1,soc",                    # no value
        "crash:epoch=one,soc=2",                # non-int
        "nic:epoch=1,pcb=0,mult=2.0",           # multiplier out of range
        "crash:epoch=1,soc=2,warp=9",           # unknown field
        "straggler:epoch=1,soc=2",              # missing factor
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_out_of_range_soc_rejected_with_topology(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("crash:epoch=1,soc=99",
                             ClusterTopology(num_socs=10))


class TestRetryPolicy:
    def test_healthy_links_never_retry(self):
        policy = RetryPolicy()
        assert policy.retries_for(1.0) == 0
        assert policy.retries_for(0.9) == 0
        assert policy.penalty_seconds(0) == 0.0

    def test_retries_grow_with_severity_and_cap(self):
        policy = RetryPolicy(max_retries=5, degraded_threshold=0.5)
        r = [policy.retries_for(m) for m in (0.5, 0.25, 0.1, 0.01, 1e-9)]
        assert r == sorted(r)
        assert r[0] >= 1
        assert r[-1] == 5

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(timeout_s=1.0, backoff_base_s=1.0,
                             backoff_factor=2.0)
        # 3 retries: 3 timeouts + backoffs 1 + 2 + 4
        assert policy.penalty_seconds(3) == pytest.approx(3.0 + 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(degraded_threshold=0.0)


class TestDegradedFabric:
    def _fabric(self, num_socs=10):
        return NetworkFabric(ClusterTopology(num_socs=num_socs))

    def test_multiplier_slows_cross_pcb_transfers(self):
        fabric = self._fabric()
        flow = [Flow(0, 9, 1e8)]                # PCB 0 -> PCB 1
        healthy = fabric.transfer_time(flow)
        fabric.set_pcb_multiplier(0, 0.75)      # above retry threshold
        degraded = fabric.transfer_time(flow)
        assert degraded > healthy
        assert fabric.total_retries == 0

    def test_deep_degradation_pays_retries(self):
        fabric = self._fabric()
        flow = [Flow(0, 9, 1e8)]
        fabric.set_pcb_multiplier(0, 0.1)
        before = fabric.transfer_time(flow)
        assert fabric.total_retries > 0
        # the penalty is additive on top of the slower link
        fabric2 = self._fabric()
        fabric2.set_pcb_multiplier(0, 0.1)
        policy = fabric2.retry_policy
        expected_penalty = policy.penalty_seconds(policy.retries_for(0.1))
        healthy = self._fabric().transfer_time(flow)
        assert before > healthy * (1 / 0.1) * 0.5
        assert before == pytest.approx(
            healthy + 1e8 * 8 * (1 / (1e9 * 0.1) - 1 / 1e9)
            + expected_penalty)

    def test_unrelated_pcb_unaffected(self):
        fabric = self._fabric()
        fabric.set_pcb_multiplier(1, 0.1)
        intra = [Flow(0, 1, 1e8)]               # stays on PCB 0
        assert fabric.transfer_time(intra) == \
            self._fabric().transfer_time(intra)

    def test_reset_and_replace(self):
        fabric = self._fabric()
        fabric.set_pcb_multiplier(0, 0.5)
        fabric.apply_pcb_multipliers({1: 0.25})
        assert fabric.degraded_pcbs == {1: 0.25}
        fabric.reset_degradations()
        assert fabric.degraded_pcbs == {}
        fabric.set_pcb_multiplier(1, 1.0)       # 1.0 clears the entry
        assert fabric.degraded_pcbs == {}

    def test_invalid_multiplier_rejected(self):
        fabric = self._fabric()
        with pytest.raises(ValueError):
            fabric.set_pcb_multiplier(0, 0.0)
        with pytest.raises(ValueError):
            fabric.set_pcb_multiplier(99, 0.5)

    def test_degraded_ring_allreduce_slower(self):
        fabric = self._fabric()
        ring = list(range(10))
        healthy = fabric.ring_allreduce_time(ring, 1e7)
        fabric.set_pcb_multiplier(0, 0.2)
        assert fabric.ring_allreduce_time(ring, 1e7) > healthy

    @given(st.floats(0.01, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_any_multiplier_never_speeds_up_transfers(self, mult):
        fabric = self._fabric()
        flow = [Flow(0, 9, 1e7)]
        healthy = fabric.transfer_time(flow)
        fabric.set_pcb_multiplier(0, mult)
        assert fabric.transfer_time(flow) >= healthy
