"""Baseline strategies: learning behaviour and cost orderings."""

from dataclasses import replace

import numpy as np
import pytest

from repro.distributed import (STRATEGY_REGISTRY, FedAvg, HiPress,
                               LocalSingleSoC, ParameterServer,
                               RingAllReduce, TreeFedAvg, TwoDParallel,
                               build_strategy)


@pytest.fixture(scope="module")
def results(tiny_task):
    """Train every baseline once on the shared quick config."""
    from repro.cluster import ClusterTopology
    from repro.distributed import RunConfig
    config = RunConfig(
        task=tiny_task, model_name="vgg11", width=0.15, batch_size=16,
        lr=0.05, momentum=0.9, max_epochs=3, seed=0,
        topology=ClusterTopology(num_socs=32),
        sim_samples_per_epoch=50_000, sim_global_batch=64, num_groups=8)
    return {name: build_strategy(name).train(config)
            for name in STRATEGY_REGISTRY}


class TestRegistry:
    def test_all_six_baselines_plus_local_and_ssp(self):
        assert set(STRATEGY_REGISTRY) == {"local", "ps", "ring", "hipress",
                                          "2d_paral", "ssp", "fedavg",
                                          "t_fedavg"}

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            build_strategy("allreduce9000")


class TestLearning:
    def test_every_strategy_learns_above_chance(self, results, tiny_task):
        chance = 1.0 / tiny_task.num_classes
        for name, result in results.items():
            assert result.best_accuracy > chance, name

    def test_ssgd_strategies_agree_on_accuracy(self, results):
        """PS / RING / 2D compute identical updates (Table 3 agreement)."""
        assert results["ps"].accuracy_history == \
            results["ring"].accuracy_history == \
            results["2d_paral"].accuracy_history

    def test_fedavg_variants_agree(self, results):
        assert results["fedavg"].accuracy_history == \
            results["t_fedavg"].accuracy_history

    def test_all_report_requested_epochs(self, results):
        assert all(r.epochs_run == 3 for r in results.values())


class TestCostOrderings:
    def test_ps_is_slowest_dml(self, results):
        """Observation #2 / Figure 8: PS incast is the worst."""
        assert results["ps"].sim_time_s > results["ring"].sim_time_s
        assert results["ps"].sim_time_s > results["hipress"].sim_time_s
        assert results["ps"].sim_time_s > results["2d_paral"].sim_time_s

    def test_compression_beats_plain_ring(self, results):
        assert results["hipress"].sim_time_s < results["ring"].sim_time_s

    def test_fl_rounds_cheap_per_epoch(self, results):
        """FedAvg syncs once per epoch -> far less wall time per epoch."""
        assert results["fedavg"].sim_time_s < results["ring"].sim_time_s

    def test_tree_aggregation_no_slower_than_flat_fedavg(self, results):
        assert (results["t_fedavg"].sim_time_s
                <= results["fedavg"].sim_time_s * 1.001)

    def test_sync_dominates_ring(self, results):
        """Figure 12: RING spends ~80% of busy time in sync."""
        assert results["ring"].phase_shares()["sync"] > 0.6

    def test_fedavg_compute_dominated(self, results):
        assert results["fedavg"].phase_shares()["compute"] > 0.6

    def test_energy_positive_and_ps_worst(self, results):
        dml = ["ps", "ring", "hipress", "2d_paral"]
        assert all(results[n].energy.total_j > 0 for n in dml)
        assert results["ps"].energy.total_j == max(
            results[n].energy.total_j for n in dml)


class TestLocal:
    def test_local_runs_on_one_soc(self, results):
        # energy must be charged for a single SoC, not the fleet
        assert results["local"].energy.total_j < \
            results["ring"].energy.total_j

    def test_npu_local_faster_than_cpu_local(self, tiny_task, quick_config):
        config = replace(quick_config, max_epochs=1)
        cpu = LocalSingleSoC(processor="cpu").train(config)
        npu = LocalSingleSoC(processor="npu").train(config)
        assert npu.sim_time_s < cpu.sim_time_s

    def test_invalid_processor_raises(self):
        with pytest.raises(ValueError):
            LocalSingleSoC(processor="tpu")


class TestTargetTracking:
    def test_epochs_to_target_recorded(self, tiny_task, quick_config):
        config = replace(quick_config, max_epochs=4, target_accuracy=0.05)
        result = RingAllReduce().train(config)
        assert result.converged
        assert result.epochs_to_target == 1
        assert result.time_to_target_s() == pytest.approx(
            result.sim_time_s / 4)

    def test_unreachable_target(self, quick_config):
        config = replace(quick_config, max_epochs=1, target_accuracy=1.01)
        result = RingAllReduce().train(config)
        assert not result.converged
        assert result.time_to_target_s() is None


class TestHiPressInternals:
    def test_warmup_schedule(self):
        strategy = HiPress(compression_ratio=0.01)
        strategy.on_epoch_begin(0)
        assert strategy.compressor.ratio == 0.25
        strategy.on_epoch_begin(5)
        assert strategy.compressor.ratio == 0.01

    def test_gradients_actually_sparsified(self, quick_config):
        strategy = HiPress(compression_ratio=0.01)
        strategy.on_epoch_begin(10)
        result = strategy.train(replace(quick_config, max_epochs=1))
        assert result.epochs_run == 1


class TestTwoDInternals:
    def test_groups_partition(self, quick_config):
        from repro.distributed.base import CostModel
        strategy = TwoDParallel()
        cost = CostModel(quick_config)
        groups = strategy._groups(cost)
        assert len(groups) == quick_config.num_groups
        flat = [s for g in groups for s in g]
        assert len(flat) == len(set(flat))

    def test_pipeline_bubble_shrinks_compute(self, quick_config):
        from repro.distributed.base import CostModel
        from repro.distributed.ring_allreduce import RingAllReduce
        cost = CostModel(quick_config)
        two_d = TwoDParallel().step_compute_seconds(cost)
        flat = RingAllReduce().step_compute_seconds(cost)
        # pipeline splits the model across 4 SoCs; even with the bubble
        # and activation traffic it beats one SoC doing the whole model
        assert two_d < flat * 4
