"""Straight-through-estimator quantisation inside the autograd graph.

Real INT8 training quantises *every layer's* activations, not just the
input; :func:`ste_quantize` snaps a tensor onto the INT8 grid in the
forward pass while passing gradients through unchanged (the standard
STE).  :func:`attach_activation_quant` retrofits a model so each
Conv2d/Linear output is quantised with its own EMA-tracked scale, via
the layers' explicit ``output_quant`` hook (state-dict keys unchanged).
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from .int8 import QuantConfig, dequantize, quantize
from .observer import EmaObserver

__all__ = ["ste_quantize", "ste_cast_fp16", "ActivationQuantizer",
           "attach_activation_quant", "detach_activation_quant"]


def ste_quantize(x: Tensor, scale: float, qmax: int,
                 observer: EmaObserver | None = None) -> Tensor:
    """Forward: snap to the INT8 grid; backward: identity gradient.

    ``observer`` is metadata for the graph executor: when the op is
    captured, the compiled program re-reads ``observer.scale`` on every
    replay (and performs the observation itself), so EMA scale drift
    does not force a recapture.  It does not change the eager result —
    ``scale`` is still the value used here.
    """
    out_data = dequantize(quantize(x.data, scale, qmax), scale)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward, op="ste_quant",
                        ctx={"qmax": qmax, "observer": observer})


def ste_cast_fp16(x: Tensor) -> Tensor:
    """Forward: round-trip through IEEE float16; backward: identity."""
    out_data = x.data.astype(np.float16).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward, op="ste_fp16")


class ActivationQuantizer:
    """Per-layer INT8 activation quantiser with an EMA-tracked scale."""

    def __init__(self, config: QuantConfig):
        self.config = config
        self.observer = EmaObserver(config.qmax)

    def __call__(self, out: Tensor) -> Tensor:
        if self.config.float16:
            return ste_cast_fp16(out)
        self.observer.observe(out.data)
        return ste_quantize(out, self.observer.scale, self.config.qmax,
                            observer=self.observer)


def attach_activation_quant(model: Module, config: QuantConfig) -> int:
    """Give every Conv2d/Linear its own quantiser; returns the count."""
    attached = 0
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.output_quant = ActivationQuantizer(config)
            attached += 1
    return attached


def detach_activation_quant(model: Module) -> None:
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.output_quant = None
