"""Numeric gradient checks: analytic backward vs central differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.nn import functional as F


def numeric_grad(f, x0: np.ndarray, index, eps: float = 1e-3) -> float:
    xp = x0.copy()
    xp[index] += eps
    xm = x0.copy()
    xm[index] -= eps
    return (f(xp) - f(xm)) / (2 * eps)


def analytic_grad(f_tensor, x0: np.ndarray, index) -> float:
    x = Tensor(x0.copy(), requires_grad=True)
    out = f_tensor(x)
    (out * out).sum().backward()
    return float(x.grad[index])


def check(op, x0, index, rtol=3e-2, atol=1e-3):
    def scalar(arr):
        out = op(Tensor(arr)).numpy()
        return float((out * out).sum())
    num = numeric_grad(scalar, x0, index)
    ana = analytic_grad(op, x0, index)
    assert ana == pytest.approx(num, rel=rtol, abs=atol)


RNG = np.random.default_rng(42)
X_IMG = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
W_CONV = (0.2 * RNG.standard_normal((4, 3, 3, 3))).astype(np.float32)
W_DW = (0.2 * RNG.standard_normal((3, 1, 3, 3))).astype(np.float32)


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv_input_grad(self, stride, padding):
        w = Tensor(W_CONV)
        check(lambda t: F.conv2d(t, w, stride=stride, padding=padding),
              X_IMG, (0, 1, 4, 4))

    def test_conv_weight_grad(self):
        x = Tensor(X_IMG)

        def scalar(warr):
            out = F.conv2d(x, Tensor(warr), padding=1).numpy()
            return float((out * out).sum())

        w = Tensor(W_CONV.copy(), requires_grad=True)
        out = F.conv2d(x, w, padding=1)
        (out * out).sum().backward()
        idx = (2, 1, 0, 2)
        assert float(w.grad[idx]) == pytest.approx(
            numeric_grad(scalar, W_CONV, idx), rel=3e-2)

    def test_conv_bias_grad(self):
        x = Tensor(X_IMG)
        w = Tensor(W_CONV)
        b = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        out = F.conv2d(x, w, b, padding=1)
        out.sum().backward()
        # bias gradient = count of spatial x batch positions
        np.testing.assert_allclose(b.grad, np.full(4, 2 * 8 * 8), rtol=1e-5)

    def test_depthwise_input_grad(self):
        w = Tensor(W_DW)
        check(lambda t: F.conv2d(t, w, padding=1, groups=3),
              X_IMG, (1, 2, 3, 3))

    def test_grouped_weight_grad(self):
        x = Tensor(X_IMG)
        w0 = (0.2 * RNG.standard_normal((6, 1, 3, 3))).astype(np.float32)

        def scalar(warr):
            out = F.conv2d(x, Tensor(warr), padding=1, groups=3).numpy()
            return float((out * out).sum())

        w = Tensor(w0.copy(), requires_grad=True)
        (F.conv2d(x, w, padding=1, groups=3) ** 2).sum().backward()
        idx = (4, 0, 1, 1)
        assert float(w.grad[idx]) == pytest.approx(
            numeric_grad(scalar, w0, idx), rel=3e-2)


class TestPoolingGradients:
    def test_maxpool_grad(self):
        # Distinct, small-magnitude values so argmax is stable under the
        # epsilon bump and float32 keeps resolution in the squared sum.
        x = 0.01 * np.arange(2 * 3 * 8 * 8, dtype=np.float32).reshape(
            2, 3, 8, 8)
        check(lambda t: F.max_pool2d(t, 2), x, (0, 1, 3, 3))

    def test_avgpool_grad(self):
        check(lambda t: F.avg_pool2d(t, 2), X_IMG, (0, 2, 5, 5))

    def test_global_avgpool_grad(self):
        check(lambda t: F.global_avg_pool2d(t), X_IMG, (1, 0, 2, 2))


class TestNormalizationAndLoss:
    def test_batchnorm_train_grad(self):
        weight = Tensor(np.ones(3, dtype=np.float32))
        bias = Tensor(np.zeros(3, dtype=np.float32))
        # Project through a fixed random tensor: sum(bn(x)^2) is nearly
        # constant (normalised output), so the raw check is degenerate.
        proj = Tensor(RNG.standard_normal(X_IMG.shape).astype(np.float32))

        def op(t):
            out = F.batch_norm(t, weight, bias, np.zeros(3, np.float32),
                               np.ones(3, np.float32), training=True)
            return out * proj

        check(op, X_IMG, (0, 1, 2, 2), rtol=5e-2, atol=5e-3)

    def test_log_softmax_grad(self):
        x0 = RNG.standard_normal((4, 7)).astype(np.float32)
        check(lambda t: F.log_softmax(t), x0, (1, 3))

    def test_cross_entropy_grad_matches_softmax_minus_onehot(self):
        x0 = RNG.standard_normal((3, 5)).astype(np.float32)
        targets = np.array([0, 2, 4])
        x = Tensor(x0, requires_grad=True)
        F.cross_entropy(x, targets).backward()
        soft = np.exp(x0 - x0.max(1, keepdims=True))
        soft /= soft.sum(1, keepdims=True)
        expected = soft.copy()
        expected[np.arange(3), targets] -= 1.0
        expected /= 3.0
        np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-6)


class TestPropertyBased:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matmul_grad_any_seed(self, seed):
        rng = np.random.default_rng(seed)
        a0 = rng.standard_normal((3, 4)).astype(np.float32)
        b = Tensor(rng.standard_normal((4, 2)).astype(np.float32))
        idx = (rng.integers(0, 3), rng.integers(0, 4))
        check(lambda t: t @ b, a0, idx)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_elementwise_chain_any_seed(self, seed):
        rng = np.random.default_rng(seed)
        x0 = (0.5 + rng.random((4, 4))).astype(np.float32)  # positive for log
        idx = (rng.integers(0, 4), rng.integers(0, 4))
        check(lambda t: (t.log() + t.sqrt()).sigmoid(), x0, idx)
