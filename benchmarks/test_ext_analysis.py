"""Extension: trace analysis — critical path, straggler skew, diffing.

The acceptance bar for the analysis engine:

- ``analyze report`` on a traced 60-SoC SoCFlow run accounts for at
  least 99% of every epoch's simulated seconds across critical-path
  plus off-path phase buckets;
- ``analyze diff`` of an unfused vs fused trace of the same seed
  reports the step-time win with per-phase attribution (the fused
  run's visible sync shrinks; compute is untouched);
- eager vs ``--graph`` traces of the same seed are timeline-identical
  — the diff's only signal is the graph-executor note — because the
  compiled executor replays the exact same simulated clock;
- reports are deterministic: same seed twice renders byte-identical
  text in every format.

Writes the slowest-epoch markdown report to ``$BENCH_ANALYSIS_OUT``
when set (CI uploads it as a workflow artifact).
"""

import os

import pytest

from conftest import print_block

from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.cluster import FaultSchedule, SoCCrash
from repro.telemetry import (MetricsRegistry, Telemetry, Tracer,
                             analyze_records, diff_reports, render_diff,
                             render_report)

REPORT_ENV = "BENCH_ANALYSIS_OUT"
NUM_SOCS = 60
EPOCHS = 3


def traced_run(suite, workload, method, *, num_socs=16, epochs=2,
               **config_kwargs):
    """One training run with the tracer on; returns (result, records)."""
    telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
    config = suite.config(workload, num_socs=num_socs, max_epochs=epochs,
                          telemetry=telemetry, **config_kwargs)
    if method == "socflow":
        result = SoCFlow(SoCFlowOptions()).train(config)
    else:
        result = build_strategy(method).train(config)
    return result, list(telemetry.tracer.records)


@pytest.fixture(scope="module")
def sixty_soc_trace(suite):
    """A 60-SoC SoCFlow run with a mid-run crash (recovery on path)."""
    faults = FaultSchedule((SoCCrash(epoch=1, soc=7),))
    result, records = traced_run(
        suite, "lenet5_fmnist", "socflow", num_socs=NUM_SOCS,
        epochs=EPOCHS, fault_schedule=faults)
    return result, records


def test_sixty_soc_coverage(benchmark, sixty_soc_trace):
    result, records = benchmark.pedantic(
        lambda: sixty_soc_trace, rounds=1, iterations=1)
    report = analyze_records(records)
    print_block(f"ext-7: critical-path report, {NUM_SOCS} SoCs",
                render_report(report))

    assert len(report.epochs) == EPOCHS
    for window in report.epochs:
        # the acceptance bar: >= 99% of each epoch's simulated seconds
        # lands in a phase bucket (path + off-path), not "unattributed"
        assert window.coverage >= 0.99, (window.label, window.coverage)
        accounted = sum(window.phase_seconds.values())
        assert accounted == pytest.approx(
            window.seconds - window.unattributed_s)
    # whole-trace coverage follows from the per-window bars
    assert report.coverage >= 0.99
    # the crash epoch put recovery on the critical path
    crash_epoch = report.epochs[1]
    assert "recovery" in crash_epoch.phase_seconds
    assert any(seg.kind == "recovery" for seg in crash_epoch.path)
    # every SoC that did work shows up in the busy ledger
    assert len(crash_epoch.soc_busy) == NUM_SOCS - 1  # SoC 7 is dead

    out = os.environ.get(REPORT_ENV)
    if out:
        with open(out, "w") as fh:
            fh.write(render_report(report, fmt="markdown"))


def test_diff_attributes_fusion_win(benchmark, suite):
    """Unfused vs fused PS on ResNet-18: the diff names the sync win."""
    def compute():
        eager, _ = traced_run(suite, "resnet18", "ps")
        eager_records = _
        fused, fused_records = traced_run(
            suite, "resnet18", "ps", fusion_threshold_mb=4.0)
        return eager, eager_records, fused, fused_records

    eager, eager_records, fused, fused_records = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    assert fused.sim_time_s < eager.sim_time_s

    diff = diff_reports(analyze_records(eager_records),
                        analyze_records(fused_records))
    print_block("ext-7: unfused vs fused PS resnet18",
                render_diff(diff))

    # the headline: a significant step-time win, B faster than A
    assert diff.significant(diff.total)
    assert diff.total.delta < 0
    assert "faster" in diff.verdict
    # attributed to sync: visible sync shrinks, compute does not move
    sync = next(d for d in diff.phases if d.key == "sync")
    assert sync.delta < 0
    compute_delta = next((d for d in diff.phases if d.key == "compute"),
                         None)
    if compute_delta is not None:
        assert abs(compute_delta.rel) < 0.01
    # the hidden-sync estimator sees the newly overlapped comm
    assert diff.hidden.delta > 0


def test_graph_trace_is_timeline_identical(benchmark, suite):
    """Eager vs --graph, same seed: byte-level clock equivalence."""
    def compute():
        eager, eager_records = traced_run(suite, "vgg11", "ring")
        graph, graph_records = traced_run(suite, "vgg11", "ring",
                                          graph=True)
        return eager, eager_records, graph, graph_records

    eager, eager_records, graph, graph_records = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    assert graph.sim_time_s == eager.sim_time_s
    assert graph.accuracy_history == eager.accuracy_history

    diff = diff_reports(analyze_records(eager_records),
                        analyze_records(graph_records))
    print_block("ext-7: eager vs graph ring vgg11", render_diff(diff))

    assert not diff.significant(diff.total)
    assert diff.total.delta == pytest.approx(0.0, abs=1e-6)
    # the only structural signal is the graph-executor note
    assert any("graph executor" in note for note in diff.notes)


def test_reports_are_deterministic(suite):
    """Same seed twice => byte-identical rendered reports."""
    _, records_a = traced_run(suite, "lenet5_fmnist", "socflow", seed=3)
    _, records_b = traced_run(suite, "lenet5_fmnist", "socflow", seed=3)
    report_a = analyze_records(records_a)
    report_b = analyze_records(records_b)
    for fmt in ("table", "json", "markdown"):
        assert render_report(report_a, fmt=fmt) \
            == render_report(report_b, fmt=fmt)
