"""The SoCFlow model zoo (Table 2 of the paper).

Every constructor accepts ``width`` (channel multiplier) so the
pure-numpy harness can train faithful-but-narrow variants quickly; the
default ``width=1.0`` gives the standard architecture.
"""

from .lenet import LeNet5
from .vgg import VGG11
from .resnet import ResNet18, ResNet50
from .mobilenet import MobileNetV1
from .transformer import (LayerNorm, MultiHeadAttention, TransformerBlock,
                          VisionTransformer)
from .registry import build_model, MODEL_REGISTRY

__all__ = ["LeNet5", "VGG11", "ResNet18", "ResNet50", "MobileNetV1",
           "VisionTransformer", "LayerNorm", "MultiHeadAttention",
           "TransformerBlock", "build_model", "MODEL_REGISTRY"]
