"""Parameter-Server baseline (Li et al., NeurIPS'14).

Every step, all SoCs push FP32 gradients to one server SoC and pull the
updated weights back; everything serialises through the server's 1 Gbps
link — the paper measures 20.6 s per step at 32 SoCs on VGG-11, which
is why PS is the slowest baseline in Figure 8.
"""

from __future__ import annotations

from .base import CostModel
from .ssgd import SsgdStrategy

__all__ = ["ParameterServer"]


class ParameterServer(SsgdStrategy):
    name = "ps"

    def step_sync_seconds(self, cost: CostModel,
                          nbytes: float | None = None,
                          num_tensors: float | None = None) -> float:
        socs = list(range(cost.topology.num_socs))
        payload = cost.grad_bytes if nbytes is None else nbytes
        return cost.fabric.parameter_server_time(socs, payload,
                                                 num_tensors=num_tensors)
