"""Weight initialisers (Kaiming / Xavier), all seeded explicitly."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:                       # (out, in) linear weight
        return shape[1], shape[0]
    if len(shape) == 4:                       # (out, in, k, k) conv weight
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                    gain: float = math.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = math.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
