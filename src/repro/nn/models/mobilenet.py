"""MobileNet-V1 (Howard et al.): depthwise-separable convolutions."""

from __future__ import annotations

import numpy as np

from ..modules import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module,
                       ReLU, Sequential)
from ..tensor import Tensor

# (output channels, stride) per depthwise-separable block; CIFAR variant
# keeps early strides at 1 so 32x32 inputs retain spatial detail.
_MOBILENET_CFG = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]


def _scaled(channels: int, width: float) -> int:
    return max(1, int(round(channels * width)))


class DepthwiseSeparable(Module):
    """3x3 depthwise conv + 1x1 pointwise conv, each with BN+ReLU."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.depthwise = Conv2d(in_channels, in_channels, 3, rng,
                                stride=stride, padding=1, groups=in_channels,
                                bias=False)
        self.bn1 = BatchNorm2d(in_channels)
        self.pointwise = Conv2d(in_channels, out_channels, 1, rng, bias=False)
        self.bn2 = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        x = self.bn1(self.depthwise(x)).relu()
        return self.bn2(self.pointwise(x)).relu()


class MobileNetV1(Module):
    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, width: float = 1.0, seed: int = 0,
                 depth: int | None = None):
        super().__init__()
        del image_size
        rng = np.random.default_rng(seed)
        stem_out = _scaled(32, width)
        layers: list[Module] = [
            Conv2d(in_channels, stem_out, 3, rng, stride=1, padding=1,
                   bias=False),
            BatchNorm2d(stem_out),
            ReLU(),
        ]
        channels = stem_out
        cfg = _MOBILENET_CFG if depth is None else _MOBILENET_CFG[:depth]
        for out, stride in cfg:
            out = _scaled(out, width)
            layers.append(DepthwiseSeparable(channels, out, stride, rng))
            channels = out
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.pool(x)
        return self.fc(x)
