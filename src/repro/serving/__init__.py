"""Request-level inference serving with SLO-aware co-scheduling.

The training side of this repo harvests idle SoCs; this package
simulates the *serving* side that makes them idle — and takes them
back.  Where :mod:`repro.cluster.workload` models opaque user sessions
against a canned busy curve, here the inference workload exists at
request granularity:

- :mod:`arrivals` — per-region non-homogeneous Poisson request streams
  following the tidal diurnal shape, with flash-crowd surges; the whole
  horizon is pre-generated so realisations are policy-independent and
  reruns bit-identical.
- :mod:`replica` — per-SoC serving replicas: a batching service-time
  model derived from the same Figure-4a calibration as the training
  :class:`~repro.distributed.base.CostModel`.
- :mod:`plane` — the shared request queue, replica pool, p50/p99
  tracking against a configurable SLO, load shedding, and the
  demand/backlog/violation-driven autoscaler.
- :mod:`coscheduler` — an :class:`~repro.jobs.scheduler.ElasticScheduler`
  subclass where training and serving bid for SoCs: serving scale-ups
  claim idle chips first and preempt training (warm-checkpoint path)
  only on deficit; training grows back as load ebbs.

See DESIGN.md "Serving plane" for the arrival model, the SLO/bid
semantics and the preemption path.
"""

from .arrivals import ArrivalProcess, FlashCrowd, Region
from .coscheduler import ServingCoScheduler
from .plane import ServingPlane, WindowStats
from .replica import Replica, ServiceModel

__all__ = ["ArrivalProcess", "FlashCrowd", "Region", "Replica",
           "ServiceModel", "ServingCoScheduler", "ServingPlane",
           "WindowStats"]
