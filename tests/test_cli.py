"""CLI: argument parsing and command outputs."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "imagenet"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "socflow"
        assert args.socs == 32
        assert args.fusion_threshold_mb is None
        assert args.fusion_max_ops is None

    def test_fusion_flags_parse_on_run_and_jobs(self):
        args = build_parser().parse_args(
            ["run", "--fusion-threshold-mb", "4.5", "--fusion-max-ops", "8"])
        assert args.fusion_threshold_mb == 4.5
        assert args.fusion_max_ops == 8
        args = build_parser().parse_args(
            ["jobs", "--spec", "x.yaml", "--fusion-threshold-mb", "25"])
        assert args.fusion_threshold_mb == 25.0

    def test_fusion_max_ops_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fusion-max-ops", "0"])


class TestListCommand:
    def test_lists_everything(self):
        code, output = run_cli(["list"])
        assert code == 0
        assert "socflow" in output
        assert "vgg11" in output
        assert "quick" in output


class TestTraceCommand:
    def test_prints_trace_and_window(self):
        code, output = run_cli(["trace", "--threshold", "0.25"])
        assert code == 0
        assert "longest idle window" in output
        assert "busy" in output


class TestRunCommand:
    def test_run_lenet_quick(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16"])
        assert code == 0
        assert "socflow" in output
        assert "accuracy per epoch" in output

    def test_run_baseline(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "fedavg",
            "--epochs", "1", "--socs", "8"])
        assert code == 0
        assert "fedavg" in output


class TestFaultArgs:
    def test_run_with_crash_spec_prints_summary(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "2", "--socs", "16",
            "--faults", "crash:epoch=1,soc=3"])
        assert code == 0
        assert "faults: completed" in output
        assert "dead=[3]" in output

    def test_run_with_flap_and_storm(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "2", "--socs", "16",
            "--faults", "flap:epoch=1,pcb=0,mult=0.2,until=2;storm:epoch=1"])
        assert code == 0
        assert "faults: completed" in output

    def test_baseline_fail_stop_reports_abort(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "ring",
            "--epochs", "2", "--socs", "8",
            "--faults", "crash:epoch=1,soc=0"])
        assert code == 0
        assert "ABORTED at epoch 1" in output

    def test_baseline_continue_mode_completes(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "ring",
            "--epochs", "2", "--socs", "8", "--fault-mode", "continue",
            "--faults", "crash:epoch=1,soc=0"])
        assert code == 0
        assert "ABORTED" not in output

    @pytest.mark.parametrize("bad", [
        "bogus",
        "crash:epoch=1",
        "crash:epoch=one,soc=2",
        "nic:epoch=1,pcb=0,mult=2.0",
        "crash:epoch=1,soc=999",            # out of range for --socs
    ])
    def test_malformed_spec_exits_2(self, bad, capsys):
        code, _ = run_cli(["run", "--workload", "lenet5_fmnist",
                           "--epochs", "1", "--socs", "16",
                           "--faults", bad])
        assert code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_compare_rejects_malformed_spec(self, capsys):
        code, _ = run_cli(["compare", "--workload", "lenet5_fmnist",
                           "--methods", "ring,socflow", "--epochs", "1",
                           "--faults", "warp:epoch=1"])
        assert code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_bad_fault_mode_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fault-mode", "explode"])


class TestTelemetryArgs:
    def test_trace_writes_chrome_json(self, tmp_path):
        trace = tmp_path / "run.json"
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "2", "--socs", "16",
            "--faults", "crash:epoch=1,soc=3",
            "--trace", str(trace)])
        assert code == 0
        assert "per-epoch breakdown" in output
        assert f"-> {trace}" in output
        import json
        payload = json.loads(trace.read_text())
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"compute", "allreduce", "leader_sync", "recovery"} <= cats

    def test_trace_jsonl_format(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _ = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16",
            "--trace", str(trace), "--trace-format", "jsonl"])
        assert code == 0
        import json
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(line)["kind"] for line in lines)

    def test_metrics_flag_writes_registry(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16", "--metrics", str(metrics)])
        assert code == 0
        import json
        names = {json.loads(line)["name"]
                 for line in metrics.read_text().splitlines()}
        assert "epoch.seconds" in names and "run.sim_time_s" in names

    def test_network_summary_always_printed(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16"])
        assert code == 0
        assert "network: retries=" in output

    def test_degraded_pcbs_in_summary(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "2", "--socs", "16",
            "--faults", "flap:epoch=1,pcb=0,mult=0.2,until=3"])
        assert code == 0
        assert "degraded PCBs: 0@0.20" in output

    def test_compare_writes_per_method_files(self, tmp_path):
        trace = tmp_path / "cmp.json"
        code, output = run_cli([
            "compare", "--workload", "lenet5_fmnist",
            "--methods", "ring,socflow", "--epochs", "1", "--socs", "8",
            "--trace", str(trace)])
        assert code == 0
        assert (tmp_path / "cmp.ring.json").exists()
        assert (tmp_path / "cmp.socflow.json").exists()
        assert not trace.exists()


class TestJobsCommand:
    SPEC = """\
cluster:
  socs: 8
  seed: 0
  peak_sessions_per_hour: 10
jobs:
  - id: smoke
    workload: lenet5_fmnist
    min_socs: 2
    max_socs: 4
    epochs: 1
"""

    def write_spec(self, tmp_path, text=None):
        path = tmp_path / "jobs.yaml"
        path.write_text(text or self.SPEC)
        return str(path)

    def test_spec_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    def test_schedules_job_file(self, tmp_path):
        code, output = run_cli(["jobs", "--spec",
                                self.write_spec(tmp_path),
                                "--horizon", "4"])
        assert code == 0
        assert "smoke" in output and "completed" in output
        assert "idle-capacity utilisation" in output

    def test_fusion_flags_round_trip_into_job_configs(self, tmp_path):
        """--fusion-* flags flow CLI -> scheduler -> every job's
        RunConfig (and the schedule still completes with them on)."""
        code, output = run_cli([
            "jobs", "--spec", self.write_spec(tmp_path), "--horizon", "4",
            "--fusion-threshold-mb", "4", "--fusion-max-ops", "16"])
        assert code == 0
        assert "smoke" in output and "completed" in output

        from repro.cluster import ClusterTopology
        from repro.jobs import ElasticScheduler, TrainingJob
        scheduler = ElasticScheduler(
            ClusterTopology(num_socs=8), sessions=[],
            fusion_threshold_mb=4.0, fusion_max_ops=16)
        config = scheduler._config_for(
            TrainingJob(id="t", workload="lenet5_fmnist", min_socs=2,
                        max_socs=4, epochs=1))
        assert config.fusion_threshold_mb == 4.0
        assert config.fusion_max_ops == 16
        assert config.fusion_enabled

    def test_report_trace_and_metrics_files(self, tmp_path):
        report = tmp_path / "report.json"
        trace = tmp_path / "jobs.json"
        metrics = tmp_path / "metrics.jsonl"
        code, output = run_cli([
            "jobs", "--spec", self.write_spec(tmp_path), "--horizon", "4",
            "--report", str(report), "--trace", str(trace),
            "--metrics", str(metrics)])
        assert code == 0
        import json
        payload = json.loads(report.read_text())
        assert payload["jobs"][0]["id"] == "smoke"
        assert 0.0 <= payload["utilisation"] <= 1.0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("args", {}).get("job") == "smoke" for e in events)
        assert any("jobs.completed" in line
                   for line in metrics.read_text().splitlines())

    def test_static_window_mode(self, tmp_path):
        code, output = run_cli([
            "jobs", "--spec", self.write_spec(tmp_path), "--horizon", "6",
            "--static-window", "1:3"])
        assert code == 0
        assert "static window" in output

    def test_bad_static_window_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(["jobs", "--spec", self.write_spec(tmp_path),
                           "--static-window", "nope"])
        assert code == 2
        assert "static-window" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("jobs:\n  - id: x\n    workload: vgg11\n"
                       "    rockets: 9\n")
        code, _ = run_cli(["jobs", "--spec", str(bad)])
        assert code == 2
        assert "bad job file" in capsys.readouterr().err

    def test_unadmittable_job_rejected(self, tmp_path, capsys):
        spec = ("jobs:\n  - id: giant\n    workload: lenet5_fmnist\n"
                "    min_socs: 64\n    max_socs: 64\n")
        code, output = run_cli(["jobs", "--spec",
                                self.write_spec(tmp_path, spec),
                                "--socs", "8"])
        assert code == 1
        assert "no jobs admitted" in capsys.readouterr().err


class TestServeMode:
    SPEC = TestJobsCommand.SPEC

    def write_spec(self, tmp_path):
        path = tmp_path / "jobs.yaml"
        path.write_text(self.SPEC)
        return str(path)

    def serve_args(self, tmp_path, *extra):
        return ["jobs", "--spec", self.write_spec(tmp_path), "--serve",
                "--horizon", "2", "--peak-rps", "5", *extra]

    def test_prints_serving_summary(self, tmp_path):
        code, output = run_cli(self.serve_args(tmp_path))
        assert code == 0
        assert "serving:" in output
        assert "requests served" in output
        assert "smoke" in output           # training still ran

    def test_serve_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "serve.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code, _ = run_cli(self.serve_args(
            tmp_path, "--trace", str(trace), "--trace-format", "jsonl",
            "--metrics", str(metrics)))
        assert code == 0
        import json
        kinds = {json.loads(line).get("kind")
                 for line in trace.read_text().splitlines()}
        assert "serve" in kinds
        series = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        names = {s["name"] for s in series}
        assert {"serving.requests", "serving.served",
                "serving.latency_ms"} <= names
        hist = next(s for s in series
                    if s["name"] == "serving.latency_ms")
        assert hist["count"] > 0

    def test_deterministic_output(self, tmp_path):
        first = run_cli(self.serve_args(tmp_path))
        second = run_cli(self.serve_args(tmp_path))
        assert first == second

    def test_bad_flash_crowd_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(self.serve_args(tmp_path,
                                          "--flash-crowd", "20:1"))
        assert code == 2
        assert "flash-crowd" in capsys.readouterr().err

    def test_unknown_serve_model_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(self.serve_args(tmp_path, "--serve-model",
                                          "nosuchmodel"))
        assert code == 2
        assert "serve-model" in capsys.readouterr().err


class TestAnalyzeCommand:
    def _traced_run(self, tmp_path, name="run.jsonl", extra=()):
        trace = tmp_path / name
        code, _ = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "2", "--socs", "16",
            "--trace", str(trace), "--trace-format", "jsonl", *extra])
        assert code == 0
        return trace

    def test_report_prints_phase_accounting(self, tmp_path):
        trace = self._traced_run(tmp_path)
        code, output = run_cli(["analyze", "report", str(trace)])
        assert code == 0
        assert "phase accounting" in output
        assert "critical path" in output
        assert "coverage" in output
        assert "epoch 0" in output and "epoch 1" in output

    def test_report_json_format(self, tmp_path):
        trace = self._traced_run(tmp_path)
        code, output = run_cli([
            "analyze", "report", str(trace), "--format", "json"])
        assert code == 0
        import json
        payload = json.loads(output)
        assert payload["windows"]
        assert all(w["coverage"] >= 0.99 for w in payload["windows"]
                   if w.get("epoch") is not None)

    def test_report_markdown_and_out_file(self, tmp_path):
        trace = self._traced_run(tmp_path)
        report = tmp_path / "report.md"
        code, output = run_cli([
            "analyze", "report", str(trace),
            "--format", "markdown", "--out", str(report)])
        assert code == 0
        assert f"-> {report}" in output
        text = report.read_text()
        assert "### per-window phase accounting" in text
        assert text.count("|") > 10

    def test_diff_same_seed_reports_no_significant_change(self, tmp_path):
        a = self._traced_run(tmp_path, "a.jsonl")
        b = self._traced_run(tmp_path, "b.jsonl")
        code, output = run_cli(["analyze", "diff", str(a), str(b)])
        assert code == 0
        assert "no significant wall-clock change" in output

    def test_diff_detects_fault_slowdown(self, tmp_path):
        a = self._traced_run(tmp_path, "clean.jsonl")
        b = self._traced_run(tmp_path, "faulty.jsonl",
                             extra=("--faults", "crash:epoch=1,soc=3"))
        code, output = run_cli(["analyze", "diff", str(a), str(b)])
        assert code == 0
        assert "slower" in output
        assert "recovery" in output

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(["analyze", "report",
                           str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "analyze:" in capsys.readouterr().err

    def test_chrome_trace_rejected_with_hint(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        code, _ = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16", "--trace", str(trace)])
        assert code == 0
        code, _ = run_cli(["analyze", "report", str(trace)])
        assert code == 2
        assert "--trace-format jsonl" in capsys.readouterr().err

    def test_analyze_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_gzip_trace_accepted(self, tmp_path):
        trace = self._traced_run(tmp_path, "run.jsonl.gz")
        code, output = run_cli(["analyze", "report", str(trace)])
        assert code == 0
        assert "phase accounting" in output

    def test_live_summary_printed_for_traced_runs(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16",
            "--trace", str(trace), "--trace-format", "jsonl"])
        assert code == 0
        assert "analysis: bottleneck" in output

    def test_untraced_run_has_no_live_summary(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16"])
        assert code == 0
        assert "analysis: bottleneck" not in output


class TestCompareCommand:
    def test_compare_two_methods(self):
        code, output = run_cli([
            "compare", "--workload", "lenet5_fmnist",
            "--methods", "ring,socflow", "--epochs", "1", "--socs", "8"])
        assert code == 0
        assert "ring" in output and "socflow" in output

    def test_unknown_method_fails_cleanly(self):
        code, _ = run_cli([
            "compare", "--workload", "lenet5_fmnist",
            "--methods", "warpdrive", "--epochs", "1"])
        assert code == 2
