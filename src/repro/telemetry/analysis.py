"""Trace diagnosis engine: critical paths, stragglers, run-vs-run diffs.

The telemetry plane (PR 2) records *what happened*; this module answers
the questions the paper actually asks of a run — where does epoch time
go, which SoC/PCB bounds it, and did a knob (``--fusion-*``,
``--graph``, planning, group size) move the needle — mechanically,
without a human eyeballing a Perfetto timeline.

Everything here is pure post-processing over
:class:`~repro.telemetry.tracer.TraceRecord` lists: analysing a live
tracer or a re-loaded JSONL export never touches simulation state, so
traced runs stay byte-identical whether or not they are analysed.

Three stages:

- :func:`analyze_records` / :func:`analyze_trace` — build a
  :class:`TraceReport`: per-epoch critical-path extraction over the
  span timeline (see DESIGN.md "Observability" for the algorithm),
  per-SoC utilisation and straggler skew, per-PCB network health and
  fault cross-references, job-lane summaries for multi-tenant traces.
- :func:`diff_reports` — align two reports epoch-by-epoch and
  phase-by-phase and flag the deltas that clear a significance
  threshold: "did ``--graph``/fusion help" as one comparison.
- :class:`HealthMonitor` — scan a report for anomalies (epoch-time
  spikes, sync-fraction regressions, straggler SoCs, degraded PCBs,
  starved jobs) and emit them as structured series into the metrics
  registry.

Determinism: reports iterate records in emission order and every
aggregate is sorted, so the same trace renders the same bytes in every
format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PathSegment", "WindowReport", "TraceReport", "TraceDiff",
           "Anomaly", "HealthMonitor", "analyze_records", "analyze_trace",
           "diff_reports", "render_report", "render_diff"]

#: span kinds that tile the simulated wall clock, in attribution
#: priority order: when several kinds cover the same instant (float
#: seams, recovery overlapping a step window), the segment goes to the
#: earlier entry.  ``job`` spans are last — they are coarse per-tenant
#: lanes that only bound the clock in multi-tenant traces.
_PATH_PRIORITY = ("recovery", "checkpoint", "dispatch", "leader_sync",
                  "allreduce", "sync", "update", "compute", "job")
_PATH_RANK = {kind: rank for rank, kind in enumerate(_PATH_PRIORITY)}

#: kinds that deliberately overlap the wall-clock tiling and are
#: accounted off-path: ``bucket_sync`` is the bucketed view of sync
#: (its hidden share rides under compute), ``nic_wait`` is contention
#: attribution *inside* a sync window.
_OFF_PATH_KINDS = frozenset({"bucket_sync", "nic_wait"})

#: kinds with per-SoC attribution that count toward a SoC's busy time
_SOC_BUSY_KINDS = frozenset({"compute", "allreduce", "sync", "leader_sync"})

_EPS = 1e-12


def _overlap(record, start: float, end: float) -> float:
    return max(0.0, min(record.end_s, end) - max(record.ts_s, start))


# ----------------------------------------------------------------------
# Report structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSegment:
    """One stretch of the critical path, attributed to a bounding span."""

    start_s: float
    end_s: float
    kind: str
    name: str
    soc: "int | None" = None
    pcb: "int | None" = None
    lg: "int | None" = None
    cg: "int | None" = None
    job: "str | None" = None
    #: how many same-kind spans cover this stretch concurrently (e.g.
    #: 60 SoCs computing in lock-step); the attributed span is the
    #: longest of them — the one that bounds the window.
    width: int = 1

    @property
    def dur_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def where(self) -> str:
        """Human-readable attribution: the chip/group/job that bounds it."""
        parts = []
        if self.job is not None:
            parts.append(f"job {self.job}")
        if self.soc is not None:
            parts.append(f"soc {self.soc}")
        elif self.pcb is not None:
            parts.append(f"pcb {self.pcb}")
        tags = [f"{key}{getattr(self, key)}" for key in ("lg", "cg")
                if getattr(self, key) is not None]
        if tags:
            parts.append("/".join(tags))
        if self.width > 1:
            parts.append(f"x{self.width}")
        return " ".join(parts) if parts else "cluster"

    def to_dict(self) -> dict:
        out = {"start_s": round(self.start_s, 9),
               "dur_s": round(self.dur_s, 9),
               "kind": self.kind, "name": self.name, "width": self.width}
        for key in ("soc", "pcb", "lg", "cg", "job"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class WindowReport:
    """One analysed window of the timeline (usually one epoch)."""

    label: str
    epoch: "int | None"
    start_s: float
    end_s: float
    #: merged critical-path segments, in time order
    path: "list[PathSegment]" = field(default_factory=list)
    #: on-path seconds per span kind (sums to ``seconds`` minus gaps)
    phase_seconds: "dict[str, float]" = field(default_factory=dict)
    #: wall seconds no candidate span covers (coverage shortfall)
    unattributed_s: float = 0.0
    #: sync seconds overlapped under compute (busy network, no wall time)
    hidden_sync_s: float = 0.0
    #: per-SoC busy seconds (only strategies that attribute per SoC)
    soc_busy: "dict[int, float]" = field(default_factory=dict)
    accuracy: "float | None" = None
    args: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s

    @property
    def coverage(self) -> float:
        """Share of the window's wall time the phase buckets account for."""
        if self.seconds <= 0:
            return 1.0
        return max(0.0, self.seconds - self.unattributed_s) / self.seconds

    @property
    def hidden_fraction(self) -> float:
        """Comm-hidden share: hidden sync over total busy network time."""
        visible = self.phase_seconds.get("allreduce", 0.0) \
            + self.phase_seconds.get("sync", 0.0)
        total = visible + self.hidden_sync_s
        return self.hidden_sync_s / total if total > 0 else 0.0

    @property
    def bottleneck(self) -> "tuple[str, str]":
        """``(kind, where)`` of the largest on-path contributor."""
        if not self.path:
            return ("idle", "-")
        totals: dict[str, float] = {}
        best: dict[str, PathSegment] = {}
        for segment in self.path:
            totals[segment.kind] = totals.get(segment.kind, 0.0) \
                + segment.dur_s
            if segment.kind not in best \
                    or segment.dur_s > best[segment.kind].dur_s:
                best[segment.kind] = segment
        kind = max(sorted(totals), key=lambda k: totals[k])
        return (kind, best[kind].where)

    @property
    def straggler(self) -> "tuple[int, float] | None":
        """``(slowest SoC, busy skew vs median)`` when attribution exists."""
        if len(self.soc_busy) < 2:
            return None
        busies = sorted(self.soc_busy.values())
        # lower middle, so a straggler in a 2-SoC group still skews
        median = busies[(len(busies) - 1) // 2]
        slowest = min(soc for soc, busy in self.soc_busy.items()
                      if busy == busies[-1])
        if median <= 0:
            return (slowest, 1.0)
        return (slowest, busies[-1] / median)

    def to_dict(self) -> dict:
        kind, where = self.bottleneck
        out = {
            "label": self.label,
            "start_s": round(self.start_s, 9),
            "seconds": round(self.seconds, 9),
            "phase_seconds": {k: round(v, 9)
                              for k, v in sorted(self.phase_seconds.items())},
            "unattributed_s": round(self.unattributed_s, 9),
            "hidden_sync_s": round(self.hidden_sync_s, 9),
            "coverage": round(self.coverage, 6),
            "hidden_fraction": round(self.hidden_fraction, 6),
            "bottleneck": {"kind": kind, "where": where},
            "critical_path": [segment.to_dict() for segment in self.path],
        }
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.accuracy is not None:
            out["accuracy"] = round(self.accuracy, 6)
        straggler = self.straggler
        if straggler is not None:
            out["straggler"] = {"soc": straggler[0],
                                "skew": round(straggler[1], 6)}
        return out


@dataclass
class TraceReport:
    """The full diagnosis of one trace."""

    windows: "list[WindowReport]"
    num_records: int
    kind_counts: "dict[str, int]"
    pcb_health: "dict[int, dict]"
    faults: "list[dict]"
    jobs: "dict[str, dict]"
    graph_stats: "dict | None" = None
    #: serving-plane rollup (``serve``/``scale`` spans), ``None`` when
    #: the trace has no serving side
    serving: "dict | None" = None
    anomalies: "list[Anomaly]" = field(default_factory=list)

    @property
    def epochs(self) -> "list[WindowReport]":
        return [w for w in self.windows if w.epoch is not None]

    @property
    def total_s(self) -> float:
        if not self.windows:
            return 0.0
        return max(w.end_s for w in self.windows)

    @property
    def phase_totals(self) -> "dict[str, float]":
        totals: dict[str, float] = {}
        for window in self.windows:
            for kind, seconds in window.phase_seconds.items():
                totals[kind] = totals.get(kind, 0.0) + seconds
        return dict(sorted(totals.items()))

    @property
    def hidden_total_s(self) -> float:
        return sum(w.hidden_sync_s for w in self.windows)

    @property
    def coverage(self) -> float:
        total = sum(w.seconds for w in self.windows)
        if total <= 0:
            return 1.0
        covered = sum(w.seconds - w.unattributed_s for w in self.windows)
        return max(0.0, covered) / total

    def to_dict(self) -> dict:
        return {
            "total_s": round(self.total_s, 9),
            "num_records": self.num_records,
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "phase_totals": {k: round(v, 9)
                             for k, v in self.phase_totals.items()},
            "hidden_sync_s": round(self.hidden_total_s, 9),
            "coverage": round(self.coverage, 6),
            "windows": [w.to_dict() for w in self.windows],
            "pcb_health": {str(pcb): stats for pcb, stats
                           in sorted(self.pcb_health.items())},
            "faults": self.faults,
            "jobs": {job: stats for job, stats in sorted(self.jobs.items())},
            "graph_stats": self.graph_stats,
            "serving": self.serving,
            "anomalies": [a.to_dict() for a in self.anomalies],
        }


# ----------------------------------------------------------------------
# Critical-path extraction
# ----------------------------------------------------------------------
def _extract_path(spans, start: float, end: float
                  ) -> "tuple[list[PathSegment], dict[str, float], float]":
    """Tile ``[start, end)`` with the bounding span of each instant.

    The window is cut at every covering span's start/end; each
    elementary segment is attributed to the highest-priority covering
    kind, and within that kind to the longest covering span (the one
    that bounds the lock-step window).  Adjacent segments with the same
    attribution merge.  Returns ``(path, on-path seconds per kind,
    unattributed gap seconds)``.
    """
    spans = [r for r in spans
             if r.ph == "X" and r.kind in _PATH_RANK
             and r.end_s > start + _EPS and r.ts_s < end - _EPS]
    bounds = {start, end}
    for record in spans:
        bounds.add(min(max(record.ts_s, start), end))
        bounds.add(min(max(record.end_s, start), end))
    cuts = sorted(bounds)
    path: list[PathSegment] = []
    phase: dict[str, float] = {}
    gap = 0.0
    # (emission index keeps ties deterministic)
    indexed = list(enumerate(spans))
    for t0, t1 in zip(cuts, cuts[1:]):
        if t1 - t0 <= _EPS:
            continue
        mid = 0.5 * (t0 + t1)
        covering = [(i, r) for i, r in indexed
                    if r.ts_s <= mid + _EPS and r.end_s >= mid - _EPS
                    and r.ts_s < t1 and r.end_s > t0]
        if not covering:
            gap += t1 - t0
            continue
        rank = min(_PATH_RANK[r.kind] for _, r in covering)
        kind = _PATH_PRIORITY[rank]
        same = [(i, r) for i, r in covering if r.kind == kind]
        index, bounding = max(
            same, key=lambda ir: (ir[1].dur_s, -ir[0]))
        phase[kind] = phase.get(kind, 0.0) + (t1 - t0)
        last = path[-1] if path else None
        if last is not None and last.kind == kind \
                and last.name == bounding.name \
                and (last.soc, last.pcb, last.lg, last.cg, last.job) == (
                    bounding.soc, bounding.pcb, bounding.lg,
                    bounding.cg, bounding.job) \
                and abs(last.end_s - t0) <= 1e-9 * max(1.0, abs(t0)):
            path[-1] = PathSegment(
                start_s=last.start_s, end_s=t1, kind=kind,
                name=last.name, soc=last.soc, pcb=last.pcb, lg=last.lg,
                cg=last.cg, job=last.job,
                width=max(last.width, len(same)))
        else:
            path.append(PathSegment(
                start_s=t0, end_s=t1, kind=kind, name=bounding.name,
                soc=bounding.soc, pcb=bounding.pcb, lg=bounding.lg,
                cg=bounding.cg, job=bounding.job, width=len(same)))
    return path, phase, gap


def _hidden_sync(records, start: float, end: float) -> float:
    """Overlapped-sync seconds inside a window, from span annotations.

    Three emitters annotate hidden time differently: ``bucket_sync``
    spans each carry their own hidden share (sum them), per-step
    ``sync`` spans carry the step's hidden share (sum them), and
    SoCFlow's ``allreduce`` spans all repeat the *epoch* total (take
    the max).  The estimators agree where they coexist, so the window's
    hidden time is the largest of the three — never a double count.
    """
    bucket = 0.0
    sync = 0.0
    allreduce = 0.0
    for record in records:
        if record.ph != "X" or _overlap(record, start, end) <= 0:
            continue
        hidden = record.args.get("hidden_s")
        if hidden is None:
            continue
        if record.kind == "bucket_sync":
            bucket += hidden
        elif record.kind == "sync":
            sync += hidden
        elif record.kind == "allreduce":
            allreduce = max(allreduce, hidden)
    return max(bucket, sync, allreduce)


def _windows_of(records) -> "list[WindowReport]":
    """Cut the timeline into analysis windows.

    ``epoch`` spans define the windows when present (plus a ``setup``
    window for anything charged before the first epoch — dispatch —
    and a ``tail`` window after the last); traces without epoch markers
    (multi-tenant schedules) analyse as one ``run`` window.
    """
    epochs = [r for r in records if r.kind == "epoch" and r.ph == "X"]
    if not records:
        return []
    t_min = min(r.ts_s for r in records)
    t_max = max(r.end_s for r in records)
    if not epochs:
        return [WindowReport(label="run", epoch=None, start_s=t_min,
                             end_s=t_max)]
    windows: list[WindowReport] = []
    first = min(e.ts_s for e in epochs)
    if first - t_min > 1e-9:
        windows.append(WindowReport(label="setup", epoch=None,
                                    start_s=t_min, end_s=first))
    for index, span in enumerate(sorted(epochs, key=lambda e: e.ts_s)):
        epoch = span.args.get("epoch")
        if epoch is None and span.name.startswith("epoch "):
            try:
                epoch = int(span.name.split()[-1])
            except ValueError:                          # pragma: no cover
                epoch = index
        windows.append(WindowReport(
            label=f"epoch {epoch if epoch is not None else index}",
            epoch=int(epoch) if epoch is not None else index,
            start_s=span.ts_s, end_s=span.end_s,
            accuracy=span.args.get("accuracy"), args=dict(span.args)))
    last = max(e.end_s for e in epochs)
    if t_max - last > 1e-9:
        windows.append(WindowReport(label="tail", epoch=None,
                                    start_s=last, end_s=t_max))
    return windows


# ----------------------------------------------------------------------
# Whole-trace analysis
# ----------------------------------------------------------------------
def analyze_records(records, *, monitor: "HealthMonitor | None" = None,
                    metrics=None) -> TraceReport:
    """Diagnose a list of :class:`TraceRecord`\\ s into a report.

    ``monitor`` (default: a :class:`HealthMonitor` with stock
    thresholds) scans the finished report for anomalies; pass
    ``metrics`` to also emit them into a registry as ``health.*``
    series (the live-run hook).
    """
    records = list(records)
    windows = _windows_of(records)
    for window in windows:
        in_window = [r for r in records
                     if r.ph == "X"
                     and _overlap(r, window.start_s, window.end_s) > 0]
        window.path, window.phase_seconds, window.unattributed_s = \
            _extract_path(in_window, window.start_s, window.end_s)
        window.hidden_sync_s = _hidden_sync(
            in_window, window.start_s, window.end_s)
        busy: dict[int, float] = {}
        for record in in_window:
            if record.soc is not None and record.kind in _SOC_BUSY_KINDS:
                busy[record.soc] = busy.get(record.soc, 0.0) + _overlap(
                    record, window.start_s, window.end_s)
        window.soc_busy = busy

    kind_counts: dict[str, int] = {}
    for record in records:
        kind_counts[record.kind] = kind_counts.get(record.kind, 0) + 1

    pcb_health: dict[int, dict] = {}
    for record in records:
        if record.kind != "nic_wait" or record.pcb is None:
            continue
        stats = pcb_health.setdefault(
            record.pcb, {"wait_s": 0.0, "retries": 0, "degraded": False})
        stats["wait_s"] = round(stats["wait_s"] + record.dur_s, 9)
        stats["retries"] += int(record.args.get("retries", 0))
    faults = []
    for record in records:
        if record.kind != "fault":
            continue
        fault = {"ts_s": round(record.ts_s, 9), "name": record.name,
                 **record.args}
        if record.soc is not None:
            fault["soc"] = record.soc
        if record.pcb is not None:
            fault["pcb"] = record.pcb
        faults.append(fault)
        # a flapping NIC degrades its PCB even before retries appear
        if record.pcb is not None:
            stats = pcb_health.setdefault(
                record.pcb, {"wait_s": 0.0, "retries": 0, "degraded": False})
            stats["degraded"] = True
    for stats in pcb_health.values():
        if stats["retries"]:
            stats["degraded"] = True

    jobs: dict[str, dict] = {}
    for record in records:
        if record.job is None:
            continue
        stats = jobs.setdefault(record.job, {
            "busy_s": 0.0, "queue_wait_s": 0.0, "epochs": 0,
            "preemptions": 0, "resizes": 0, "accuracy": None})
        if record.kind == "job" and record.ph == "X":
            stats["busy_s"] = round(stats["busy_s"] + record.dur_s, 9)
            stats["epochs"] += 1
            if "accuracy" in record.args:
                stats["accuracy"] = record.args["accuracy"]
        elif record.kind == "queue":
            stats["queue_wait_s"] = round(
                stats["queue_wait_s"] + record.dur_s, 9)
        elif record.kind == "preemption":
            stats["preemptions"] += 1
        elif record.kind == "resize":
            stats["resizes"] += 1

    graph_stats = None
    for record in records:
        if record.kind == "graph_replay":
            graph_stats = dict(record.args)

    serving = _serving_summary(records)

    report = TraceReport(windows=windows, num_records=len(records),
                         kind_counts=kind_counts, pcb_health=pcb_health,
                         faults=faults, jobs=jobs, graph_stats=graph_stats,
                         serving=serving)
    monitor = monitor if monitor is not None else HealthMonitor()
    report.anomalies = monitor.check(report)
    if metrics is not None and getattr(metrics, "enabled", False):
        monitor.emit(report.anomalies, metrics)
    return report


def _serving_summary(records) -> "dict | None":
    """Roll ``serve`` check-window spans into the report's serving block.

    Window spans carry their own aggregates (the plane computes them at
    request resolution), so this is pure accumulation — plus the SLO
    violation timeline the health monitor and renderer surface.
    """
    spans = [r for r in records if r.kind == "serve" and r.ph == "X"]
    if not spans:
        return None
    spans = sorted(spans, key=lambda r: r.ts_s)
    totals = {"requests": 0, "served": 0, "dropped": 0}
    violations = []
    p99s = []
    replicas = []
    for span in spans:
        args = span.args
        totals["requests"] += int(args.get("arrivals", 0))
        totals["served"] += int(args.get("served", 0))
        totals["dropped"] += int(args.get("dropped", 0))
        if "replicas" in args:
            replicas.append(int(args["replicas"]))
        if "p99_ms" in args:
            p99s.append(float(args["p99_ms"]))
        if args.get("violation"):
            violations.append({
                "ts_s": round(span.ts_s, 9),
                "p99_ms": args.get("p99_ms"),
                "queue_depth": args.get("queue_depth"),
                "replicas": args.get("replicas"),
            })
    scale_events = sum(1 for r in records if r.kind == "scale")
    return {
        "windows": len(spans),
        **totals,
        "slo_ms": spans[0].args.get("slo_ms"),
        "violation_windows": len(violations),
        "violations": violations,
        "max_p99_ms": max(p99s) if p99s else None,
        "replicas_min": min(replicas) if replicas else 0,
        "replicas_max": max(replicas) if replicas else 0,
        "scale_events": scale_events,
    }


def analyze_trace(path, **kwargs) -> TraceReport:
    """Load a JSONL trace (plain or ``.gz``) and diagnose it."""
    from .export import load_trace_records
    return analyze_records(load_trace_records(path), **kwargs)


# ----------------------------------------------------------------------
# Health monitoring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Anomaly:
    """One detected irregularity, ready for the metrics registry."""

    kind: str           # epoch_time_spike / sync_regression / ...
    where: str          # "epoch 3", "soc 7", "pcb 0", "job finetune"
    value: float        # the measured magnitude
    threshold: float    # what it had to exceed to fire
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "where": self.where,
                "value": round(self.value, 6),
                "threshold": round(self.threshold, 6),
                "detail": self.detail}


class HealthMonitor:
    """Anomaly scan over a :class:`TraceReport`.

    Thresholds are multiplicative or absolute shares, chosen so a
    healthy homogeneous run emits nothing:

    - ``spike_factor``: an epoch slower than this multiple of the
      median epoch time (recoveries legitimately cause these — the
      detail says so when a recovery phase is present);
    - ``sync_regression``: an epoch whose visible-sync share exceeds
      the first epoch's by this many percentage points;
    - ``straggler_skew``: slowest-SoC busy time over the median;
    - ``starvation_share``: a job queued for more than this share of
      the trace duration, or preempted without ever running.
    """

    def __init__(self, *, spike_factor: float = 1.5,
                 sync_regression: float = 0.10,
                 straggler_skew: float = 1.25,
                 starvation_share: float = 0.25):
        self.spike_factor = spike_factor
        self.sync_regression = sync_regression
        self.straggler_skew = straggler_skew
        self.starvation_share = starvation_share

    # ------------------------------------------------------------------
    def check(self, report: TraceReport) -> "list[Anomaly]":
        anomalies: list[Anomaly] = []
        epochs = report.epochs
        if len(epochs) >= 2:
            times = sorted(w.seconds for w in epochs)
            median = times[len(times) // 2]
            baseline_sync = self._sync_share(epochs[0])
            for window in epochs:
                if median > 0 and window.seconds > self.spike_factor * median:
                    recovery = window.phase_seconds.get("recovery", 0.0)
                    anomalies.append(Anomaly(
                        kind="epoch_time_spike", where=window.label,
                        value=window.seconds / median,
                        threshold=self.spike_factor,
                        detail=(f"{window.seconds:.3f}s vs median "
                                f"{median:.3f}s"
                                + (f" ({recovery:.3f}s of recovery)"
                                   if recovery > 0 else ""))))
                share = self._sync_share(window)
                if share - baseline_sync > self.sync_regression:
                    anomalies.append(Anomaly(
                        kind="sync_regression", where=window.label,
                        value=share, threshold=baseline_sync
                        + self.sync_regression,
                        detail=(f"visible sync share {share:.1%} vs "
                                f"{baseline_sync:.1%} at epoch start")))
        for window in epochs:
            straggler = window.straggler
            if straggler is not None and straggler[1] > self.straggler_skew:
                anomalies.append(Anomaly(
                    kind="straggler_soc",
                    where=f"{window.label}: soc {straggler[0]}",
                    value=straggler[1], threshold=self.straggler_skew,
                    detail=(f"busy {straggler[1]:.2f}x the median SoC")))
        for pcb, stats in sorted(report.pcb_health.items()):
            if stats["degraded"]:
                anomalies.append(Anomaly(
                    kind="degraded_pcb", where=f"pcb {pcb}",
                    value=float(stats["retries"]), threshold=0.0,
                    detail=(f"{stats['retries']} retries, "
                            f"{stats['wait_s']:.3f}s NIC wait")))
        if report.serving is not None:
            slo = report.serving.get("slo_ms") or 0.0
            for violation in report.serving["violations"]:
                p99 = violation.get("p99_ms")
                anomalies.append(Anomaly(
                    kind="slo_violation",
                    where=f"serve t={violation['ts_s']:.0f}s",
                    value=float(p99 if p99 is not None else 0.0),
                    threshold=float(slo),
                    detail=(f"p99 {p99:.0f}ms vs SLO {slo:.0f}ms, "
                            if p99 is not None else "backlogged, ")
                    + (f"{violation.get('replicas', '?')} replica(s), "
                       f"queue {violation.get('queue_depth', '?')}")))
        horizon = report.total_s
        for job, stats in sorted(report.jobs.items()):
            starved = (horizon > 0 and stats["queue_wait_s"]
                       > self.starvation_share * horizon)
            never_ran = stats["epochs"] == 0 and (
                stats["queue_wait_s"] > 0 or stats["preemptions"] > 0)
            if starved or never_ran:
                anomalies.append(Anomaly(
                    kind="starved_job", where=f"job {job}",
                    value=stats["queue_wait_s"],
                    threshold=self.starvation_share * horizon,
                    detail=(f"queued {stats['queue_wait_s']:.0f}s, "
                            f"{stats['epochs']} epoch(s) run")))
        return anomalies

    @staticmethod
    def _sync_share(window: WindowReport) -> float:
        if window.seconds <= 0:
            return 0.0
        visible = window.phase_seconds.get("sync", 0.0) \
            + window.phase_seconds.get("allreduce", 0.0) \
            + window.phase_seconds.get("leader_sync", 0.0)
        return visible / window.seconds

    @staticmethod
    def emit(anomalies: "list[Anomaly]", metrics) -> None:
        """Mirror anomalies into the registry as ``health.*`` series."""
        for anomaly in anomalies:
            metrics.counter("health.anomalies", kind=anomaly.kind).inc()
            metrics.gauge("health.value", kind=anomaly.kind,
                          where=anomaly.where).set(anomaly.value)


# ----------------------------------------------------------------------
# Run-vs-run diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseDelta:
    """One aligned quantity across two runs."""

    key: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        base = max(abs(self.a), abs(self.b))
        return self.delta / base if base > 0 else 0.0

    def to_dict(self) -> dict:
        return {"key": self.key, "a": round(self.a, 9),
                "b": round(self.b, 9), "delta": round(self.delta, 9),
                "rel": round(self.rel, 6)}


@dataclass
class TraceDiff:
    """Aligned comparison of two trace reports (A = baseline, B = new)."""

    phases: "list[PhaseDelta]"
    epochs: "list[PhaseDelta]"          # per-epoch wall seconds
    total: PhaseDelta
    hidden: PhaseDelta
    threshold: float
    notes: "list[str]" = field(default_factory=list)

    def significant(self, delta: PhaseDelta) -> bool:
        return abs(delta.rel) >= self.threshold \
            and abs(delta.delta) > 1e-9

    @property
    def significant_phases(self) -> "list[PhaseDelta]":
        return [d for d in self.phases if self.significant(d)]

    @property
    def verdict(self) -> str:
        if not self.significant(self.total):
            return ("no significant wall-clock change "
                    f"(|Δ| < {self.threshold:.0%})")
        direction = "faster" if self.total.delta < 0 else "slower"
        movers = self.significant_phases
        attribution = ", ".join(
            f"{d.key} {d.delta:+.3f}s" for d in sorted(
                movers, key=lambda d: abs(d.delta), reverse=True)[:3])
        return (f"B is {abs(self.total.rel):.1%} {direction} "
                f"({self.total.a:.3f}s -> {self.total.b:.3f}s"
                + (f"; {attribution}" if attribution else "") + ")")

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "threshold": self.threshold,
            "total": self.total.to_dict(),
            "hidden_sync": self.hidden.to_dict(),
            "phases": [d.to_dict() for d in self.phases],
            "epochs": [d.to_dict() for d in self.epochs],
            "notes": self.notes,
        }


def diff_reports(a: TraceReport, b: TraceReport,
                 threshold: float = 0.02) -> TraceDiff:
    """Align two reports and flag per-phase deltas beyond ``threshold``.

    Alignment is structural, not positional: phase buckets align by
    span kind, epochs align by epoch index, and job lanes/graph
    counters are compared as notes.  ``threshold`` is the relative
    significance floor — smaller moves are reported but not flagged.
    """
    phases_a, phases_b = a.phase_totals, b.phase_totals
    phases = [PhaseDelta(kind, phases_a.get(kind, 0.0),
                         phases_b.get(kind, 0.0))
              for kind in sorted(set(phases_a) | set(phases_b))]
    epochs_a = {w.epoch: w for w in a.epochs}
    epochs_b = {w.epoch: w for w in b.epochs}
    epochs = [PhaseDelta(f"epoch {epoch}",
                         epochs_a[epoch].seconds if epoch in epochs_a else 0.0,
                         epochs_b[epoch].seconds if epoch in epochs_b else 0.0)
              for epoch in sorted(set(epochs_a) | set(epochs_b))]
    diff = TraceDiff(
        phases=phases, epochs=epochs,
        total=PhaseDelta("total", a.total_s, b.total_s),
        hidden=PhaseDelta("hidden_sync", a.hidden_total_s, b.hidden_total_s),
        threshold=threshold)
    if set(epochs_a) != set(epochs_b):
        diff.notes.append(
            f"epoch count differs: {len(epochs_a)} vs {len(epochs_b)}")
    if a.graph_stats != b.graph_stats:
        diff.notes.append(
            f"graph executor: A={_graph_note(a.graph_stats)} "
            f"B={_graph_note(b.graph_stats)}")
    retries_a = sum(s["retries"] for s in a.pcb_health.values())
    retries_b = sum(s["retries"] for s in b.pcb_health.values())
    if retries_a != retries_b:
        diff.notes.append(f"network retries: {retries_a} vs {retries_b}")
    recov_a = a.kind_counts.get("recovery", 0)
    recov_b = b.kind_counts.get("recovery", 0)
    if recov_a != recov_b:
        diff.notes.append(f"recovery steps: {recov_a} vs {recov_b}")
    if a.jobs or b.jobs:
        for job in sorted(set(a.jobs) | set(b.jobs)):
            sa = a.jobs.get(job, {}).get("busy_s", 0.0)
            sb = b.jobs.get(job, {}).get("busy_s", 0.0)
            delta = PhaseDelta(f"job {job}", sa, sb)
            if diff.significant(delta):
                diff.notes.append(
                    f"job {job}: busy {sa:.1f}s vs {sb:.1f}s")
    return diff


def _graph_note(stats: "dict | None") -> str:
    if not stats:
        return "off"
    return (f"on ({stats.get('replays', 0)} replays, "
            f"{stats.get('captures', 0)} captures, "
            f"{stats.get('eager_steps', 0)} eager)")


# ----------------------------------------------------------------------
# Rendering (table / markdown / json)
# ----------------------------------------------------------------------
_FORMATS = ("table", "json", "markdown")


def _render_blocks(blocks, fmt: str) -> str:
    """Render ``[(title, headers, rows) | str]`` blocks in one format."""
    from ..harness.reporting import format_table
    if fmt not in ("table", "markdown"):
        raise ValueError(f"unknown format {fmt!r}; expected {_FORMATS}")
    out: list[str] = []
    for block in blocks:
        if isinstance(block, str):
            out.append(block)
            continue
        title, headers, rows = block
        if fmt == "markdown":
            out.append(f"### {title}")
            out.append(_markdown_table(headers, rows))
        else:
            out.append(f"[{title}]")
            out.append(format_table(headers, rows))
    return "\n".join(out) + "\n"


def _markdown_table(headers, rows) -> str:
    from ..harness.reporting import _cell
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join([" --- "] * len(headers)) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
    return "\n".join(lines)


def _phase_columns(report: TraceReport) -> "list[str]":
    ordered = [k for k in _PATH_PRIORITY if k in report.phase_totals]
    return ordered + sorted(set(report.phase_totals) - set(ordered))


def render_report(report: TraceReport, fmt: str = "table",
                  top: int = 8) -> str:
    """The ``analyze report`` view of one trace."""
    if fmt == "json":
        import json
        return json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    blocks: list = []
    epochs = report.epochs
    blocks.append(
        f"trace: {report.num_records} records, {report.total_s:.3f} "
        f"simulated seconds, {len(epochs)} epoch(s), "
        f"coverage {report.coverage:.1%}")

    phase_cols = _phase_columns(report)
    rows = []
    for window in report.windows:
        kind, where = window.bottleneck
        rows.append([window.label, window.seconds]
                    + [window.phase_seconds.get(k, 0.0) for k in phase_cols]
                    + [window.hidden_sync_s, f"{window.coverage:.1%}",
                       f"{kind} ({where})"])
    blocks.append(("per-window phase accounting (seconds)",
                   ["window", "seconds"] + phase_cols
                   + ["hidden", "coverage", "bottleneck"], rows))

    slowest = max(epochs or report.windows, default=None,
                  key=lambda w: w.seconds)
    if slowest is not None and slowest.path:
        segments = slowest.path
        shown = sorted(segments, key=lambda s: s.dur_s,
                       reverse=True)[:top]
        shown = sorted(shown, key=lambda s: s.start_s)
        rows = [[f"{s.start_s:.3f}", s.dur_s, s.kind, s.name, s.where]
                for s in shown]
        title = (f"critical path of {slowest.label} "
                 f"({slowest.seconds:.3f}s"
                 + (f", top {top} of {len(segments)} segments"
                    if len(segments) > top else "") + ")")
        blocks.append((title, ["t_start", "seconds", "kind", "span",
                               "where"], rows))

    stragglers = [(w, w.straggler) for w in epochs
                  if w.straggler is not None]
    if stragglers:
        rows = [[w.label, s[0], s[1],
                 max(w.soc_busy.values()),
                 sorted(w.soc_busy.values())[(len(w.soc_busy) - 1) // 2]]
                for w, s in stragglers]
        blocks.append(("straggler skew (slowest SoC vs median)",
                       ["window", "slowest_soc", "skew", "busy_s",
                        "median_s"], rows))

    if report.pcb_health:
        rows = [[pcb, stats["wait_s"], stats["retries"],
                 "yes" if stats["degraded"] else "no"]
                for pcb, stats in sorted(report.pcb_health.items())]
        blocks.append(("network health", ["pcb", "nic_wait_s", "retries",
                                          "degraded"], rows))
    if report.faults:
        rows = [[f["ts_s"], f["name"],
                 ", ".join(f"{k}={v}" for k, v in sorted(f.items())
                           if k not in ("ts_s", "name"))]
                for f in report.faults]
        blocks.append(("fault events", ["ts_s", "fault", "detail"], rows))
    if report.jobs:
        rows = [[job, stats["epochs"], stats["busy_s"],
                 stats["queue_wait_s"], stats["preemptions"],
                 stats["resizes"],
                 "" if stats["accuracy"] is None
                 else f"{stats['accuracy']:.1%}"]
                for job, stats in sorted(report.jobs.items())]
        blocks.append(("job lanes", ["job", "epochs", "busy_s", "queued_s",
                                     "preempts", "resizes", "accuracy"],
                       rows))
    if report.serving is not None:
        serving = report.serving
        rows = [[serving["windows"], serving["requests"], serving["served"],
                 serving["dropped"],
                 f"{serving['replicas_min']}-{serving['replicas_max']}",
                 "" if serving["max_p99_ms"] is None
                 else f"{serving['max_p99_ms']:.0f}",
                 "" if serving["slo_ms"] is None
                 else f"{serving['slo_ms']:.0f}",
                 serving["violation_windows"], serving["scale_events"]]]
        blocks.append(("serving plane",
                       ["windows", "requests", "served", "dropped",
                        "replicas", "max_p99_ms", "slo_ms", "violations",
                        "scale_events"], rows))
    if report.graph_stats:
        blocks.append("graph executor: " + _graph_note(report.graph_stats))
    if report.anomalies:
        rows = [[a.kind, a.where, a.value, a.detail]
                for a in report.anomalies]
        blocks.append(("anomalies", ["kind", "where", "value", "detail"],
                       rows))
    else:
        blocks.append("anomalies: none")
    return _render_blocks(blocks, fmt)


def render_diff(diff: TraceDiff, fmt: str = "table") -> str:
    """The ``analyze diff`` view of two traces (A = baseline, B = new)."""
    if fmt == "json":
        import json
        return json.dumps(diff.to_dict(), indent=2, sort_keys=True) + "\n"
    blocks: list = [f"verdict: {diff.verdict}"]
    rows = [[d.key, d.a, d.b, d.delta, f"{d.rel:+.1%}",
             "*" if diff.significant(d) else ""]
            for d in [diff.total, diff.hidden] + diff.phases]
    blocks.append(("per-phase wall seconds (A vs B)",
                   ["phase", "A", "B", "delta", "rel", "sig"], rows))
    if diff.epochs:
        rows = [[d.key, d.a, d.b, d.delta, f"{d.rel:+.1%}",
                 "*" if diff.significant(d) else ""]
                for d in diff.epochs]
        blocks.append(("per-epoch wall seconds",
                       ["epoch", "A", "B", "delta", "rel", "sig"], rows))
    for note in diff.notes:
        blocks.append(f"note: {note}")
    return _render_blocks(blocks, fmt)


def render_live_summary(report: TraceReport) -> str:
    """The compact bottleneck report a ``--trace`` run prints at exit."""
    lines = []
    epochs = report.epochs or report.windows
    if not epochs:
        return "analysis: empty trace"
    slowest = max(epochs, key=lambda w: w.seconds)
    kind, where = slowest.bottleneck
    lines.append(
        f"analysis: bottleneck {kind} ({where}) in {slowest.label} "
        f"[{slowest.seconds:.3f}s of {report.total_s:.3f}s total]; "
        f"comm hidden {slowest.hidden_fraction:.0%}, "
        f"coverage {report.coverage:.1%}")
    for anomaly in report.anomalies[:5]:
        lines.append(f"analysis: anomaly {anomaly.kind} at {anomaly.where} "
                     f"({anomaly.detail})")
    if len(report.anomalies) > 5:
        lines.append(f"analysis: ... {len(report.anomalies) - 5} more "
                     "anomalies (run `repro analyze report` on the trace)")
    return "\n".join(lines)
