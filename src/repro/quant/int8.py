"""Symmetric INT8 quantisation primitives.

All quantisers are symmetric around zero (the format mobile NPUs such
as the Hexagon DSP support natively) with a per-tensor scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantConfig", "quantize", "dequantize", "fake_quantize",
           "fake_quantize_segments", "SegmentQuantizer",
           "quantization_error"]


@dataclass(frozen=True)
class QuantConfig:
    """Quantisation settings for the INT8 training path.

    Attributes
    ----------
    bits:
        Bit width (8 for the Hexagon NPU; other widths let the harness
        explore the future-work formats the paper's §5 mentions).
    stochastic_rounding:
        NITI-style stochastic rounding of gradients; reduces bias at the
        cost of variance.
    quantize_gradients / quantize_weights / quantize_activations:
        Which tensors are forced onto the integer grid each step.
    """

    bits: int = 8
    stochastic_rounding: bool = True
    quantize_gradients: bool = True
    quantize_weights: bool = True
    quantize_activations: bool = True
    #: use IEEE float16 instead of the integer grid — one of the newer
    #: NPU formats the paper's §5 anticipates (INT4/INT8/INT16/FP16)
    float16: bool = False

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def format_name(self) -> str:
        return "fp16" if self.float16 else f"int{self.bits}"


def _scale_for(x: np.ndarray, qmax: int) -> float:
    peak = float(np.abs(x).max())
    if peak == 0.0:
        return 1.0
    return peak / qmax


def quantize(x: np.ndarray, scale: float, qmax: int,
             rng: np.random.Generator | None = None) -> np.ndarray:
    """Map ``x`` to integers in ``[-qmax, qmax]`` with the given scale."""
    scaled = x / scale
    if rng is not None:
        floor = np.floor(scaled)
        frac = scaled - floor
        scaled = floor + (rng.random(x.shape) < frac)
    else:
        scaled = np.rint(scaled)
    return np.clip(scaled, -qmax, qmax).astype(np.int32)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    return (q * scale).astype(np.float32)


def fake_quantize(x: np.ndarray, config: QuantConfig,
                  rng: np.random.Generator | None = None,
                  scale: float | None = None) -> np.ndarray:
    """Round-trip ``x`` through the configured low-precision format."""
    if config.float16:
        return x.astype(np.float16).astype(np.float32)
    qmax = config.qmax
    if scale is None:
        scale = _scale_for(x, qmax)
    use_rng = rng if config.stochastic_rounding else None
    return dequantize(quantize(x, scale, qmax, rng=use_rng), scale)


def fake_quantize_segments(flat: np.ndarray, starts: np.ndarray,
                           sizes: np.ndarray, config: QuantConfig,
                           rng: np.random.Generator | None = None
                           ) -> np.ndarray:
    """Fused :func:`fake_quantize` over contiguous segments of one array.

    ``flat`` is a 1-D float32 array; segment ``i`` spans
    ``flat[starts[i]:starts[i]+sizes[i]]`` and gets its own per-tensor
    scale, exactly as if :func:`fake_quantize` had been called on each
    segment in order — bit for bit, including the stochastic-rounding
    random stream: one ``rng.random(flat.size)`` draw consumes the PCG64
    stream identically to per-segment draws.
    """
    if config.float16:
        return flat.astype(np.float16).astype(np.float32)
    qmax = config.qmax
    maxima = np.maximum.reduceat(np.abs(flat), starts)
    # Per-tensor path computes the scale as a float64 python scalar but
    # divides weak-typed, i.e. in float32; mirror both dtypes exactly.
    scales = np.where(maxima == 0.0, 1.0, maxima.astype(np.float64) / qmax)
    scaled = flat / np.repeat(scales.astype(np.float32), sizes)
    if rng is not None and config.stochastic_rounding:
        floor = np.floor(scaled)
        frac = scaled - floor
        scaled = floor + (rng.random(flat.size) < frac)
    else:
        scaled = np.rint(scaled)
    q = np.clip(scaled, -qmax, qmax).astype(np.int32)
    # Dequantise: int32 * float64 scale, then one cast to float32 — the
    # same promotion ``(q * scale).astype(float32)`` performs per tensor.
    return (q * np.repeat(scales, sizes)).astype(np.float32)


class SegmentQuantizer:
    """Preallocated, in-place twin of :func:`fake_quantize_segments`.

    The functional form allocates roughly eight arrays per call; inside
    the compiled graph executor's replay loop that allocation churn is
    the dominant cost of the weight/gradient quantisation stages.  This
    class owns every scratch buffer up front and quantises ``flat``
    *in place*, producing bit-identical results — including the
    stochastic-rounding random stream: the single ``rng.random(out=)``
    draw consumes the PCG64 stream exactly like ``rng.random(n)``.

    One instance is bound to one ``(starts, sizes)`` segmentation (a
    :class:`repro.nn.flat.FlatLayout`'s parameter regions) and one
    :class:`QuantConfig`.  Pass ``stochastic=True`` to allocate the
    rounding buffers (gradient path); the weight path never draws.
    """

    def __init__(self, starts: np.ndarray, sizes: np.ndarray,
                 config: QuantConfig, stochastic: bool = False):
        self.config = config
        self.starts = np.asarray(starts, dtype=np.intp)
        self.sizes = np.asarray(sizes, dtype=np.intp)
        n = int(self.sizes.sum())
        self.total = n
        if config.float16:
            self._h16 = np.empty(n, dtype=np.float16)
            return
        k = len(self.starts)
        self._abs = np.empty(n, dtype=np.float32)
        self._maxima = np.empty(k, dtype=np.float32)
        self._scales64 = np.empty(k, dtype=np.float64)
        self._scales32 = np.empty(k, dtype=np.float32)
        self._rep32 = np.empty(n, dtype=np.float32)
        self._rep64 = np.empty(n, dtype=np.float64)
        self._scaled = np.empty(n, dtype=np.float32)
        self._out64 = np.empty(n, dtype=np.float64)
        if stochastic and config.stochastic_rounding:
            self._floor = np.empty(n, dtype=np.float32)
            self._r64 = np.empty(n, dtype=np.float64)
            self._lt = np.empty(n, dtype=np.bool_)

    def __call__(self, flat: np.ndarray,
                 rng: np.random.Generator | None = None) -> None:
        """Quantise ``flat`` in place (1-D float32, length ``total``)."""
        config = self.config
        if config.float16:
            np.copyto(self._h16, flat)      # casts exactly like astype
            np.copyto(flat, self._h16)
            return
        qmax = config.qmax
        np.abs(flat, out=self._abs)
        np.maximum.reduceat(self._abs, self.starts, out=self._maxima)
        # astype-to-float64 *then* divide, exactly like the functional
        # form (a float32 divide widened afterwards rounds differently).
        np.copyto(self._scales64, self._maxima)
        self._scales64 /= qmax
        self._scales64[self._maxima == 0.0] = 1.0
        np.copyto(self._scales32, self._scales64)
        for i, (start, size) in enumerate(zip(self.starts, self.sizes)):
            self._rep32[start:start + size] = self._scales32[i]
            self._rep64[start:start + size] = self._scales64[i]
        scaled = self._scaled
        np.divide(flat, self._rep32, out=scaled)
        if rng is not None and config.stochastic_rounding:
            np.floor(scaled, out=self._floor)
            np.subtract(scaled, self._floor, out=scaled)      # frac
            rng.random(out=self._r64)
            np.less(self._r64, scaled, out=self._lt)
            np.add(self._floor, self._lt, out=scaled)
        else:
            np.rint(scaled, out=scaled)
        np.clip(scaled, -qmax, qmax, out=scaled)
        # The functional form casts to int32 here; the values are
        # already integral and within ±qmax, so float32 holds them
        # exactly and the int32 round trip is skippable.  The float64
        # dequantisation multiply is NOT: int32 * float64 promotes, and
        # a float32 product would double-round.
        np.multiply(scaled, self._rep64, out=self._out64)
        np.copyto(flat, self._out64)


def quantization_error(x: np.ndarray, config: QuantConfig) -> float:
    """Relative L2 error introduced by one quantisation round trip."""
    norm = float(np.linalg.norm(x))
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(fake_quantize(x, config) - x)) / norm
