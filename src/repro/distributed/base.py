"""Shared machinery for all distributed strategies.

The hybrid-fidelity contract (DESIGN.md decision 1): learning dynamics
are executed for real at a reduced scale, while wall-clock time and
energy are charged by :class:`CostModel`, which is calibrated to the
paper's full-scale SoC-Cluster.  ``RunConfig`` therefore carries both a
*real* training configuration (the synthetic task, the reduced model
width) and a *simulated* one (paper-scale dataset size, batch size and
SoC count).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from ..cluster.clock import PhaseClock
from ..cluster.energy import EnergyModel, EnergyReport
from ..cluster.faults import FaultSchedule
from ..cluster.network import NetworkFabric
from ..cluster.spec import ModelProfile, model_profile
from ..cluster.topology import ClusterTopology
from ..data.synthetic import SyntheticImageTask
from ..nn import functional as F
from ..nn.modules import Module
from ..nn.models import build_model
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from ..telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["RunConfig", "CostModel", "StrategyResult", "Strategy",
           "make_model", "evaluate_accuracy", "fp32_train_step",
           "record_epoch_telemetry"]

#: fraction of a step's compute window that layer-by-layer
#: computing/communication overlap (§4.1 optimisation 1) can hide.
OVERLAP_FRACTION = 0.3


@dataclass
class RunConfig:
    """Everything one training run needs.

    Real-execution fields drive the numpy training; ``sim_*`` fields
    drive the calibrated clock at paper scale.
    """

    task: SyntheticImageTask
    model_name: str = "vgg11"
    width: float = 0.25
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_epochs: int = 20
    target_accuracy: float | None = None
    seed: int = 0

    topology: ClusterTopology = field(
        default_factory=lambda: ClusterTopology(num_socs=32))
    sim_samples_per_epoch: int = 50_000
    sim_global_batch: int = 64
    #: logical group count for grouped strategies (SoCFlow, 2D, T-FedAvg)
    num_groups: int = 8
    #: host worker processes for the real-math training of independent
    #: logical groups (SoCFlow); 1 = sequential in-process execution.
    #: Results are bit-identical for any value (see repro.parallel).
    workers: int = 1
    #: pre-trained weights for transfer learning (ResNet50-Finetune):
    #: loaded into every freshly built model replica
    init_state: dict | None = None
    #: freeze the backbone after loading ``init_state`` (ResNet-50 only)
    freeze_backbone: bool = False
    #: INT8 path settings are owned by the SoCFlow strategy

    #: telemetry context (tracer + metrics); ``None`` = no instrumentation.
    #: Strategies read it through :class:`CostModel`, which anchors the
    #: tracer to the run's simulated clock.
    telemetry: Telemetry | None = None

    #: unplanned-fault timeline (crashes, NIC flaps, stragglers, storms)
    fault_schedule: FaultSchedule | None = None
    #: how *baselines* react to a dead SoC: "fail-stop" aborts the run,
    #: "continue" keeps training on the survivors.  SoCFlow ignores this
    #: and always recovers (rollback + group re-formation).
    fault_mode: str = "fail-stop"

    #: bucketed gradient fusion (DynaComm-style comm/compute overlap):
    #: close a bucket once it holds this many *simulated-scale* MiB of
    #: gradients…
    fusion_threshold_mb: float | None = None
    #: …or this many fused tensors, whichever comes first.  Both unset
    #: = whole-model sync (the pre-fusion behaviour, bit-for-bit).
    fusion_max_ops: int | None = None

    #: trace-once/replay-many compiled graph executor for the host
    #: training hot path (see :mod:`repro.nn.graph`).  Replayed steps are
    #: bit-identical to the eager interpreter; eager remains the
    #: automatic fallback on shape change, re-grouping, or unsupported
    #: ops.
    graph: bool = False

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.fault_mode not in ("fail-stop", "continue"):
            raise ValueError("fault_mode must be 'fail-stop' or 'continue'")
        if (self.fusion_threshold_mb is not None
                and self.fusion_threshold_mb <= 0):
            raise ValueError("fusion_threshold_mb must be positive")
        if self.fusion_max_ops is not None and self.fusion_max_ops < 1:
            raise ValueError("fusion_max_ops must be >= 1")
        if self.fault_schedule is not None:
            self.fault_schedule.validate_for(self.topology)

    @property
    def fusion_enabled(self) -> bool:
        return (self.fusion_threshold_mb is not None
                or self.fusion_max_ops is not None)

    def model_kwargs(self, seed_offset: int = 0) -> dict:
        channels, size, _ = (self.task.input_shape[0],
                             self.task.input_shape[1],
                             self.task.input_shape[2])
        return {
            "num_classes": self.task.num_classes,
            "in_channels": channels,
            "image_size": size,
            "width": self.width,
            "seed": self.seed + seed_offset,
        }


def make_model(config: RunConfig, seed_offset: int = 0) -> Module:
    model = build_model(config.model_name, **config.model_kwargs(seed_offset))
    if config.init_state is not None:
        model.load_state_dict(config.init_state)
    if config.freeze_backbone:
        if not hasattr(model, "freeze_backbone"):
            raise ValueError(
                f"{config.model_name} does not support backbone freezing")
        model.freeze_backbone()
    return model


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                      batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)``."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            logits = model(Tensor(x[start:start + batch_size])).data
            pred = logits.argmax(axis=1)
            correct += int((pred == y[start:start + batch_size]).sum())
    return correct / len(x)


def fp32_train_step(model: Module, optimizer: SGD, x: np.ndarray,
                    y: np.ndarray) -> float:
    """One synchronous SGD step; returns the batch loss.

    When a :class:`repro.nn.graph.GraphExecutor` is attached to the
    model (``config.graph``), the step dispatches to it — a replayed
    compiled program when one matches, the eager interpreter otherwise,
    bit-identical either way.
    """
    executor = getattr(model, "_graph_exec", None)
    if executor is not None:
        return executor.step(optimizer, x, y)
    model.train()
    optimizer.zero_grad()
    logits = model(Tensor(x))
    loss = F.cross_entropy(logits, y)
    loss.backward()
    optimizer.step()
    return loss.item()


def flush_graph_stats(model: Module, cost: "CostModel", extra: dict,
                      hook_fallback: bool = False) -> None:
    """Surface a model's graph-executor counters after a training run.

    No-op without an attached executor — unless ``hook_fallback`` says
    the strategy declined to attach one despite ``config.graph`` (e.g.
    hipress's gradient hook, which capture does not support); then a
    synthetic single-fallback stat block is reported so the flag is
    visibly honoured rather than silently dropped.  With an executor,
    the capture/replay counters land in ``extra["graph_stats"]``, the
    metrics registry (``graph.captures`` / ``graph.replays`` /
    ``graph.eager_steps`` / ``graph.fallbacks``) and a ``graph_replay``
    summary span at the current simulated clock.  Numerics are
    untouched, so traced and untraced runs stay bit-identical.
    """
    executor = getattr(model, "_graph_exec", None)
    if executor is None:
        if not hook_fallback:
            return
        stats = {"captures": 0, "replays": 0, "eager_steps": 0,
                 "fallbacks": 1}
    else:
        stats = executor.snapshot()
    extra["graph_stats"] = stats
    telemetry = cost.telemetry
    if telemetry.metrics.enabled:
        for key, value in stats.items():
            telemetry.metrics.counter(f"graph.{key}").inc(value)
    if telemetry.tracer.enabled:
        telemetry.tracer.span("graph_replay", cost.clock.now, 0.0, **stats)


def record_epoch_telemetry(telemetry, cost: "CostModel", epoch: int,
                           epoch_t0: float, phases0: dict,
                           hidden0: float, accuracy: float) -> None:
    """Per-epoch report row, ``epoch`` span, and epoch-level metrics.

    The strategy-family sibling of SoCFlow's richer
    ``_record_epoch_telemetry``: it marks the epoch window the analysis
    engine (:mod:`repro.telemetry.analysis`) segments the timeline by,
    and feeds the CLI per-epoch table for baseline runs.  ``phases0``
    and ``hidden0`` are the clock breakdown / hidden-sync attribution
    snapshots taken at the epoch's start.
    """
    phases1 = cost.clock.breakdown()
    delta = {phase: phases1.get(phase, 0.0) - phases0.get(phase, 0.0)
             for phase in phases1}
    seconds = cost.clock.now - epoch_t0
    hidden_s = cost.clock.attributed_breakdown().get("sync", 0.0) - hidden0
    telemetry.record_epoch(
        epoch=epoch, seconds=seconds,
        compute_s=delta.get("compute", 0.0),
        sync_s=delta.get("sync", 0.0),
        hidden_s=hidden_s,
        update_s=delta.get("update", 0.0),
        recovery_s=delta.get("recovery") or None,
        accuracy=accuracy,
        retries=cost.fabric.total_retries)
    if telemetry.tracer.enabled:
        telemetry.tracer.span("epoch", epoch_t0, seconds,
                              name=f"epoch {epoch}", epoch=epoch,
                              accuracy=accuracy)
    metrics = telemetry.metrics
    if metrics.enabled:
        metrics.counter("epochs").inc()
        metrics.histogram("epoch.seconds").observe(seconds)
        for phase, value in sorted(delta.items()):
            metrics.counter("phase.seconds", phase=phase).inc(value)


class CostModel:
    """Calibrated per-phase cost calculator at paper scale."""

    def __init__(self, config: RunConfig, telemetry: Telemetry | None = None):
        """``telemetry`` must be passed explicitly by the strategy that
        owns the run's timeline; probe cost models (group sizing, Eq. 1
        planning) leave it unset so their scratch clocks never rebind
        the tracer."""
        self.config = config
        self.topology = config.topology
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.profile: ModelProfile = model_profile(config.model_name)
        self.fabric = NetworkFabric(config.topology,
                                    num_tensors=self.profile.num_tensors,
                                    telemetry=self.telemetry)
        soc = config.topology.soc
        # Measured Fig-4a latencies when available (scaled by the SoC's
        # throughput relative to the SD865 they were measured on);
        # otherwise FLOPs / sustained throughput.
        from .. cluster.spec import SOC_REGISTRY
        sd865 = SOC_REGISTRY["sd865"]
        if self.profile.t_cpu_sample_s is not None:
            self.t_cpu_sample = (self.profile.t_cpu_sample_s
                                 * sd865.cpu.flops / soc.cpu.flops)
        else:
            self.t_cpu_sample = self.profile.flops_per_sample / soc.cpu.flops
        if self.profile.t_npu_sample_s is not None:
            self.t_npu_sample = (self.profile.t_npu_sample_s
                                 * sd865.npu.flops / soc.npu.flops)
        else:
            self.t_npu_sample = self.profile.flops_per_sample / soc.npu.flops
        self.energy = EnergyModel(soc)
        self.clock = PhaseClock()
        #: interned FlatLayout id -> BucketPlan (layouts are interned,
        #: so identity is a stable cache key for the run's lifetime)
        self._bucket_plans: dict[int, "object"] = {}
        if self.telemetry.enabled:
            self.telemetry.attach(clock=self.clock, topology=self.topology)

    # -- sizes ----------------------------------------------------------
    @property
    def steps_per_epoch(self) -> int:
        return max(1, math.ceil(self.config.sim_samples_per_epoch
                                / self.config.sim_global_batch))

    @property
    def grad_bytes(self) -> float:
        return float(self.profile.payload_bytes("fp32"))

    # -- bucketed gradient fusion ---------------------------------------
    def bucket_plan(self, layout) -> "BucketPlan | None":
        """The run's :class:`~repro.comm.buckets.BucketPlan` for a model
        layout, or ``None`` when fusion is off (or there is no layout).

        The MB threshold applies at *simulated* scale: buckets close on
        their share of the paper-scale gradient payload
        (:attr:`grad_bytes`), not the reduced-width real model's bytes,
        so ``--fusion-threshold-mb 25`` means the same thing it would on
        the physical cluster.
        """
        if layout is None or not self.config.fusion_enabled:
            return None
        plan = self._bucket_plans.get(id(layout))
        if plan is None:
            from ..comm.buckets import BucketPlan
            threshold = self.config.fusion_threshold_mb
            plan = BucketPlan.from_layout(
                layout,
                threshold_bytes=(None if threshold is None
                                 else threshold * 1024 * 1024),
                max_ops=self.config.fusion_max_ops,
                total_bytes=self.grad_bytes)
            self._bucket_plans[id(layout)] = plan
        return plan

    def overlapped_sync(self, compute_s: float, plan,
                        bucket_times: "Sequence[float]",
                        whole_raw: float, baseline_hidden: float
                        ) -> tuple[float, float, list[tuple[float, float]]]:
        """Price one step's sync as per-bucket collectives overlapping
        backward.

        ``bucket_times[i]`` is bucket *i*'s collective duration (in the
        plan's emission order); ``whole_raw``/``baseline_hidden`` are
        what the sequential whole-model path would have charged.
        Returns ``(visible, hidden, schedule)`` where ``visible`` is
        the wall-clock sync seconds past the compute window and
        ``hidden`` the network-busy share overlapped under compute
        (``visible + hidden`` = total network-busy time).

        Adaptive fusion: per-bucket collectives pay extra startup and
        per-phase hop latency, so a plan can *lose* to whole-model sync
        on shallow-compute steps.  A real runtime would fall back to
        coarser fusion, so the visible time is clamped at the
        sequential path's — bucketing never makes a step slower, and a
        1-bucket plan reproduces the sequential charge exactly (the
        returned visible time is the *same float expression* the
        unbucketed path advances, never a re-rounding of it).
        """
        from ..cluster.network import overlap_timeline
        ready = [fraction * compute_s for fraction in plan.ready_fractions()]
        schedule, visible = overlap_timeline(compute_s, ready, bucket_times)
        sequential_visible = max(0.0, whole_raw - baseline_hidden)
        visible = min(visible, sequential_visible)
        raw = sum(bucket_times)
        return visible, max(0.0, raw - visible), schedule

    # -- per-phase charging ---------------------------------------------
    def compute_seconds(self, samples_per_soc: float,
                        processor: str = "cpu") -> float:
        per_sample = (self.t_cpu_sample if processor == "cpu"
                      else self.t_npu_sample)
        return samples_per_soc * per_sample

    def update_seconds(self) -> float:
        """Optimizer update: memory-bound (read grad+weight+momentum,
        write weight+momentum -> ~16 bytes/parameter over LPDDR5)."""
        return 16.0 * self.profile.params / self.topology.soc.mem_bps

    def charge_step(self, compute_s: float, sync_s: float,
                    num_socs: int, cpu_fraction: float = 1.0,
                    overlap: bool = True, hidden_s: float | None = None,
                    bucket_schedule: "list[tuple[float, float]] | None" = None
                    ) -> None:
        """Advance the clock by one training step.

        ``sync_s`` is reduced by the computing/communication overlap
        optimisation when ``overlap`` (all strategies get it, §4.1).
        With ``hidden_s`` the caller has already split the sync time:
        ``sync_s`` is the *visible* share to advance the wall clock by
        and ``hidden_s`` the share overlapped under compute (attributed
        as busy network time only) — bucketed fusion computes the split
        from its overlap timeline.  ``bucket_schedule`` optionally
        carries the per-bucket ``(start, end)`` offsets for span
        attribution.
        """
        if hidden_s is not None:
            hidden = hidden_s
        elif overlap:
            hidden = min(sync_s, OVERLAP_FRACTION * compute_s)
            sync_s -= hidden
        else:
            hidden = 0.0
        update_s = self.update_seconds()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            t0 = self.clock.now
            tracer.span("compute", t0, compute_s, num_socs=num_socs,
                        cpu_fraction=cpu_fraction)
            if bucket_schedule:
                for index, (start, end) in enumerate(bucket_schedule):
                    tracer.span("bucket_sync", t0 + start, end - start,
                                bucket=index, num_socs=num_socs,
                                hidden_s=max(0.0, min(end, compute_s) - start))
            if sync_s > 0 or hidden > 0:
                tracer.span("sync", t0 + compute_s, sync_s,
                            hidden_s=hidden, num_socs=num_socs)
            tracer.span("update", t0 + compute_s + sync_s, update_s)
        self.clock.advance(compute_s, "compute")
        self.clock.advance(sync_s, "sync")
        self.clock.attribute(hidden, "sync")
        self.clock.advance(update_s, "update")
        self.energy.charge_compute(compute_s, num_socs, cpu_fraction)
        self.energy.charge_network(sync_s, num_socs)
        self.energy.charge_network(hidden, num_socs, include_idle=False)
        self.energy.charge_compute(update_s, num_socs, 1.0)

    def charge_epoch_sync(self, sync_s: float, num_socs: int) -> None:
        self.clock.advance(sync_s, "sync")
        self.energy.charge_network(sync_s, num_socs)


@dataclass
class StrategyResult:
    """Outcome of one strategy's training run."""

    strategy: str
    accuracy_history: list[float]
    sim_time_s: float
    breakdown: dict[str, float]
    energy: EnergyReport
    epochs_run: int
    epochs_to_target: int | None
    converged: bool
    extra: dict = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        return self.accuracy_history[-1] if self.accuracy_history else 0.0

    @property
    def best_accuracy(self) -> float:
        return max(self.accuracy_history) if self.accuracy_history else 0.0

    @property
    def sim_time_hours(self) -> float:
        return self.sim_time_s / 3600.0

    def phase_shares(self) -> dict[str, float]:
        """Phase → share of total *busy* time (Figure 12's breakdown).

        Overlapped sync is busy network time, so the denominator is the
        sum of phase totals, which can exceed the wall clock.
        """
        total = sum(self.breakdown.values())
        if total <= 0:
            return {phase: 0.0 for phase in self.breakdown}
        return {phase: value / total for phase, value in self.breakdown.items()}

    def time_to_target_s(self) -> float | None:
        """Simulated time at which the target accuracy was first reached."""
        if self.epochs_to_target is None or not self.epochs_run:
            return None
        return self.sim_time_s * self.epochs_to_target / self.epochs_run


class Strategy(abc.ABC):
    """A distributed training method: real math + simulated clock."""

    name: str = "strategy"

    @abc.abstractmethod
    def train(self, config: RunConfig) -> StrategyResult:
        """Run to ``config.max_epochs`` (or target accuracy) and report."""

    # -- helpers shared by subclasses -----------------------------------
    @staticmethod
    def _epoch_fault_state(config: RunConfig, epoch: int,
                           cost: "CostModel | None" = None
                           ) -> tuple[set[int], bool]:
        """Baseline degraded-mode: (dead SoCs this epoch, abort?).

        ``abort`` is True exactly when SoCs are down and the config asks
        for fail-stop.  When a cost model is given, the epoch's NIC
        degradations are pushed into its fabric either way, so even a
        continuing baseline pays for flapping links.
        """
        schedule = config.fault_schedule
        if schedule is None:
            return set(), False
        if cost is not None:
            cost.fabric.apply_pcb_multipliers(schedule.nic_multipliers(epoch))
        dead = {s for s in schedule.dead_socs(epoch)
                if 0 <= s < config.topology.num_socs}
        return dead, bool(dead) and config.fault_mode == "fail-stop"

    @staticmethod
    def _epoch_accuracy_bookkeeping(
            accuracy: float, epoch: int, config: RunConfig,
            history: list[float], state: dict) -> bool:
        """Track accuracy history / target; returns True when done early."""
        history.append(accuracy)
        target = config.target_accuracy
        if (target is not None and accuracy >= target
                and state.get("epochs_to_target") is None):
            state["epochs_to_target"] = epoch + 1
        return False

    @staticmethod
    def _result(name: str, config: RunConfig, cost: CostModel,
                history: list[float], state: dict,
                extra: dict | None = None) -> StrategyResult:
        epochs_to_target = state.get("epochs_to_target")
        extra = dict(extra or {})
        # Network observability: retries and surviving degradations are
        # tracked by the fabric for every strategy; surface them in the
        # run summary (and mirror them as metrics when a registry rides
        # along).
        extra.setdefault("network_retries", cost.fabric.total_retries)
        extra.setdefault("degraded_pcbs", cost.fabric.degraded_pcbs)
        # Comm/compute overlap observability: how much of the sync phase
        # was hidden under compute (the Figure 12 breakdown counts it as
        # busy network time, but it never advanced the wall clock).
        extra.setdefault("sync_hidden_s",
                         cost.clock.attributed_breakdown().get("sync", 0.0))
        metrics = cost.telemetry.metrics
        if metrics.enabled:
            for phase, seconds in cost.clock.breakdown().items():
                metrics.gauge("run.phase_seconds", phase=phase).set(seconds)
            metrics.gauge("run.sim_time_s").set(cost.clock.now)
        return StrategyResult(
            strategy=name,
            accuracy_history=history,
            sim_time_s=cost.clock.now,
            breakdown=cost.clock.breakdown(),
            energy=cost.energy.report,
            epochs_run=len(history),
            epochs_to_target=epochs_to_target,
            converged=epochs_to_target is not None,
            extra=extra,
        )
