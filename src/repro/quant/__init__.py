"""INT8 fake-quantised training — the simulated mobile-NPU backend.

The paper runs NITI-style integer training (Wang et al.) on the Hexagon
DSP; here the same error mechanism is reproduced by keeping weights on a
symmetric INT8 grid and quantising activations/gradients each step.
"""

from .int8 import (QuantConfig, dequantize, fake_quantize, quantize,
                   quantization_error)
from .observer import EmaObserver, MinMaxObserver
from .trainer import Int8Trainer
from .ste import (ste_quantize, ste_cast_fp16, ActivationQuantizer,
                  attach_activation_quant, detach_activation_quant)
from .mixed import (compute_alpha, compute_beta, cpu_fraction,
                    merge_weights, MixedPrecisionController)

__all__ = [
    "QuantConfig", "quantize", "dequantize", "fake_quantize",
    "quantization_error", "MinMaxObserver", "EmaObserver", "Int8Trainer",
    "ste_quantize", "ste_cast_fp16", "ActivationQuantizer",
    "attach_activation_quant",
    "detach_activation_quant",
    "compute_alpha", "compute_beta", "cpu_fraction", "merge_weights",
    "MixedPrecisionController",
]
