"""Network fabric: transfer-time physics, contention, paper calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterTopology, Flow, NetworkFabric
from repro.cluster.network import CONTROL_BOARD
from repro.cluster.spec import model_profile

MB = 1e6


def fabric(num_socs=32):
    return NetworkFabric(ClusterTopology(num_socs=num_socs))


class TestTransferTime:
    def test_empty_flows_zero(self):
        assert fabric().transfer_time([]) == 0.0

    def test_single_intra_pcb_flow(self):
        fab = fabric()
        t = fab.transfer_time([Flow(0, 1, 125 * MB)])  # 1 Gb over 1 Gbps
        assert t == pytest.approx(1.0, rel=0.01)

    def test_cross_pcb_flow_same_time_when_uncontended(self):
        fab = fabric()
        intra = fab.transfer_time([Flow(0, 1, 10 * MB)])
        inter = fab.transfer_time([Flow(0, 7, 10 * MB)])
        assert inter == pytest.approx(intra, rel=0.01)

    def test_shared_pcb_nic_contention(self):
        fab = fabric()
        # two flows leaving PCB 0 at once share its 1 Gbps NIC
        solo = fab.transfer_time([Flow(0, 7, 10 * MB)])
        duo = fab.transfer_time([Flow(0, 7, 10 * MB), Flow(1, 8, 10 * MB)])
        assert duo == pytest.approx(2 * solo, rel=0.05)

    def test_full_duplex_no_contention(self):
        fab = fabric()
        # one flow out of PCB 0 and one into it: opposite directions
        solo = fab.transfer_time([Flow(0, 7, 10 * MB)])
        both = fab.transfer_time([Flow(0, 7, 10 * MB), Flow(8, 1, 10 * MB)])
        assert both == pytest.approx(solo, rel=0.05)

    def test_control_board_route(self):
        fab = fabric()
        t = fab.transfer_time([Flow(0, CONTROL_BOARD, 10 * MB)])
        assert t > 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 1, -5)


class TestRingAllReduce:
    def test_grows_with_ring_size(self):
        fab = fabric()
        payload = model_profile("vgg11").payload_bytes()
        t5 = fab.ring_allreduce_time(list(range(5)), payload)
        t32 = fab.ring_allreduce_time(list(range(32)), payload)
        assert t32 > t5

    def test_calibration_intra_pcb_vgg11(self):
        """Paper §2.3: intra-PCB ring for VGG-11 takes 540 ms."""
        fab = fabric()
        t = fab.ring_allreduce_time(list(range(5)),
                                    model_profile("vgg11").payload_bytes())
        assert 0.35 <= t <= 0.95

    def test_calibration_32soc_resnet18(self):
        """Paper §2.3: 32-SoC ring for ResNet-18 takes 2225 ms."""
        fab = fabric()
        t = fab.ring_allreduce_time(list(range(32)),
                                    model_profile("resnet18").payload_bytes())
        assert 1.4 <= t <= 3.2

    def test_single_node_only_startup(self):
        fab = fabric()
        t = fab.ring_allreduce_time([0], 10 * MB)
        assert t == pytest.approx(fab.topology.startup_per_soc_s)

    def test_concurrent_rings_contend_across_pcbs(self):
        fab = fabric(num_socs=10)
        # two rings that both straddle the PCB0/PCB1 boundary
        r1 = [3, 5]
        r2 = [4, 6]
        solo = fab.concurrent_ring_allreduce_time([r1], 20 * MB)
        both = fab.concurrent_ring_allreduce_time([r1, r2], 20 * MB)
        assert both > solo * 1.5

    def test_concurrent_rings_free_when_disjoint_pcbs(self):
        fab = fabric(num_socs=10)
        r1 = [0, 1, 2]   # PCB 0 only
        r2 = [5, 6, 7]   # PCB 1 only
        solo = fab.concurrent_ring_allreduce_time([r1], 20 * MB)
        both = fab.concurrent_ring_allreduce_time([r1, r2], 20 * MB)
        assert both == pytest.approx(solo, rel=0.05)


class TestTensorScaledStartup:
    def test_small_models_start_collectives_faster(self):
        topo = ClusterTopology(num_socs=32)
        lenet = NetworkFabric(topo, num_tensors=10)
        resnet = NetworkFabric(topo, num_tensors=62)
        assert lenet.startup_per_soc_s < resnet.startup_per_soc_s / 3

    def test_resnet18_startup_matches_paper(self):
        """§2.3: 32-SoC ResNet-18 aggregation startup ~= 1300 ms."""
        fab = NetworkFabric(ClusterTopology(num_socs=32), num_tensors=62)
        assert 1.0 <= 32 * fab.startup_per_soc_s <= 1.6

    def test_default_uses_topology_value(self):
        topo = ClusterTopology(num_socs=8)
        assert NetworkFabric(topo).startup_per_soc_s == \
            topo.startup_per_soc_s


class TestParameterServer:
    def test_calibration_32soc_vgg11(self):
        """Paper §2.3: 32-SoC PS sync for VGG-11 takes 20.6 s."""
        fab = fabric()
        t = fab.parameter_server_time(list(range(32)),
                                      model_profile("vgg11").payload_bytes())
        assert 14.0 <= t <= 26.0

    def test_ps_slower_than_ring_at_scale(self):
        fab = fabric()
        payload = model_profile("vgg11").payload_bytes()
        socs = list(range(32))
        assert (fab.parameter_server_time(socs, payload)
                > 3 * fab.ring_allreduce_time(socs, payload))

    def test_control_board_server_faster(self):
        fab = fabric()
        payload = model_profile("vgg11").payload_bytes()
        socs = list(range(32))
        on_soc = fab.parameter_server_time(socs, payload)
        on_ctrl = fab.parameter_server_time(socs + [CONTROL_BOARD], payload,
                                            server=CONTROL_BOARD)
        assert on_ctrl < on_soc


class TestTreeAggregate:
    def test_tree_faster_than_soc_ps(self):
        fab = fabric()
        payload = model_profile("vgg11").payload_bytes()
        topo = fab.topology
        groups = [topo.socs_on_pcb(p) for p in range(topo.num_pcbs)]
        t_tree = fab.tree_aggregate_time(groups, payload)
        t_ps = fab.parameter_server_time(list(range(32)), payload)
        assert t_tree < t_ps

    def test_empty_groups_zero(self):
        assert fabric().tree_aggregate_time([], 10 * MB) == 0.0


class TestBroadcast:
    def test_self_broadcast_free(self):
        assert fabric().broadcast_time(0, [0], 10 * MB) == 0.0

    @given(st.integers(2, 32), st.floats(1e3, 1e8))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_payload(self, n, nbytes):
        fab = fabric()
        small = fab.ring_allreduce_time(list(range(n)), nbytes)
        large = fab.ring_allreduce_time(list(range(n)), nbytes * 2)
        assert large >= small
