"""Seeded fault injection for the SoC-Cluster (the unplanned-failure story).

The paper handles *planned* preemption — user load returns, the
scheduler drops whole logical groups at an epoch boundary (§3).  A
production cluster also sees *unplanned* faults: SoCs crash and reboot,
the shared 1 Gbps PCB NICs degrade or flap, individual chips become
persistent stragglers, and user-load spikes preempt several groups at
once.  This module expresses all four as typed events on an epoch
timeline:

- :class:`SoCCrash` — a chip dies at an epoch boundary and (optionally)
  rejoins later;
- :class:`NicDegradation` — a PCB NIC runs at a fraction of its nominal
  bandwidth, optionally recovering (a *flap* is a degradation with a
  recovery epoch);
- :class:`StragglerFault` — DVFS pins a SoC at a fraction of nominal
  speed from some epoch onward;
- :class:`PreemptionStorm` — user load claims several logical groups at
  once.

A :class:`FaultSchedule` bundles events and answers point-in-time
queries (``dead_socs``, ``nic_multipliers``, ...).  Schedules come from
three places: hand-built event lists, the seeded :class:`FaultInjector`
(rate- or count-based sampling), and the CLI's ``--faults`` spec string
via :func:`parse_fault_spec`.  Everything is deterministic given the
seed, which is what makes recovery regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .topology import ClusterTopology

__all__ = ["FaultSpecError", "SoCCrash", "NicDegradation", "StragglerFault",
           "PreemptionStorm", "FaultSchedule", "FaultInjector",
           "parse_fault_spec", "event_summary"]


class FaultSpecError(ValueError):
    """A ``--faults`` spec string could not be parsed."""


def _check_epoch(epoch: int) -> None:
    if epoch < 0:
        raise ValueError("fault epoch must be non-negative")


@dataclass(frozen=True)
class SoCCrash:
    """``soc`` is dead from the start of ``epoch``.

    ``recover_epoch=None`` means the chip never comes back; otherwise it
    rejoins the survivor pool at the start of ``recover_epoch``.
    """

    epoch: int
    soc: int
    recover_epoch: int | None = None

    def __post_init__(self):
        _check_epoch(self.epoch)
        if self.recover_epoch is not None and self.recover_epoch <= self.epoch:
            raise ValueError("recover_epoch must be after the crash epoch")

    def dead_at(self, epoch: int) -> bool:
        if epoch < self.epoch:
            return False
        return self.recover_epoch is None or epoch < self.recover_epoch


@dataclass(frozen=True)
class NicDegradation:
    """PCB ``pcb``'s shared NIC runs at ``multiplier`` of nominal
    bandwidth from ``epoch``; ``recover_epoch`` turns it into a flap."""

    epoch: int
    pcb: int
    multiplier: float
    recover_epoch: int | None = None

    def __post_init__(self):
        _check_epoch(self.epoch)
        if not 0.0 < self.multiplier < 1.0:
            raise ValueError("multiplier must be in (0, 1)")
        if self.recover_epoch is not None and self.recover_epoch <= self.epoch:
            raise ValueError("recover_epoch must be after the onset epoch")

    def active_at(self, epoch: int) -> bool:
        if epoch < self.epoch:
            return False
        return self.recover_epoch is None or epoch < self.recover_epoch


@dataclass(frozen=True)
class StragglerFault:
    """DVFS pins ``soc`` at ``factor`` of nominal speed from ``epoch``."""

    epoch: int
    soc: int
    factor: float

    def __post_init__(self):
        _check_epoch(self.epoch)
        if not 0.0 < self.factor < 1.0:
            raise ValueError("straggler factor must be in (0, 1)")


@dataclass(frozen=True)
class PreemptionStorm:
    """User load claims ``num_groups`` logical groups at ``epoch``."""

    epoch: int
    num_groups: int = 1

    def __post_init__(self):
        _check_epoch(self.epoch)
        if self.num_groups <= 0:
            raise ValueError("num_groups must be positive")


_EVENT_TYPES = (SoCCrash, NicDegradation, StragglerFault, PreemptionStorm)

_EVENT_KIND_NAMES = {SoCCrash: "crash", NicDegradation: "nic_degradation",
                     StragglerFault: "straggler",
                     PreemptionStorm: "preemption_storm"}


def event_summary(event) -> dict:
    """Flat, JSON-ready description of one fault event (trace ``args``)."""
    if not isinstance(event, _EVENT_TYPES):
        raise TypeError(f"not a fault event: {event!r}")
    summary = {"fault": _EVENT_KIND_NAMES[type(event)], "epoch": event.epoch}
    for field_name in ("soc", "pcb", "multiplier", "factor", "num_groups",
                       "recover_epoch"):
        value = getattr(event, field_name, None)
        if value is not None:
            summary[field_name] = value
    return summary


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable timeline of fault events with point-in-time queries."""

    events: tuple = ()

    def __post_init__(self):
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise TypeError(f"not a fault event: {event!r}")
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.epoch, type(e).__name__,
                                              repr(e))))
        object.__setattr__(self, "events", ordered)

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- point-in-time queries ------------------------------------------
    def dead_socs(self, epoch: int) -> set[int]:
        """SoC ids that are down during ``epoch`` (crash ≤ epoch < recovery)."""
        return {e.soc for e in self.events
                if isinstance(e, SoCCrash) and e.dead_at(epoch)}

    def nic_multipliers(self, epoch: int) -> dict[int, float]:
        """pcb -> bandwidth multiplier in effect during ``epoch``.

        Overlapping degradations on one PCB compound multiplicatively.
        """
        mults: dict[int, float] = {}
        for e in self.events:
            if isinstance(e, NicDegradation) and e.active_at(epoch):
                mults[e.pcb] = mults.get(e.pcb, 1.0) * e.multiplier
        return mults

    def straggler_factors(self, epoch: int) -> dict[int, float]:
        """soc -> persistent clock factor for stragglers begun by ``epoch``."""
        factors: dict[int, float] = {}
        for e in self.events:
            if isinstance(e, StragglerFault) and e.epoch <= epoch:
                factors[e.soc] = min(factors.get(e.soc, 1.0), e.factor)
        return factors

    def storms_at(self, epoch: int) -> list[PreemptionStorm]:
        return [e for e in self.events
                if isinstance(e, PreemptionStorm) and e.epoch == epoch]

    def events_at(self, epoch: int) -> tuple:
        """Every event whose onset is exactly ``epoch`` (telemetry hook:
        the scheduler emits one ``fault`` trace event per onset)."""
        return tuple(e for e in self.events if e.epoch == epoch)

    @property
    def max_epoch(self) -> int:
        """Last epoch at which any event begins (-1 for an empty schedule)."""
        return max((e.epoch for e in self.events), default=-1)

    def validate_for(self, topology: ClusterTopology) -> "FaultSchedule":
        """Raise if any event references a SoC/PCB outside ``topology``."""
        for e in self.events:
            if isinstance(e, (SoCCrash, StragglerFault)):
                topology.pcb_of(e.soc)          # range-checks the SoC id
            elif isinstance(e, NicDegradation):
                if not 0 <= e.pcb < topology.num_pcbs:
                    raise ValueError(f"PCB id {e.pcb} out of range "
                                     f"[0, {topology.num_pcbs})")
        return self


@dataclass
class FaultInjector:
    """Deterministic fault sampling over a topology.

    Rates are per-epoch probabilities: each epoch every live SoC crashes
    with ``crash_rate``, every PCB NIC flaps with ``flap_rate``, and so
    on.  Two injectors with the same seed and parameters generate the
    same schedule.
    """

    topology: ClusterTopology
    seed: int = 0
    crash_rate: float = 0.0
    crash_outage_epochs: int | None = None     # None = permanent
    flap_rate: float = 0.0
    flap_multiplier: float = 0.25
    flap_outage_epochs: int = 2
    straggler_rate: float = 0.0
    straggler_factor: float = 0.5
    storm_rate: float = 0.0
    storm_groups: int = 1
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def generate(self, max_epochs: int) -> FaultSchedule:
        """Sample a schedule over ``[1, max_epochs)`` (epoch 0 stays clean
        so every run gets at least one fault-free epoch to roll back to).
        """
        events: list = []
        dead: set[int] = set()
        for epoch in range(1, max_epochs):
            for soc in range(self.topology.num_socs):
                if soc in dead:
                    continue
                if self._rng.random() < self.crash_rate:
                    recover = (None if self.crash_outage_epochs is None
                               else epoch + self.crash_outage_epochs)
                    events.append(SoCCrash(epoch, soc, recover))
                    if recover is None:
                        dead.add(soc)
            for pcb in range(self.topology.num_pcbs):
                if self._rng.random() < self.flap_rate:
                    events.append(NicDegradation(
                        epoch, pcb, self.flap_multiplier,
                        epoch + self.flap_outage_epochs))
            for soc in range(self.topology.num_socs):
                if soc not in dead and self._rng.random() < self.straggler_rate:
                    events.append(StragglerFault(epoch, soc,
                                                 self.straggler_factor))
            if self._rng.random() < self.storm_rate:
                events.append(PreemptionStorm(epoch, self.storm_groups))
        return FaultSchedule(tuple(events))

    def sample(self, max_epochs: int, num_crashes: int = 0,
               num_flaps: int = 0, num_stragglers: int = 0) -> FaultSchedule:
        """Exact-count sampling: kill ``num_crashes`` distinct SoCs, flap
        ``num_flaps`` distinct PCB NICs, straggle ``num_stragglers``
        distinct SoCs, at epochs drawn uniformly from ``[1, max_epochs)``.
        """
        if max_epochs < 2:
            raise ValueError("need max_epochs >= 2 to place faults")
        topo = self.topology
        if num_crashes + num_stragglers > topo.num_socs:
            raise ValueError("more per-SoC faults than SoCs")
        if num_flaps > topo.num_pcbs:
            raise ValueError("more flaps than PCBs")
        socs = self._rng.permutation(topo.num_socs)
        events: list = []
        for soc in socs[:num_crashes]:
            epoch = int(self._rng.integers(1, max_epochs))
            events.append(SoCCrash(epoch, int(soc)))
        for soc in socs[num_crashes:num_crashes + num_stragglers]:
            epoch = int(self._rng.integers(1, max_epochs))
            events.append(StragglerFault(epoch, int(soc),
                                         self.straggler_factor))
        pcbs = self._rng.permutation(topo.num_pcbs)
        for pcb in pcbs[:num_flaps]:
            epoch = int(self._rng.integers(1, max_epochs))
            events.append(NicDegradation(
                epoch, int(pcb), self.flap_multiplier,
                epoch + self.flap_outage_epochs))
        return FaultSchedule(tuple(events))


# ----------------------------------------------------------------------
# ``--faults`` spec parsing
# ----------------------------------------------------------------------
# Grammar: clauses separated by ';', each clause ``kind:key=value,...``.
#
#   crash:epoch=1,soc=3[,until=4]
#   nic:epoch=2,pcb=0,mult=0.2[,until=5]        (alias: flap)
#   straggler:epoch=1,soc=7,factor=0.5
#   storm:epoch=3[,groups=2]
#   random:seed=7,epochs=8[,crashes=4][,flaps=1][,stragglers=2]
#
# ``random`` clauses need a topology to sample over.

_INT_KEYS = {"epoch", "soc", "pcb", "until", "groups", "seed", "epochs",
             "crashes", "flaps", "stragglers"}
_FLOAT_KEYS = {"mult", "factor"}


def _parse_fields(kind: str, body: str) -> dict:
    fields: dict = {}
    for pair in filter(None, (p.strip() for p in body.split(","))):
        if "=" not in pair:
            raise FaultSpecError(
                f"malformed field {pair!r} in {kind!r} clause "
                "(expected key=value)")
        key, _, raw = pair.partition("=")
        key = key.strip()
        raw = raw.strip()
        try:
            if key in _INT_KEYS:
                fields[key] = int(raw)
            elif key in _FLOAT_KEYS:
                fields[key] = float(raw)
            else:
                raise FaultSpecError(
                    f"unknown field {key!r} in {kind!r} clause")
        except ValueError as err:
            raise FaultSpecError(
                f"bad value {raw!r} for field {key!r}") from err
    return fields


def _require(fields: dict, kind: str, *keys: str) -> None:
    missing = [k for k in keys if k not in fields]
    if missing:
        raise FaultSpecError(
            f"{kind!r} clause missing field(s): {', '.join(missing)}")


def parse_fault_spec(spec: str,
                     topology: ClusterTopology | None = None
                     ) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a :class:`FaultSchedule`.

    Raises :class:`FaultSpecError` on any malformed input.  When a
    ``topology`` is given, SoC/PCB ids are range-checked and ``random``
    clauses are allowed.
    """
    events: list = []
    clauses = [c.strip() for c in spec.split(";") if c.strip()]
    if not clauses:
        raise FaultSpecError("empty fault spec")
    for clause in clauses:
        kind, sep, body = clause.partition(":")
        kind = kind.strip().lower()
        if not sep:
            raise FaultSpecError(
                f"malformed clause {clause!r} (expected kind:key=value,...)")
        fields = _parse_fields(kind, body)
        try:
            if kind == "crash":
                _require(fields, kind, "epoch", "soc")
                events.append(SoCCrash(fields["epoch"], fields["soc"],
                                       fields.get("until")))
            elif kind in ("nic", "flap"):
                _require(fields, kind, "epoch", "pcb", "mult")
                events.append(NicDegradation(fields["epoch"], fields["pcb"],
                                             fields["mult"],
                                             fields.get("until")))
            elif kind == "straggler":
                _require(fields, kind, "epoch", "soc", "factor")
                events.append(StragglerFault(fields["epoch"], fields["soc"],
                                             fields["factor"]))
            elif kind == "storm":
                _require(fields, kind, "epoch")
                events.append(PreemptionStorm(fields["epoch"],
                                              fields.get("groups", 1)))
            elif kind == "random":
                if topology is None:
                    raise FaultSpecError(
                        "'random' clauses need a cluster topology")
                _require(fields, kind, "seed", "epochs")
                injector = FaultInjector(topology, seed=fields["seed"])
                events.extend(injector.sample(
                    fields["epochs"],
                    num_crashes=fields.get("crashes", 0),
                    num_flaps=fields.get("flaps", 0),
                    num_stragglers=fields.get("stragglers", 0)))
            else:
                raise FaultSpecError(f"unknown fault kind {kind!r}")
        except FaultSpecError:
            raise
        except ValueError as err:
            raise FaultSpecError(f"invalid {kind!r} clause: {err}") from err
    schedule = FaultSchedule(tuple(events))
    if topology is not None:
        try:
            schedule.validate_for(topology)
        except ValueError as err:
            raise FaultSpecError(str(err)) from err
    return schedule
