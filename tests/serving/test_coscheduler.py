"""Co-scheduler tests: SoC bidding, preemption under SLO pressure,
saturation queueing, determinism, telemetry integration."""

import numpy as np
import pytest

from repro.jobs import TrainingJob
from repro.serving import (ArrivalProcess, ServiceModel, ServingCoScheduler,
                           ServingPlane)
from repro.telemetry import Telemetry
from repro.telemetry.analysis import analyze_records

from .conftest import uniform_times


def make_job(job_id="job", **overrides) -> TrainingJob:
    spec = dict(id=job_id, workload="tiny", priority=1, min_socs=2,
                max_socs=8, epochs=2, target_group_size=2)
    spec.update(overrides)
    return TrainingJob(**spec)


def slow_service():
    """~0.47 rps/replica at full batch: a few rps saturate 8 SoCs."""
    return ServiceModel("m", per_request_s=2.0, batch_overhead_s=0.5,
                        max_batch=4)


def make_coscheduler(topology, factory, times, *, horizon=6.0,
                     slo_ms=60_000.0, telemetry=None, **plane_kw):
    arrivals = ArrivalProcess.from_times(times, horizon_hours=horizon)
    plane_kw.setdefault("min_replicas", 1)
    plane_kw.setdefault("scale_down_patience", 2)
    plane = ServingPlane(arrivals, slow_service(), slo_ms=slo_ms,
                         telemetry=telemetry, **plane_kw)
    return ServingCoScheduler(
        topology, plane, quantum_hours=0.25, horizon_hours=horizon,
        config_factory=factory, telemetry=telemetry)


class TestBidding:
    def test_serving_floor_held_and_training_gets_rest(
            self, serving_topology, config_factory):
        # trickle load: serving stays at the 1-replica floor
        sched = make_coscheduler(serving_topology, config_factory,
                                 uniform_times(0.0, 6.0, 0.05))
        record = sched.submit(make_job(max_socs=8, epochs=2))
        report = sched.run()
        assert record.status == "completed"
        assert report.extra["serving"]["requests"] == len(
            uniform_times(0.0, 6.0, 0.05))
        # the plane held its floor the whole run
        assert min(w.replicas for w in sched.plane.windows) >= 1

    def test_flash_pressure_preempts_training(self, serving_topology,
                                              config_factory):
        # calm -> burst at hour 1 that demands more SoCs than are idle
        times = np.concatenate([uniform_times(0.0, 6.0, 0.05),
                                uniform_times(1.0, 2.0, 2.5)])
        sched = make_coscheduler(serving_topology, config_factory,
                                 np.sort(times))
        record = sched.submit(make_job(min_socs=2, max_socs=8, epochs=8))
        report = sched.run()
        plane = sched.plane
        assert plane.preempted_socs > 0          # deficit path exercised
        assert record.resizes > 0 or record.preemptions > 0
        assert plane.scale_downs > 0             # released after the burst
        assert report.extra["serving"]["preempted_socs"] \
            == plane.preempted_socs
        # training survived the churn via warm checkpoints
        assert record.epochs_done == 8

    def test_job_queued_through_saturation_then_places(
            self, serving_topology, config_factory):
        """A full-saturation serving phase keeps the job queued (never
        an empty logical group); it places once SoCs free up."""
        times = uniform_times(0.0, 2.0, 4.0)     # needs > 8 replicas
        sched = make_coscheduler(serving_topology, config_factory, times,
                                 shed_after_s=30.0)
        record = sched.submit(make_job(min_socs=2, epochs=2))
        report = sched.run()
        # every SoC served during the burst
        assert sched.plane.summary()["max_replicas_seen"] == 8
        assert record.status == "completed"
        assert record.start_hour is not None
        assert record.start_hour >= 2.0          # placed only after the ebb
        assert record.queue_wait_hours >= 2.0
        assert report.rounds > 0


class TestModesAndValidation:
    def test_static_window_baseline(self, serving_topology,
                                    config_factory):
        arrivals = ArrivalProcess.from_times(
            uniform_times(0.0, 6.0, 0.1), horizon_hours=6.0)
        plane = ServingPlane(arrivals, slow_service(), slo_ms=60_000.0,
                             autoscale=False)
        plane.provision([6, 7], 0.0)
        sched = ServingCoScheduler(
            serving_topology, plane, quantum_hours=0.25,
            horizon_hours=6.0, elastic=False, window=(3.0, 3.0),
            config_factory=config_factory)
        record = sched.submit(make_job(epochs=2))
        report = sched.run()
        assert record.start_hour is not None
        assert record.start_hour >= 3.0          # only inside the window
        assert plane.held_socs == {6, 7}         # frozen pool
        assert report.extra["serving"]["scale_ups"] == 0

    def test_arrivals_must_cover_horizon(self, serving_topology,
                                         config_factory):
        arrivals = ArrivalProcess.from_times([0.5], horizon_hours=2.0)
        plane = ServingPlane(arrivals, slow_service())
        with pytest.raises(ValueError):
            ServingCoScheduler(serving_topology, plane,
                               horizon_hours=6.0,
                               config_factory=config_factory)


class TestDeterminism:
    def test_bit_identical_reruns(self, serving_topology, config_factory):
        def run():
            times = np.sort(np.concatenate([
                uniform_times(0.0, 6.0, 0.05),
                uniform_times(1.0, 2.0, 2.0)]))
            sched = make_coscheduler(serving_topology, config_factory,
                                     times)
            sched.submit(make_job(epochs=4))
            return sched.run().to_dict()
        assert run() == run()


class TestTelemetry:
    def test_traced_corun_reaches_analysis(self, serving_topology,
                                           config_factory):
        telemetry = Telemetry.active()
        telemetry.metrics.histogram_reservoir = 1024
        times = np.sort(np.concatenate([
            uniform_times(0.0, 6.0, 0.05),
            uniform_times(1.0, 1.5, 2.5)]))
        sched = make_coscheduler(serving_topology, config_factory, times,
                                 slo_ms=15_000.0, telemetry=telemetry)
        sched.submit(make_job(epochs=4))
        sched.run()
        records = telemetry.tracer.records
        assert any(r.kind == "serve" for r in records)
        assert any(r.kind == "scale" for r in records)
        report = analyze_records(records)
        assert report.serving is not None
        assert report.serving["windows"] == len(sched.plane.windows)
        assert report.serving["served"] == sched.plane.total_served
        hist = telemetry.metrics.histogram("serving.latency_ms")
        assert hist.count == sched.plane.total_served
        # violation windows surface as slo_violation anomalies
        violations = [a for a in report.anomalies
                      if a.kind == "slo_violation"]
        assert len(violations) == sched.plane.violation_windows
