"""Figure 3: busy-SoC ratio over a day on deployed SoC-Cluster servers.

Regenerates the diurnal series and the facts the paper reads off it:
<20% average utilisation, ~50x peak-to-trough gap, and a multi-hour
overnight idle window that bounds training-job length.
"""

from conftest import print_block

from repro.cluster import TidalTrace
from repro.harness import format_series, format_table


def test_fig03_busy_soc_ratio(benchmark):
    def compute():
        trace = TidalTrace(seed=0)
        hours, busy = trace.sample_day(points_per_hour=1)
        return trace, hours, busy

    trace, hours, busy = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_block(
        "Figure 3: busy SoCs (%) over one day",
        format_series("fig3", [int(h) for h in hours],
                      [round(100 * b, 1) for b in busy],
                      x_label="hour", y_label="busy_socs_pct"))
    window = trace.longest_idle_window(busy_threshold=0.25)
    print_block("Derived facts", format_table(
        ["metric", "value"],
        [["average utilisation", f"{trace.average_utilization():.1%}"],
         ["peak/trough ratio",
          f"{trace.busy_ratio(14) / trace.busy_ratio(4):.1f}x"],
         ["longest idle window (h)", f"{window.duration_hours:.1f}"]]))

    assert trace.average_utilization() < 0.30
    assert trace.busy_ratio(14) / trace.busy_ratio(4) > 20
    assert window.duration_hours >= 4.0
