"""Ring-AllReduce baseline following Horovod (Sergeev & Del Balso).

One ring over all SoCs, synchronising full FP32 gradients per batch.
Bandwidth-optimal in theory, but on the SoC-Cluster the per-node
startup cost and cross-PCB hops make its latency grow linearly with
the SoC count (Observation #2, Figure 4b).
"""

from __future__ import annotations

from .base import CostModel
from .ssgd import SsgdStrategy

__all__ = ["RingAllReduce"]


class RingAllReduce(SsgdStrategy):
    name = "ring"

    def step_sync_seconds(self, cost: CostModel,
                          nbytes: float | None = None,
                          num_tensors: float | None = None) -> float:
        socs = list(range(cost.topology.num_socs))
        payload = cost.grad_bytes if nbytes is None else nbytes
        return cost.fabric.ring_allreduce_time(socs, payload,
                                               num_tensors=num_tensors)
