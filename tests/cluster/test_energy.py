"""Energy model accounting."""

import pytest

from repro.cluster import EnergyModel, EnergyReport
from repro.cluster.spec import GPU_REGISTRY, SOC_REGISTRY


def model():
    return EnergyModel(SOC_REGISTRY["sd865"])


class TestCharges:
    def test_compute_charges_cpu_watts(self):
        m = model()
        m.charge_compute(10.0, num_socs=2, cpu_fraction=1.0)
        soc = SOC_REGISTRY["sd865"]
        assert m.report.cpu_j == pytest.approx(20 * soc.cpu.busy_watts)
        assert m.report.npu_j == 0.0
        assert m.report.idle_j == pytest.approx(20 * soc.idle_watts)

    def test_compute_split_between_processors(self):
        m = model()
        m.charge_compute(10.0, num_socs=1, cpu_fraction=0.4)
        soc = SOC_REGISTRY["sd865"]
        assert m.report.cpu_j == pytest.approx(4 * soc.cpu.busy_watts)
        assert m.report.npu_j == pytest.approx(6 * soc.npu.busy_watts)

    def test_charge_mixed_busy_times(self):
        m = model()
        m.charge_mixed(cpu_busy_s=3.0, npu_busy_s=1.0, wall_s=3.0, num_socs=2)
        soc = SOC_REGISTRY["sd865"]
        assert m.report.cpu_j == pytest.approx(6 * soc.cpu.busy_watts)
        assert m.report.npu_j == pytest.approx(2 * soc.npu.busy_watts)
        assert m.report.idle_j == pytest.approx(6 * soc.idle_watts)

    def test_network_idle_toggle(self):
        m = model()
        m.charge_network(5.0, num_socs=1, include_idle=False)
        assert m.report.idle_j == 0.0
        assert m.report.network_j > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            model().charge_compute(-1.0, 1)
        with pytest.raises(ValueError):
            model().charge_network(-1.0, 1)
        with pytest.raises(ValueError):
            model().charge_idle(-1.0, 1)

    def test_npu_cheaper_than_cpu(self):
        """The core energy claim: INT8 on NPU burns less than FP32 on CPU."""
        cpu = model()
        cpu.charge_compute(10.0, 1, cpu_fraction=1.0)
        npu = model()
        npu.charge_compute(10.0, 1, cpu_fraction=0.0)
        assert npu.report.total_j < cpu.report.total_j


class TestReport:
    def test_total_sums_components(self):
        r = EnergyReport(cpu_j=1, npu_j=2, network_j=3, idle_j=4)
        assert r.total_j == 10
        assert r.total_kj == pytest.approx(0.01)

    def test_add(self):
        a = EnergyReport(cpu_j=1)
        b = EnergyReport(npu_j=2)
        assert (a + b).total_j == 3


class TestGpu:
    def test_gpu_energy(self):
        r = EnergyModel.gpu_energy(GPU_REGISTRY["v100"], 10.0)
        assert r.total_j == pytest.approx(3000.0)

    def test_v100_draws_more_than_60_socs_idle(self):
        soc = SOC_REGISTRY["sd865"]
        assert GPU_REGISTRY["v100"].busy_watts > 60 * soc.idle_watts
