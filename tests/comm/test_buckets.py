"""Bucket plans: partition invariants + bit-identical per-bucket merge.

The whole fusion subsystem rests on two properties pinned here:

1. *Conservation*: every plan tiles ``[0, param_total)`` exactly, so
   per-bucket byte/tensor shares always sum to the whole-model totals —
   the :class:`BucketPlan` constructor raises on any drift.
2. *Bit-exactness*: :func:`bucketed_average_states` equals the fused
   whole-model ``average_states`` to the last bit for every bucket
   geometry, because both run the same elementwise kernel over the same
   storage.
"""

import numpy as np
import pytest

from repro.comm import (BACKWARD_START_FRACTION, BucketPlan, GradientBucket,
                        average_states, bucketed_average_states)
from repro.nn.models.registry import build_model
from repro.telemetry import MetricsRegistry


def make_layout(width=0.15):
    model = build_model("vgg11", seed=0, num_classes=10, in_channels=3,
                        image_size=16, width=width)
    return model.flatten_parameters().layout


def sweep_plans(layout):
    total_bytes = 4.0 * layout.param_total
    return {
        "one": BucketPlan.from_layout(layout, total_bytes=total_bytes),
        "half": BucketPlan.from_layout(layout,
                                       threshold_bytes=total_bytes / 2,
                                       total_bytes=total_bytes),
        "eighth": BucketPlan.from_layout(layout,
                                         threshold_bytes=total_bytes / 8,
                                         total_bytes=total_bytes),
        "ops1": BucketPlan.from_layout(layout, max_ops=1,
                                       total_bytes=total_bytes),
        "ops3": BucketPlan.from_layout(layout, max_ops=3,
                                       total_bytes=total_bytes),
    }


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
def test_plans_tile_param_region_in_emission_order():
    layout = make_layout()
    for name, plan in sweep_plans(layout).items():
        buckets = plan.buckets
        # emission order: bucket 0 is the END of the flat region
        assert buckets[0].stop == layout.param_total, name
        assert buckets[-1].start == 0, name
        for prev, nxt in zip(buckets, buckets[1:]):
            assert nxt.stop == prev.start, name
        assert sum(b.num_elements for b in buckets) == layout.param_total
        assert sum(b.num_tensors for b in buckets) == layout.num_params


def test_no_knobs_gives_single_bucket_and_max_ops_one_gives_per_tensor():
    layout = make_layout()
    plans = sweep_plans(layout)
    assert plans["one"].num_buckets == 1
    assert plans["ops1"].num_buckets == layout.num_params
    assert all(b.num_tensors == 1 for b in plans["ops1"].buckets)
    # a threshold larger than the model also degrades to one bucket
    huge = BucketPlan.from_layout(layout,
                                  threshold_bytes=1e18,
                                  total_bytes=4.0 * layout.param_total)
    assert huge.num_buckets == 1


def test_threshold_scales_with_simulated_payload():
    """The MB knob means *paper-scale* megabytes: the same layout cut at
    the same threshold yields more buckets when total_bytes grows."""
    layout = make_layout()
    threshold = 4.0 * layout.param_total / 4      # quarter of real size
    small = BucketPlan.from_layout(layout, threshold_bytes=threshold,
                                   total_bytes=4.0 * layout.param_total)
    large = BucketPlan.from_layout(layout, threshold_bytes=threshold,
                                   total_bytes=64.0 * layout.param_total)
    assert large.num_buckets > small.num_buckets


def test_constructor_rejects_gap_overlap_and_tensor_drift():
    layout = make_layout()
    total = layout.param_total
    n = layout.num_params
    mid = layout.offsets[n // 2]
    good = [GradientBucket(0, mid, total, n - n // 2),
            GradientBucket(1, 0, mid, n // 2)]
    BucketPlan(layout, good)  # sanity: the partition itself is legal

    with pytest.raises(AssertionError, match="must tile"):
        BucketPlan(layout, [GradientBucket(0, mid, total - 1, n - n // 2),
                            GradientBucket(1, 0, mid, n // 2)])
    with pytest.raises(AssertionError, match="not fully covered"):
        BucketPlan(layout, [GradientBucket(0, mid, total, n)])
    with pytest.raises(AssertionError, match="tensors"):
        BucketPlan(layout, [GradientBucket(0, mid, total, n - n // 2),
                            GradientBucket(1, 0, mid, n // 2 + 1)])


def test_bucket_validation():
    with pytest.raises(ValueError):
        GradientBucket(0, 5, 5, 1)          # empty
    with pytest.raises(ValueError):
        GradientBucket(0, 7, 5, 1)          # inverted
    with pytest.raises(ValueError):
        GradientBucket(0, 0, 5, 0)          # no tensors
    with pytest.raises(ValueError):
        BucketPlan.from_layout(make_layout(), threshold_bytes=0.0)
    with pytest.raises(ValueError):
        BucketPlan.from_layout(make_layout(), max_ops=0)


# ----------------------------------------------------------------------
# Shares and readiness
# ----------------------------------------------------------------------
def test_sim_shares_conserve_totals_and_pin_whole_region():
    layout = make_layout()
    for name, plan in sweep_plans(layout).items():
        payload = 96.8e6                      # paper-scale FP32 bytes
        shares = plan.sim_bytes(payload)
        assert len(shares) == plan.num_buckets
        assert sum(shares) == pytest.approx(payload, rel=1e-12), name
        tensors = plan.sim_tensors(30)
        assert sum(tensors) == pytest.approx(30.0, rel=1e-12), name
    # 1-bucket plans return the totals VERBATIM (bit-exact passthrough)
    one = sweep_plans(layout)["one"]
    assert one.sim_bytes(96.8e6) == [96.8e6]
    assert one.sim_tensors(30) == [30.0]


def test_ready_fractions_monotone_and_final_bucket_exactly_one():
    layout = make_layout()
    for name, plan in sweep_plans(layout).items():
        ready = plan.ready_fractions()
        assert all(f >= BACKWARD_START_FRACTION for f in ready), name
        # emission order == time order: later buckets never ready earlier
        assert ready == sorted(ready), name
        # the closing bucket is ready exactly at the end of compute —
        # not 0.9999999 — so one-bucket plans overlap nothing
        assert ready[-1] == 1.0, name


def test_segments_cover_layout_including_buffers():
    layout = make_layout()
    plan = sweep_plans(layout)["eighth"]
    segs = plan.segments(include_buffers=True)
    cursor = 0
    for start, stop in segs:
        assert start == cursor
        cursor = stop
    assert cursor == layout.total
    param_only = plan.segments(include_buffers=False)
    assert param_only[-1][1] == layout.param_total


# ----------------------------------------------------------------------
# Per-bucket averaging == whole-model averaging, to the last bit
# ----------------------------------------------------------------------
def replica_states(num=4, seed=0):
    model = build_model("vgg11", seed=seed, num_classes=10, in_channels=3,
                        image_size=16, width=0.15)
    model.flatten_parameters()
    rng = np.random.default_rng(seed + 1)
    states = []
    for _ in range(num):
        state = model.state_dict()
        state.flat += rng.standard_normal(
            state.flat.shape).astype(np.float32) * 0.01
        states.append(state)
    return states


@pytest.mark.parametrize("name", ["one", "half", "eighth", "ops1", "ops3"])
def test_bucketed_average_bit_identical(name):
    states = replica_states()
    plan = sweep_plans(states[0].layout)[name]
    reference = average_states(states)
    bucketed = bucketed_average_states(states, plan)
    assert list(reference) == list(bucketed)
    for key in reference:
        assert np.array_equal(reference[key], bucketed[key]), key
    # the fused flat storages are identical too (incl. buffer region)
    assert np.array_equal(reference.flat, bucketed.flat)


def test_bucketed_average_metrics_match_fused_path():
    states = replica_states()
    plan = sweep_plans(states[0].layout)["eighth"]
    m_ref, m_bkt = MetricsRegistry(), MetricsRegistry()
    average_states(states, metrics=m_ref)
    bucketed_average_states(states, plan, metrics=m_bkt)
    ref = {(r["name"], tuple(sorted(r["labels"].items()))): r.get("value")
           for r in m_ref.collect()}
    bkt = {(r["name"], tuple(sorted(r["labels"].items()))): r.get("value")
           for r in m_bkt.collect()}
    assert ref == bkt


def test_bucketed_average_falls_back_without_shared_layout():
    states = replica_states()
    plan = sweep_plans(states[0].layout)["half"]
    reference = average_states(states)
    # no plan -> fallback
    no_plan = bucketed_average_states(states, None)
    # foreign layout (different width => different interned FlatLayout)
    other = make_layout(width=0.25)
    assert other is not states[0].layout
    foreign = bucketed_average_states(
        states, BucketPlan.from_layout(other))
    for merged in (no_plan, foreign):
        for key in reference:
            assert np.array_equal(reference[key], merged[key]), key
    with pytest.raises(ValueError):
        bucketed_average_states([], plan)
