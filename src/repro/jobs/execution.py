"""One admitted job's training state under elastic scheduling.

A :class:`JobExecution` owns everything a running job carries between
scheduler rounds: its warm :class:`~repro.core.mixed_precision.GroupMixedTrainer`
replicas, the integrity-greedy mapping of its logical groups onto the
SoCs it currently holds, the CG communication plan, a per-job
:class:`~repro.distributed.base.CostModel` clock, and the latest
checkpoint.  The scheduler drives it through a small lifecycle:

- :meth:`place` — gang-place onto an allocation (initial dispatch, or a
  warm resume from the latest checkpoint after a preemption);
- :meth:`resize` — elastic grow/shrink: Eq. 1 group sizing re-runs via
  :func:`~repro.core.grouping.allocation_group_count`, the mapping and
  CG plan are rebuilt over the new SoC set, and the trainer list is
  reformed through the same warm rollback path fault recovery uses
  (:func:`~repro.core.socflow.reform_groups`), priced as a recovery
  step;
- :meth:`run_epoch` — one real-math epoch over the logical groups plus
  the simulated-clock charge for the paper-scale cluster;
- :meth:`preempt` — checkpoint and release all SoCs.

All real math is deterministic in ``(job spec, seed)``: the epoch
shuffle RNG, model init seeds and merge order never depend on
scheduling wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.buckets import bucketed_average_states
from ..core.grouping import allocation_group_count
from ..core.mapping import MappingResult, integrity_greedy_mapping
from ..core.mixed_precision import GroupMixedTrainer
from ..core.planning import CommunicationPlan
from ..core.scheduler import GlobalScheduler
from ..core.socflow import reform_groups
from ..distributed.base import (OVERLAP_FRACTION, CostModel, RunConfig,
                                evaluate_accuracy)
from ..quant.int8 import QuantConfig
from ..quant.mixed import MixedPrecisionController
from .spec import TrainingJob

__all__ = ["JobCheckpoint", "JobExecution"]


@dataclass(frozen=True)
class JobCheckpoint:
    """The state a preempted job resumes from (latest merged epoch)."""

    state: dict
    epoch: int
    accuracy_history: tuple
    alpha: float


class JobExecution:
    """Warm training state + per-job simulated clock for one job."""

    def __init__(self, job: TrainingJob, config: RunConfig,
                 quant: QuantConfig | None = None):
        if config.telemetry is not None:
            raise ValueError(
                "job configs must not carry telemetry: the scheduler owns "
                "the shared timeline (per-job clocks would rebind it)")
        self.job = job
        self.config = config
        self.quant = quant or QuantConfig()
        self.cost = CostModel(config)
        self.controller = MixedPrecisionController(self.cost.t_cpu_sample,
                                                   self.cost.t_npu_sample)
        self.scheduler = GlobalScheduler(config.topology)
        self._rng = np.random.default_rng(config.seed)
        self.allocated: list[int] = []
        self.mapping: MappingResult | None = None
        self.plan: CommunicationPlan | None = None
        self._groups: list[GroupMixedTrainer] = []
        self._executor = None
        self.epochs_done = 0
        self.history: list[float] = []
        self.resizes = 0
        self.preemptions = 0
        self.last_checkpoint: JobCheckpoint | None = None

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.epochs_done >= self.job.epochs

    @property
    def running(self) -> bool:
        return bool(self.allocated)

    @property
    def num_groups(self) -> int:
        return self.mapping.num_groups if self.mapping is not None else 0

    @property
    def model_bytes(self) -> float:
        return self.cost.grad_bytes

    @property
    def final_accuracy(self) -> float:
        return self.history[-1] if self.history else 0.0

    # ------------------------------------------------------------------
    # Placement lifecycle
    # ------------------------------------------------------------------
    def _plan_for(self, socs: list[int]) -> int:
        if len(socs) < self.job.min_socs:
            raise ValueError(
                f"job {self.job.id!r}: allocation of {len(socs)} SoCs "
                f"violates min_socs={self.job.min_socs}")
        num_groups = allocation_group_count(
            len(socs), self.job.target_group_size)
        self.mapping = integrity_greedy_mapping(
            self.config.topology, num_groups, alive=set(socs))
        self.plan = CommunicationPlan.from_mapping(self.mapping)
        return num_groups

    def place(self, socs: list[int]) -> float:
        """Gang-place onto ``socs``; returns the charged seconds.

        First placement pays the control-board dispatch (model + data
        shards broadcast to exactly the allocated SoCs); a resume after
        preemption pays the recovery price and reloads the latest
        checkpoint into freshly reformed warm groups.
        """
        resumed = self.last_checkpoint is not None
        num_groups = self._plan_for(socs)
        self.allocated = sorted(socs)
        if self._groups:
            state = self.last_checkpoint.state
            self._groups = reform_groups(self.config, self.controller,
                                         self.quant, self._groups,
                                         num_groups, state)
        else:
            self._groups = self._build_groups(num_groups)
            if resumed:                                 # pragma: no cover
                for group in self._groups:
                    group.load_state(self.last_checkpoint.state)
        if resumed:
            seconds = self.scheduler.recovery_seconds(
                self.model_bytes, self.cost.fabric, self.allocated)
            self.cost.clock.advance(seconds, "recovery")
        else:
            data_bytes = (self.config.sim_samples_per_epoch
                          * float(np.prod(self.config.task.input_shape))
                          / len(socs))
            seconds = self.scheduler.dispatch_seconds(
                self.cost.fabric, self.model_bytes, data_bytes,
                socs=self.allocated)
            self.cost.clock.advance(seconds, "sync")
        self.cost.energy.charge_network(seconds, len(socs))
        return seconds

    def resize(self, socs: list[int]) -> float:
        """Elastically grow/shrink to ``socs``; returns recovery seconds.

        Eq. 1 group sizing, the integrity-greedy mapping and CG
        planning all re-run on the new allocation; survivors keep their
        warm optimizer state and everyone reloads the last merged
        weights (a no-op for members that already hold them).
        """
        if not self._groups:
            raise RuntimeError(f"job {self.job.id!r} is not running")
        state = self._groups[0].state_dict()
        num_groups = self._plan_for(socs)
        self.allocated = sorted(socs)
        self._groups = reform_groups(self.config, self.controller,
                                     self.quant, self._groups, num_groups,
                                     state)
        seconds = self.scheduler.recovery_seconds(
            self.model_bytes, self.cost.fabric, self.allocated)
        self.cost.clock.advance(seconds, "recovery")
        self.cost.energy.charge_network(seconds, len(socs))
        self.resizes += 1
        return seconds

    def preempt(self) -> float:
        """Checkpoint and release every SoC; returns the charged seconds."""
        seconds = GlobalScheduler.checkpoint_seconds(self.model_bytes)
        self.cost.clock.advance(seconds, "sync")
        self.preemptions += 1
        self.allocated = []
        self.mapping = None
        self.plan = None
        self._close_executor()
        return seconds

    def close(self) -> None:
        self._close_executor()

    def _close_executor(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _build_groups(self, num_groups: int) -> list[GroupMixedTrainer]:
        base = GroupMixedTrainer(self.config, self.controller, self.quant,
                                 seed_offset=0, mixed=self.job.mixed)
        groups = [base]
        init_state = base.state_dict()
        for g in range(1, num_groups):
            trainer = GroupMixedTrainer(self.config, self.controller,
                                        self.quant, seed_offset=g,
                                        mixed=base.mixed)
            trainer.load_state(init_state)
            groups.append(trainer)
        return groups

    def _executor_for_epoch(self):
        """A per-job LG worker pool when ``config.workers > 1``."""
        if getattr(self.config, "workers", 1) <= 1:
            return None
        if self._executor is None:
            from ..parallel import LgExecutor
            executor = LgExecutor(
                self.config, quant=self.quant, mixed=self.job.mixed,
                int8_only=False, t_cpu=self.cost.t_cpu_sample,
                t_npu=self.cost.t_npu_sample, telemetry=None,
                workers=self.config.workers)
            if not executor.parallel:                   # pragma: no cover
                executor.close()
                return None
            self._executor = executor
        return self._executor

    def run_epoch(self) -> float:
        """One epoch of real math + simulated charge; returns seconds."""
        if not self._groups or self.mapping is None:
            raise RuntimeError(f"job {self.job.id!r} is not placed")
        groups = self._groups
        task = self.config.task
        n = len(groups)
        order = self._rng.permutation(len(task.x_train))
        shards = np.array_split(order, n)
        group_batch = min(self.config.batch_size,
                          min(len(s) for s in shards))
        steps = max(1, min(len(s) for s in shards) // group_batch)
        executor = self._executor_for_epoch()
        if executor is not None and n > 1:
            executor.run_epoch(groups, shards, steps, group_batch)
        else:
            for step in range(steps):
                for group, shard in zip(groups, shards):
                    idx = shard[step * group_batch:(step + 1) * group_batch]
                    group.train_batch(task.x_train[idx], task.y_train[idx])
        merged = bucketed_average_states(
            [g.state_dict() for g in groups],
            self.cost.bucket_plan(groups[0].fp32.flatten_parameters().layout))
        for group in groups:
            group.load_state(merged)
        if self.job.mixed:
            groups[0].update_alpha(task.x_test[:128])
        accuracy = evaluate_accuracy(groups[0].fp32, task.x_test,
                                     task.y_test)
        self.history.append(accuracy)
        self.epochs_done += 1
        self.last_checkpoint = JobCheckpoint(
            state=merged, epoch=self.epochs_done,
            accuracy_history=tuple(self.history),
            alpha=self.controller.alpha)
        return self._charge_epoch()

    def _charge_epoch(self) -> float:
        """Advance the job's simulated clock by one paper-scale epoch.

        The same cost structure as SoCFlow's epoch charge: per-step
        compute on the allocated SoCs, the planned CG sync schedule
        hidden under compute, the optimizer update, then the epoch tail
        (one unhidden intra-group sync + the leader ring).
        """
        config, cost = self.config, self.cost
        mapping, plan = self.mapping, self.plan
        n = mapping.num_groups
        num_active = sum(len(socs) for socs in mapping.groups)
        per_soc_samples = config.sim_global_batch * n / num_active
        if self.job.mixed:
            share = self.controller.cpu_share
            cpu_n = share * per_soc_samples
            npu_n = per_soc_samples - cpu_n
        else:
            cpu_n, npu_n = per_soc_samples, 0.0
        compute_s = max(cpu_n * cost.t_cpu_sample,
                        npu_n * cost.t_npu_sample)

        payload = cost.grad_bytes
        cg_times = plan.planned_sync_seconds(cost.fabric, payload)
        raw = sum(cg_times)
        hidden = min(raw, compute_s if n > 1
                     else OVERLAP_FRACTION * compute_s)
        bucket_plan = cost.bucket_plan(
            self._groups[0].fp32.flatten_parameters().layout)
        if bucket_plan is not None:
            # Bucket-granular CG pipelining, same as SoCFlow's epoch
            # charge: each bucket runs the CG sequence on its payload
            # slice as backward emits it.
            bucket_times = [
                sum(plan.planned_sync_seconds(cost.fabric, b_bytes,
                                              num_tensors=b_tensors))
                for b_bytes, b_tensors in zip(
                    bucket_plan.sim_bytes(payload),
                    bucket_plan.sim_tensors(cost.profile.num_tensors))]
            sync_s, hidden, _ = cost.overlapped_sync(
                compute_s, bucket_plan, bucket_times, raw, hidden)
        else:
            sync_s = raw - hidden
        update_s = cost.update_seconds()
        steps = max(1, -(-config.sim_samples_per_epoch
                         // (n * config.sim_global_batch)))

        t0 = cost.clock.now
        cost.clock.advance(steps * compute_s, "compute")
        cost.clock.advance(steps * sync_s, "sync")
        cost.clock.attribute(steps * hidden, "sync")
        cost.clock.advance(steps * update_s, "update")
        cost.energy.charge_mixed(steps * cpu_n * cost.t_cpu_sample,
                                 steps * npu_n * cost.t_npu_sample,
                                 steps * compute_s, num_active)
        cost.energy.charge_network(steps * sync_s, num_active)
        cost.energy.charge_network(steps * hidden, num_active,
                                   include_idle=False)
        cost.energy.charge_compute(steps * update_s, num_active, 1.0)

        tail = plan.planned_sync_seconds(cost.fabric, payload)
        leaders = [socs[0] for socs in mapping.groups]
        inter = (cost.fabric.ring_allreduce_time(leaders, payload)
                 if len(leaders) > 1 else 0.0)
        cost.charge_epoch_sync(sum(tail) + inter, num_active)
        return cost.clock.now - t0
