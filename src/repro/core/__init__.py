"""SoCFlow itself — the paper's primary contribution (§3).

- :mod:`grouping` — logical-group count selection: the Eq. 1 epoch-time
  model plus the first-epoch-accuracy heuristic (Figure 6).
- :mod:`mapping` — integrity-greedy logical→physical mapping (§3.1,
  Theorems 1–2).
- :mod:`planning` — communication-group division (bipartite colouring)
  and the pipelined sync schedule (Figure 7).
- :mod:`mixed_precision` — per-group CPU(FP32)+NPU(INT8) execution with
  the alpha/beta-controlled batch split (§3.2).
- :mod:`scheduler` — global scheduler: checkpointing, preemption by
  user workloads, underclocking-aware rebalancing (§4.1).
- :mod:`socflow` — the end-to-end training strategy with ablation
  switches (Figure 13).
"""

from .grouping import (GroupSizeSelector, allocation_group_count,
                       epoch_time_model, first_epoch_accuracy_profile,
                       survivor_group_count)
from .mapping import (MappingResult, integrity_greedy_mapping, naive_mapping,
                      nic_conflict_count, contention_degree)
from .planning import CommunicationPlan, build_conflict_graph, divide_into_cgs
from .checkpoint import TrainingCheckpoint
from .mixed_precision import GroupMixedTrainer
from .federation import CrossSiteConfig, CrossSiteSoCFlow
from .profiler import ProcessorProfiler, ProfileResult
from .scheduler import GlobalScheduler, PreemptionEvent, UnderclockEvent
from .socflow import SoCFlow, SoCFlowOptions, build_socflow, reform_groups

__all__ = [
    "GroupSizeSelector", "epoch_time_model", "first_epoch_accuracy_profile",
    "survivor_group_count", "allocation_group_count", "reform_groups",
    "MappingResult", "integrity_greedy_mapping", "naive_mapping",
    "nic_conflict_count", "contention_degree",
    "CommunicationPlan", "build_conflict_graph", "divide_into_cgs",
    "TrainingCheckpoint", "ProcessorProfiler", "ProfileResult",
    "CrossSiteConfig", "CrossSiteSoCFlow",
    "GroupMixedTrainer", "GlobalScheduler", "PreemptionEvent",
    "UnderclockEvent", "SoCFlow", "SoCFlowOptions", "build_socflow",
]
