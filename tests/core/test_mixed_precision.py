"""GroupMixedTrainer: dual-path steps and the on-chip merge."""

import numpy as np
import pytest

from repro.distributed.base import CostModel
from repro.core import GroupMixedTrainer
from repro.quant import QuantConfig
from repro.quant.mixed import MixedPrecisionController


def make_trainer(quick_config, mixed=True):
    cost = CostModel(quick_config)
    controller = MixedPrecisionController(cost.t_cpu_sample,
                                          cost.t_npu_sample)
    return GroupMixedTrainer(quick_config, controller, QuantConfig(),
                             seed_offset=0, mixed=mixed), controller


class TestConstruction:
    def test_int8_replica_starts_identical(self, quick_config):
        trainer, _ = make_trainer(quick_config)
        fp = trainer.fp32.state_dict()
        i8 = trainer.int8.model.state_dict()
        for key in fp:
            np.testing.assert_array_equal(fp[key], i8[key])

    def test_unmixed_has_no_int8(self, quick_config):
        trainer, _ = make_trainer(quick_config, mixed=False)
        assert trainer.int8 is None


class TestTrainBatch:
    def test_models_stay_synchronized_after_step(self, quick_config):
        trainer, _ = make_trainer(quick_config)
        task = quick_config.task
        trainer.train_batch(task.x_train[:16], task.y_train[:16])
        fp = trainer.fp32.state_dict()
        i8 = trainer.int8.model.state_dict()
        for key in fp:
            np.testing.assert_array_equal(fp[key], i8[key])

    def test_weights_move(self, quick_config):
        trainer, _ = make_trainer(quick_config)
        before = trainer.state_dict()
        task = quick_config.task
        trainer.train_batch(task.x_train[:16], task.y_train[:16])
        moved = any(not np.allclose(before[k], v)
                    for k, v in trainer.state_dict().items())
        assert moved

    def test_unmixed_step_is_plain_fp32(self, quick_config):
        trainer, _ = make_trainer(quick_config, mixed=False)
        task = quick_config.task
        trainer.train_batch(task.x_train[:8], task.y_train[:8])  # no crash


class TestAlpha:
    def test_update_alpha_reflects_agreement(self, quick_config):
        trainer, controller = make_trainer(quick_config)
        alpha = trainer.update_alpha(quick_config.task.x_test[:32])
        # freshly merged identical weights -> the only gap is quantisation
        assert 0.5 < alpha <= 1.0

    def test_unmixed_alpha_untouched(self, quick_config):
        trainer, controller = make_trainer(quick_config, mixed=False)
        before = controller.alpha
        assert trainer.update_alpha(quick_config.task.x_test[:8]) == before


class TestStateRoundtrip:
    def test_load_state_syncs_both(self, quick_config):
        trainer, _ = make_trainer(quick_config)
        state = trainer.state_dict()
        for key in state:
            state[key] = state[key] + 1.0
        trainer.load_state(state)
        np.testing.assert_array_equal(
            trainer.fp32.state_dict()[next(iter(state))],
            trainer.int8.model.state_dict()[next(iter(state))])

    def test_set_lr_propagates(self, quick_config):
        trainer, _ = make_trainer(quick_config)
        trainer.set_lr(0.123)
        assert trainer.fp32_opt.lr == 0.123
        assert trainer.int8.lr == 0.123
