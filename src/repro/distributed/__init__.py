"""Distributed training strategies (the paper's six baselines).

Each strategy executes the *real* learning algorithm on the synthetic
task (weights genuinely move; gradients are genuinely averaged,
sparsified, or delayed) while a calibrated cost model advances a
simulated clock for compute, synchronisation and update phases.

Strategies
----------
- :class:`ParameterServer` — FP32 centralised aggregation (Li et al.).
- :class:`RingAllReduce` — Horovod-style ring (Sergeev & Del Balso).
- :class:`HiPress` — DGC-compressed ring synchronisation (Bai et al.).
- :class:`TwoDParallel` — pipeline-within-group, ring-across (Optimus-CC).
- :class:`FedAvg` — per-epoch federated averaging (McMahan et al.).
- :class:`TreeFedAvg` — hierarchical tree-aggregated FedAvg.
- :class:`LocalSingleSoC` — the single-SoC reference ("Local" in Table 3).
"""

from .base import (CostModel, RunConfig, Strategy, StrategyResult,
                   evaluate_accuracy, make_model)
from .local import LocalSingleSoC
from .parameter_server import ParameterServer
from .ring_allreduce import RingAllReduce
from .hipress import HiPress
from .two_d_parallel import TwoDParallel
from .ssp import StaleSynchronous
from .fedavg import FedAvg
from .tree_fedavg import TreeFedAvg
from .registry import STRATEGY_REGISTRY, build_strategy

__all__ = [
    "RunConfig", "Strategy", "StrategyResult", "CostModel",
    "evaluate_accuracy", "make_model",
    "LocalSingleSoC", "ParameterServer", "RingAllReduce", "HiPress",
    "TwoDParallel", "FedAvg", "TreeFedAvg", "StaleSynchronous",
    "STRATEGY_REGISTRY", "build_strategy",
]
