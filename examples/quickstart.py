#!/usr/bin/env python
"""Quickstart: train a model on a simulated SoC-Cluster with SoCFlow.

Builds a CIFAR-10-like task, points SoCFlow at a 32-SoC server, trains
for a few epochs, and prints accuracy, simulated wall time, energy and
the compute/sync/update breakdown — then runs plain Ring-AllReduce on
the same job for comparison.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterTopology
from repro.core import SoCFlow, SoCFlowOptions
from repro.data import load_dataset
from repro.distributed import RunConfig, build_strategy


def main() -> None:
    # 1. A dataset.  With no network access this generates a synthetic
    #    stand-in with CIFAR-10's shape (3 channels, 10 classes); the
    #    `scale` and `image_size` knobs keep the pure-numpy run fast.
    task = load_dataset("cifar10", scale=0.06, image_size=16, seed=0)

    # 2. A job description: the model, the real training knobs, and the
    #    simulated SoC-Cluster (32 of the server's 60 Snapdragon 865s).
    config = RunConfig(
        task=task,
        model_name="vgg11",
        width=0.25,              # channel multiplier for the quick run
        batch_size=16,           # per logical group (the paper's BS_g)
        lr=0.05,
        momentum=0.9,
        max_epochs=6,
        topology=ClusterTopology(num_socs=32),
        sim_samples_per_epoch=50_000,   # paper-scale epoch for the clock
        sim_global_batch=64,
        num_groups=8,
    )

    # 3. Train with SoCFlow: group-wise parallelism with delayed
    #    aggregation + CPU/NPU mixed-precision (all defaults on).
    result = SoCFlow(SoCFlowOptions()).train(config)

    print("=== SoCFlow ===")
    print(f"accuracy per epoch : "
          f"{[f'{a:.2f}' for a in result.accuracy_history]}")
    print(f"simulated time     : {result.sim_time_hours:.3f} h")
    print(f"energy             : {result.energy.total_kj:.0f} kJ")
    shares = result.phase_shares()
    print("busy-time shares   : "
          + ", ".join(f"{k}={v:.0%}" for k, v in shares.items()))
    print(f"logical groups     : {result.extra['num_groups']}, "
          f"communication groups: {result.extra['num_cgs']}")

    # 4. The same job on the classic Ring-AllReduce baseline.
    ring = build_strategy("ring").train(config)
    print("\n=== Ring-AllReduce (baseline) ===")
    print(f"accuracy per epoch : "
          f"{[f'{a:.2f}' for a in ring.accuracy_history]}")
    print(f"simulated time     : {ring.sim_time_hours:.3f} h")
    print(f"energy             : {ring.energy.total_kj:.0f} kJ")

    print(f"\nSoCFlow speedup vs RING: "
          f"{ring.sim_time_s / result.sim_time_s:.1f}x, "
          f"energy saving: "
          f"{ring.energy.total_j / result.energy.total_j:.1f}x")


if __name__ == "__main__":
    main()
