"""Trace analysis engine: critical paths, stragglers, diffs, health.

Synthetic traces pin the algorithm (attribution precedence, off-path
accounting, window segmentation); the end-to-end class at the bottom
runs a real traced SoCFlow fault run and checks the acceptance
contract: every epoch ≥99% accounted, and same seed ⇒ byte-identical
rendered reports.
"""

import gzip
import json

import pytest

from repro.cluster import FaultSchedule, NicDegradation, SoCCrash
from repro.core import SoCFlow, SoCFlowOptions
from repro.harness import make_run_config
from repro.telemetry import (HealthMonitor, MetricsRegistry, Telemetry,
                             Tracer, analyze_records, diff_reports,
                             render_diff, render_report)
from repro.telemetry.analysis import render_live_summary


def _step(tracer, t0, compute_s=6.0, sync_s=3.0, socs=(0, 1), cg=0,
          hidden=1.0, slow=None):
    """One lock-step compute + allreduce + update pattern (socflow-ish)."""
    for soc in socs:
        dur = compute_s * (1.5 if soc == slow else 1.0)
        tracer.span("compute", t0, dur, soc=soc, pcb=0, lg=0)
    start = t0 + compute_s * (1.5 if slow is not None else 1.0)
    tracer.span("allreduce", start, sync_s, cg=cg, hidden_s=hidden)
    tracer.span("update", start + sync_s, 0.5)
    return start + sync_s + 0.5


def _epoch(tracer, epoch, t0, **step_kw):
    end = _step(tracer, t0, **step_kw)
    tracer.span("epoch", t0, end - t0, name=f"epoch {epoch}", epoch=epoch,
                accuracy=0.5 + 0.05 * epoch)
    return end


class TestCriticalPath:
    def test_full_tiling_and_attribution(self):
        tracer = Tracer()
        end = _epoch(tracer, 0, 0.0)
        report = analyze_records(tracer.records)
        (window,) = report.windows
        assert window.label == "epoch 0"
        assert window.seconds == pytest.approx(end)
        # compute + allreduce + update tile the whole window
        assert window.coverage == pytest.approx(1.0)
        assert window.phase_seconds == pytest.approx(
            {"compute": 6.0, "allreduce": 3.0, "update": 0.5})
        kinds = [segment.kind for segment in window.path]
        assert kinds == ["compute", "allreduce", "update"]
        # the compute stretch is covered by both SoCs in lock-step
        assert window.path[0].width == 2
        assert window.bottleneck == ("compute", "soc 0 lg0 x2")

    def test_higher_priority_kind_wins_overlap(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 10.0, soc=0)
        tracer.span("recovery", 4.0, 2.0, name="recovery@0")
        report = analyze_records(tracer.records)
        (window,) = report.windows
        assert window.phase_seconds == pytest.approx(
            {"compute": 8.0, "recovery": 2.0})
        assert [s.kind for s in window.path] == \
            ["compute", "recovery", "compute"]

    def test_bucket_and_nic_spans_stay_off_path(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 6.0, soc=0)
        # overlapped bucket collectives + a NIC wait priced inside them
        tracer.span("bucket_sync", 1.0, 2.0, bucket=0, hidden_s=2.0)
        tracer.span("nic_wait", 1.0, 0.5, pcb=0, retries=0)
        tracer.span("sync", 6.0, 1.0, hidden_s=2.0)
        report = analyze_records(tracer.records)
        (window,) = report.windows
        assert "bucket_sync" not in window.phase_seconds
        assert "nic_wait" not in window.phase_seconds
        assert window.coverage == pytest.approx(1.0)

    def test_gap_counts_as_unattributed(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 4.0, soc=0)
        tracer.span("sync", 6.0, 2.0)           # 2s hole before it
        report = analyze_records(tracer.records)
        (window,) = report.windows
        assert window.unattributed_s == pytest.approx(2.0)
        assert window.coverage == pytest.approx(6.0 / 8.0)

    def test_setup_and_tail_windows(self):
        tracer = Tracer()
        tracer.span("dispatch", 0.0, 2.0)
        _epoch(tracer, 0, 2.0)
        tracer.span("checkpoint", 11.5, 1.0)
        report = analyze_records(tracer.records)
        labels = [w.label for w in report.windows]
        assert labels == ["setup", "epoch 0", "tail"]
        assert report.windows[0].phase_seconds == {"dispatch": 2.0}
        assert report.windows[2].phase_seconds == \
            pytest.approx({"checkpoint": 1.0})
        # only the epoch window counts as an epoch
        assert [w.label for w in report.epochs] == ["epoch 0"]

    def test_traces_without_epochs_analyse_as_one_run_window(self):
        tracer = Tracer()
        tracer.span("job", 0.0, 5.0, job="a", name="a:epoch 0")
        tracer.span("job", 0.0, 7.0, job="b", name="b:epoch 0")
        report = analyze_records(tracer.records)
        (window,) = report.windows
        assert window.label == "run" and window.epoch is None
        # the bounding job (longest span) owns the path
        assert window.bottleneck[0] == "job"
        assert "job b" in window.bottleneck[1]

    def test_empty_trace(self):
        report = analyze_records([])
        assert report.windows == [] and report.total_s == 0.0
        assert "empty trace" in render_live_summary(report)


class TestHiddenSync:
    def test_socflow_duplicated_allreduce_hidden_uses_max(self):
        tracer = Tracer()
        # socflow repeats the epoch's hidden total on every per-SoC span
        for soc in (0, 1, 2):
            tracer.span("allreduce", 0.0, 3.0, soc=soc, cg=0, hidden_s=4.0)
        report = analyze_records(tracer.records)
        assert report.windows[0].hidden_sync_s == pytest.approx(4.0)

    def test_bucketed_spans_sum(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 6.0, soc=0)
        tracer.span("bucket_sync", 1.0, 2.0, hidden_s=2.0)
        tracer.span("bucket_sync", 3.0, 2.0, hidden_s=1.5)
        report = analyze_records(tracer.records)
        assert report.windows[0].hidden_sync_s == pytest.approx(3.5)

    def test_hidden_fraction(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 6.0, soc=0)
        tracer.span("sync", 6.0, 1.0, hidden_s=3.0)
        report = analyze_records(tracer.records)
        assert report.windows[0].hidden_fraction == pytest.approx(0.75)


class TestStragglers:
    def test_slow_soc_flagged(self):
        tracer = Tracer()
        _epoch(tracer, 0, 0.0, socs=(0, 1, 2, 3), slow=3)
        report = analyze_records(tracer.records)
        (window,) = report.windows
        soc, skew = window.straggler
        assert soc == 3 and skew == pytest.approx(1.5)

    def test_no_soc_attribution_means_no_straggler(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 6.0, num_socs=8)     # ssgd-style
        report = analyze_records(tracer.records)
        assert report.windows[0].straggler is None


class TestNetworkHealth:
    def test_retries_degrade_pcb(self):
        tracer = Tracer()
        tracer.span("nic_wait", 0.0, 0.5, pcb=1, retries=2)
        tracer.span("nic_wait", 0.0, 0.1, pcb=2, retries=0)
        report = analyze_records(tracer.records)
        assert report.pcb_health[1]["degraded"] is True
        assert report.pcb_health[2]["degraded"] is False

    def test_fault_events_cross_referenced(self):
        tracer = Tracer()
        tracer.event("fault", 1.0, name="fault:flap", pcb=0, fault="flap")
        report = analyze_records(tracer.records)
        assert report.pcb_health[0]["degraded"] is True
        assert report.faults == [
            {"ts_s": 1.0, "name": "fault:flap", "fault": "flap", "pcb": 0}]


class TestDiff:
    def _report(self, sync_s=3.0, epochs=2):
        tracer = Tracer()
        t = 0.0
        for epoch in range(epochs):
            t = _epoch(tracer, epoch, t, sync_s=sync_s)
        return analyze_records(tracer.records)

    def test_identical_runs_not_significant(self):
        diff = diff_reports(self._report(), self._report())
        assert not diff.significant_phases
        assert "no significant" in diff.verdict

    def test_sync_win_attributed(self):
        diff = diff_reports(self._report(sync_s=3.0),
                            self._report(sync_s=1.5))
        assert diff.total.delta == pytest.approx(-3.0)
        significant = {d.key for d in diff.significant_phases}
        assert "allreduce" in significant
        assert "faster" in diff.verdict and "allreduce" in diff.verdict
        # epochs align by index, each 1.5s faster
        assert all(d.delta == pytest.approx(-1.5) for d in diff.epochs)

    def test_epoch_count_mismatch_noted(self):
        diff = diff_reports(self._report(epochs=2), self._report(epochs=3))
        assert any("epoch count differs" in note for note in diff.notes)

    def test_json_round_trips(self):
        diff = diff_reports(self._report(), self._report(sync_s=2.0))
        payload = json.loads(render_diff(diff, "json"))
        assert payload["verdict"] == diff.verdict
        assert {p["key"] for p in payload["phases"]} >= {"allreduce"}


class TestHealthMonitor:
    def test_epoch_spike(self):
        tracer = Tracer()
        t = 0.0
        for epoch in range(4):
            t = _epoch(tracer, epoch, t,
                       compute_s=6.0 if epoch != 2 else 20.0)
        report = analyze_records(tracer.records)
        spikes = [a for a in report.anomalies
                  if a.kind == "epoch_time_spike"]
        assert [a.where for a in spikes] == ["epoch 2"]

    def test_sync_regression(self):
        tracer = Tracer()
        t = _epoch(tracer, 0, 0.0, sync_s=1.0)
        _epoch(tracer, 1, t, compute_s=2.0, sync_s=6.0)
        report = analyze_records(
            tracer.records,
            monitor=HealthMonitor(spike_factor=100.0))
        kinds = {a.kind for a in report.anomalies}
        assert "sync_regression" in kinds

    def test_straggler_and_degraded_pcb(self):
        tracer = Tracer()
        _epoch(tracer, 0, 0.0, socs=(0, 1, 2, 3), slow=3)
        tracer.span("nic_wait", 0.0, 0.5, pcb=0, retries=3)
        report = analyze_records(tracer.records)
        kinds = {a.kind for a in report.anomalies}
        assert {"straggler_soc", "degraded_pcb"} <= kinds

    def test_starved_job(self):
        tracer = Tracer()
        tracer.span("job", 0.0, 10.0, job="fast", name="fast:epoch 0")
        tracer.span("queue", 0.0, 9.0, job="hungry", name="hungry:starved")
        report = analyze_records(tracer.records)
        starved = [a for a in report.anomalies if a.kind == "starved_job"]
        assert [a.where for a in starved] == ["job hungry"]

    def test_anomalies_emitted_into_metrics(self):
        tracer = Tracer()
        tracer.span("nic_wait", 0.0, 0.5, pcb=0, retries=3)
        metrics = MetricsRegistry()
        analyze_records(tracer.records, metrics=metrics)
        rows = {row["name"]: row for row in metrics.collect()}
        assert rows["health.anomalies"]["value"] == 1.0
        assert rows["health.anomalies"]["labels"] == {"kind": "degraded_pcb"}

    def test_healthy_run_is_quiet(self):
        tracer = Tracer()
        t = 0.0
        for epoch in range(3):
            t = _epoch(tracer, epoch, t)
        report = analyze_records(tracer.records)
        assert report.anomalies == []


class TestRenderers:
    def _report(self):
        tracer = Tracer()
        t = _epoch(tracer, 0, 0.0)
        _epoch(tracer, 1, t)
        return analyze_records(tracer.records)

    def test_formats_deterministic(self):
        a, b = self._report(), self._report()
        for fmt in ("table", "json", "markdown"):
            assert render_report(a, fmt) == render_report(b, fmt)
            assert render_diff(diff_reports(a, a), fmt) \
                == render_diff(diff_reports(b, b), fmt)

    def test_json_parses(self):
        payload = json.loads(render_report(self._report(), "json"))
        assert payload["coverage"] == pytest.approx(1.0)
        assert len(payload["windows"]) == 2

    def test_markdown_has_tables(self):
        text = render_report(self._report(), "markdown")
        assert "### per-window phase accounting" in text
        assert "| --- |" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            render_report(self._report(), "csv")

    def test_live_summary_names_bottleneck(self):
        text = render_live_summary(self._report())
        assert "bottleneck compute" in text
        assert "coverage 100.0%" in text


# ----------------------------------------------------------------------
# End-to-end: a real traced SoCFlow fault run
# ----------------------------------------------------------------------
def _socflow_run(seed=3):
    telemetry = Telemetry.active()
    config = make_run_config(
        "lenet5_fmnist", "quick", num_socs=16, num_groups=4, max_epochs=3,
        seed=seed, telemetry=telemetry,
        fault_schedule=FaultSchedule(
            (SoCCrash(1, 3), NicDegradation(1, 0, 0.2, recover_epoch=3))))
    SoCFlow(SoCFlowOptions()).train(config)
    return telemetry


@pytest.fixture(scope="module")
def socflow_traced():
    return _socflow_run()


class TestEndToEnd:
    def test_every_epoch_99_percent_accounted(self, socflow_traced):
        report = analyze_records(socflow_traced.tracer.records)
        epochs = report.epochs
        assert len(epochs) == 3
        for window in epochs:
            assert window.coverage >= 0.99, \
                f"{window.label}: {window.coverage:.3%}"

    def test_recovery_shows_on_critical_path(self, socflow_traced):
        report = analyze_records(socflow_traced.tracer.records)
        totals = report.phase_totals
        assert totals.get("recovery", 0.0) > 0
        recovering = [w for w in report.epochs
                      if "recovery" in w.phase_seconds]
        assert recovering

    def test_fault_run_raises_anomalies(self, socflow_traced):
        report = analyze_records(socflow_traced.tracer.records)
        kinds = {a.kind for a in report.anomalies}
        # the deep NIC degradation forces retries -> a degraded PCB
        assert "degraded_pcb" in kinds

    def test_same_seed_byte_identical_reports(self, socflow_traced):
        other = _socflow_run()
        for fmt in ("table", "json", "markdown"):
            assert render_report(
                analyze_records(socflow_traced.tracer.records), fmt) \
                == render_report(analyze_records(other.tracer.records), fmt)

    def test_analysis_does_not_mutate_records(self, socflow_traced):
        before = [r.to_dict() for r in socflow_traced.tracer.records]
        analyze_records(socflow_traced.tracer.records)
        assert [r.to_dict() for r in socflow_traced.tracer.records] == before


class TestLoaderRoundTrip:
    def _tracer(self):
        tracer = Tracer()
        _epoch(tracer, 0, 0.0)
        tracer.event("fault", 1.0, name="fault:crash", soc=0, fault="crash")
        return tracer

    def test_plain_round_trip(self, tmp_path):
        from repro.telemetry import load_trace_records, to_jsonl, write_jsonl
        tracer = self._tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        records = load_trace_records(path)
        assert "\n".join(json.dumps(r.to_dict(), sort_keys=True)
                         for r in records) == to_jsonl(tracer)

    def test_gzip_round_trip_and_determinism(self, tmp_path):
        from repro.telemetry import load_trace_records, write_jsonl
        tracer = self._tracer()
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        write_jsonl(tracer, a)
        write_jsonl(tracer, b)
        # mtime=0 members: identical exports are byte-identical files
        assert a.read_bytes() == b.read_bytes()
        with gzip.open(a, "rt") as fh:
            assert fh.readline().startswith("{")
        loaded = [r.to_dict() for r in load_trace_records(a)]
        assert loaded == [r.to_dict() for r in tracer.records]

    def test_analysis_matches_live(self, tmp_path):
        from repro.telemetry import analyze_trace, write_jsonl
        tracer = self._tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        assert render_report(analyze_trace(path)) \
            == render_report(analyze_records(tracer.records))

    def test_chrome_trace_rejected(self, tmp_path):
        from repro.telemetry import load_trace_records, write_trace
        path = tmp_path / "trace.json"
        write_trace(self._tracer(), path, fmt="chrome")
        with pytest.raises(ValueError, match="Chrome-format"):
            load_trace_records(path)

    def test_malformed_line_rejected(self, tmp_path):
        from repro.telemetry import load_trace_records
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "compute"}\n')
        with pytest.raises(ValueError, match="missing required field"):
            load_trace_records(path)
