"""Table 3: end-to-end convergence accuracy, 8 workloads x 7 methods.

PS / RING / HiPress / 2D-Paral compute mathematically identical updates
(the paper's numbers agree to the decimal), so their accuracy column is
produced by one SSGD run; FedAvg and T-FedAvg likewise share client
math.  SoCFlow's accuracy comes from the full mixed-precision grouped
run.  Degradation is measured against the single-SoC "Local" column.
"""

from conftest import print_block

from repro.harness import WORKLOADS, format_table

EPOCHS = 8


def test_table3_convergence_accuracy(benchmark, suite):
    def compute():
        table = {}
        for workload in WORKLOADS:
            local = suite.run(workload, "ring", num_socs=1,
                              max_epochs=EPOCHS)
            ssgd = suite.run(workload, "ring", max_epochs=EPOCHS)
            hipress = suite.run(workload, "hipress", max_epochs=EPOCHS)
            fedavg = suite.run(workload, "fedavg", max_epochs=EPOCHS)
            ours = suite.run(workload, "socflow", max_epochs=EPOCHS)
            table[workload] = {
                "local": local.best_accuracy,
                "ps/ring/2d": ssgd.best_accuracy,
                "hipress": hipress.best_accuracy,
                "fedavg/tree": fedavg.best_accuracy,
                "ours": ours.best_accuracy,
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    headers = ["workload", "local", "ps/ring/2d", "hipress", "fedavg/tree",
               "ours", "ours_degr"]
    rows = []
    for workload, row in table.items():
        rows.append([
            workload,
            *(round(100 * row[c], 1) for c in
              ("local", "ps/ring/2d", "hipress", "fedavg/tree", "ours")),
            round(100 * (row["ours"] - row["local"]), 1),
        ])
    print_block("Table 3: convergence accuracy (%)",
                format_table(headers, rows))

    degradations = {"ssgd": [], "fedavg": [], "ours": []}
    for row in table.values():
        degradations["ssgd"].append(row["ps/ring/2d"] - row["local"])
        degradations["fedavg"].append(row["fedavg/tree"] - row["local"])
        degradations["ours"].append(row["ours"] - row["local"])

    mean = {k: sum(v) / len(v) for k, v in degradations.items()}
    print_block("Average degradation vs Local (pp)", format_table(
        ["method", "mean_degradation_pp"],
        [[k, round(100 * v, 2)] for k, v in mean.items()]))

    # Paper shape: SSGD ~= Local (-0.16pp); FedAvg worst (-2.23pp);
    # SoCFlow in between (-0.81pp).  At quick scale we assert ordering
    # with slack rather than the absolute numbers.
    assert mean["ssgd"] >= mean["fedavg"] - 0.02
    assert mean["ours"] >= mean["fedavg"] - 0.05
    # SoCFlow stays within a usable band of Local on average
    assert mean["ours"] > -0.25
