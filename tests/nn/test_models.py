"""Model zoo: shapes, scaling, trainability, registry, freezing."""

import numpy as np
import pytest

from repro.nn import SGD, Tensor
from repro.nn import functional as F
from repro.nn.models import (MODEL_REGISTRY, LeNet5, MobileNetV1, ResNet18,
                             ResNet50, VGG11, build_model)

RNG = np.random.default_rng(0)


def one_step(model, x, y, lr=0.05):
    model.train()
    logits = model(Tensor(x))
    loss = F.cross_entropy(logits, y)
    loss.backward()
    SGD(model.parameters(), lr=lr).step()
    return loss.item(), logits


class TestShapes:
    @pytest.mark.parametrize("cls,channels,size", [
        (VGG11, 3, 16), (ResNet18, 3, 16), (ResNet50, 3, 16),
        (MobileNetV1, 3, 16),
    ])
    def test_rgb_models_output_shape(self, cls, channels, size):
        model = cls(num_classes=7, in_channels=channels, image_size=size,
                    width=0.2, seed=0)
        x = RNG.standard_normal((3, channels, size, size)).astype(np.float32)
        assert model(Tensor(x)).shape == (3, 7)

    def test_lenet_shape(self):
        model = LeNet5(num_classes=10, in_channels=1, image_size=28,
                       width=0.5, seed=0)
        x = RNG.standard_normal((2, 1, 28, 28)).astype(np.float32)
        assert model(Tensor(x)).shape == (2, 10)

    def test_vgg_small_image_drops_pools(self):
        model = VGG11(num_classes=4, image_size=8, width=0.2, seed=0)
        x = RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)
        assert model(Tensor(x)).shape == (1, 4)


class TestWidthScaling:
    def test_width_changes_parameter_count(self):
        small = VGG11(width=0.25, seed=0).num_parameters()
        big = VGG11(width=0.5, seed=0).num_parameters()
        assert big > 2 * small

    def test_full_width_parameter_counts_match_profiles(self):
        """The cluster cost model's payload sizes reflect the real zoo."""
        from repro.cluster.spec import MODEL_PROFILES
        model = VGG11(num_classes=10, image_size=32, width=1.0, seed=0)
        assert model.num_parameters() == MODEL_PROFILES["vgg11"].params

    def test_resnet18_profile_params(self):
        from repro.cluster.spec import MODEL_PROFILES
        model = ResNet18(num_classes=10, width=1.0, seed=0)
        assert model.num_parameters() == MODEL_PROFILES["resnet18"].params


class TestTrainability:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_loss_decreases_on_memorized_batch(self, name):
        channels = 1 if name == "lenet5" else 3
        size = 12
        model = build_model(name, num_classes=4, in_channels=channels,
                            image_size=size, width=0.2, seed=0)
        x = RNG.standard_normal((8, channels, size, size)).astype(np.float32)
        y = np.array([0, 1, 2, 3] * 2)
        first, _ = one_step(model, x, y)
        for _ in range(12):
            last, _ = one_step(model, x, y)
        assert last < first


class TestRegistry:
    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("alexnet")

    def test_all_registry_entries_construct(self):
        for name in MODEL_REGISTRY:
            channels = 1 if name == "lenet5" else 3
            model = build_model(name, num_classes=3, in_channels=channels,
                                image_size=12, width=0.15, seed=1)
            assert model.num_parameters() > 0


class TestTransferLearning:
    def test_freeze_backbone_blocks_feature_grads(self):
        model = ResNet50(num_classes=5, width=0.15, seed=0)
        model.freeze_backbone()
        x = RNG.standard_normal((2, 3, 12, 12)).astype(np.float32)
        loss, _ = one_step(model, x, np.array([0, 1]))
        stem_params = [p for _, p in model.stem.named_parameters()]
        assert all(p.grad is None for p in stem_params)
        head_params = [p for _, p in model.fc.named_parameters()]
        assert all(p.grad is not None for p in head_params)

    def test_frozen_backbone_weights_do_not_move(self):
        model = ResNet50(num_classes=5, width=0.15, seed=0)
        model.freeze_backbone()
        before = model.stem._modules["0"].weight.data.copy()
        x = RNG.standard_normal((4, 3, 12, 12)).astype(np.float32)
        for _ in range(3):
            one_step(model, x, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(model.stem._modules["0"].weight.data,
                                   before)

    def test_head_weights_move_when_frozen(self):
        model = ResNet50(num_classes=5, width=0.15, seed=0)
        model.freeze_backbone()
        before = model.fc.weight.data.copy()
        x = RNG.standard_normal((4, 3, 12, 12)).astype(np.float32)
        one_step(model, x, np.array([0, 1, 2, 3]))
        assert not np.allclose(model.fc.weight.data, before)
