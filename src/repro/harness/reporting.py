"""Plain-text table/series rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table with a header rule."""
    table = [[_cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in table])


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned columns."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return f"[{name}]\n" + format_table([x_label, y_label], rows)
