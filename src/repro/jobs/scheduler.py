"""Elastic multi-tenant scheduling of training jobs over the tidal trace.

The :class:`ElasticScheduler` closes the loop the paper's Figure 1
opens: the SoC-Cluster's day job (user sessions riding the tidal
curve) decides how many chips are idle at any hour, and the scheduler
packs admitted :class:`~repro.jobs.spec.TrainingJob` tenants onto that
shifting pool.  Each scheduling round it

1. admits newly-arrived jobs through the :class:`~repro.jobs.queue.JobQueue`;
2. computes the idle capacity (session-busy SoCs and fault-dead SoCs
   are unavailable; a non-elastic baseline is additionally gated to a
   fixed overnight window);
3. runs fair-share gang placement: every runnable job gets its
   ``min_socs`` floor in priority order, then — in elastic mode — the
   surplus is granted one SoC at a time to the job with the smallest
   priority-weighted consumption (``soc_hours / priority``), capped at
   ``max_socs``;
4. applies the plan: jobs that lost their floor are preempted to a
   warm checkpoint and requeued *at their original fairness position*,
   new grants are gang-placed (priced as a per-job dispatch), changed
   grants trigger an elastic resize (Eq. 1 group sizing, the
   integrity-greedy mapping and CG planning re-run; priced as a
   recovery step);
5. advances every running job by one epoch of real math + simulated
   charge; the round lasts as long as the slowest job's epoch (floored
   at the scheduling quantum).

Determinism: all iteration orders are sorted, per-job RNGs are seeded
by the job spec, and the shared telemetry timeline is driven by the
round clock — the same seed + job file yields byte-identical exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster.clock import PhaseClock
from ..cluster.topology import ClusterTopology
from ..cluster.workload import Session, SessionIndex
from ..telemetry import NULL_TELEMETRY, Telemetry
from .execution import JobExecution
from .queue import JobQueue, QueueEntry
from .spec import TrainingJob

__all__ = ["JobRecord", "ScheduleReport", "ElasticScheduler"]


@dataclass
class JobRecord:
    """Per-job outcome bookkeeping, reported by :class:`ScheduleReport`."""

    job: TrainingJob
    status: str = "queued"      # queued/running/completed/missed/unfinished
    submit_hour: float = 0.0
    start_hour: float | None = None
    finish_hour: float | None = None
    epochs_done: int = 0
    final_accuracy: float = 0.0
    queue_wait_hours: float | None = None
    soc_hours: float = 0.0
    resizes: int = 0
    preemptions: int = 0

    def to_dict(self) -> dict:
        return {
            "id": self.job.id, "status": self.status,
            "priority": self.job.priority,
            "submit_hour": round(self.submit_hour, 6),
            "start_hour": (None if self.start_hour is None
                           else round(self.start_hour, 6)),
            "finish_hour": (None if self.finish_hour is None
                            else round(self.finish_hour, 6)),
            "epochs_done": self.epochs_done,
            "epochs_requested": self.job.epochs,
            "final_accuracy": round(self.final_accuracy, 6),
            "queue_wait_hours": (None if self.queue_wait_hours is None
                                 else round(self.queue_wait_hours, 6)),
            "soc_hours": round(self.soc_hours, 6),
            "resizes": self.resizes, "preemptions": self.preemptions,
        }


@dataclass
class ScheduleReport:
    """What one scheduling run did with the cluster's idle capacity."""

    jobs: "dict[str, JobRecord]"
    horizon_hours: float
    available_soc_hours: float = 0.0
    used_soc_hours: float = 0.0
    rounds: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def utilisation(self) -> float:
        """Share of idle SoC-hours actually spent training."""
        if self.available_soc_hours <= 0:
            return 0.0
        return self.used_soc_hours / self.available_soc_hours

    @property
    def completed(self) -> "list[str]":
        return sorted(j for j, r in self.jobs.items()
                      if r.status == "completed")

    def to_dict(self) -> dict:
        return {
            "horizon_hours": round(self.horizon_hours, 6),
            "rounds": self.rounds,
            "available_soc_hours": round(self.available_soc_hours, 6),
            "used_soc_hours": round(self.used_soc_hours, 6),
            "utilisation": round(self.utilisation, 6),
            "jobs": [self.jobs[j].to_dict() for j in sorted(self.jobs)],
            **self.extra,
        }


class ElasticScheduler:
    """Fair-share elastic gang scheduler on the shared simulated clock.

    Parameters
    ----------
    sessions:
        The user-session timeline (``SessionSimulator.simulate_day``)
        whose busy SoCs training must yield to.
    elastic:
        ``False`` runs the static baseline: jobs only run inside
        ``window`` and only ever hold their ``min_socs`` floor — no
        growth into surplus capacity.
    window:
        ``(start_hour, duration_hours)`` for the static baseline
        (ignored when ``elastic``); wraps across midnight.
    config_factory:
        ``job -> RunConfig`` override for tests; the default builds the
        job's workload at its preset via the experiment harness.  The
        config must keep ``telemetry=None`` — the scheduler owns the
        shared timeline.
    """

    def __init__(self, topology: ClusterTopology, sessions: "list[Session]",
                 *, quantum_hours: float = 0.25, horizon_hours: float = 24.0,
                 start_hour: float = 0.0, elastic: bool = True,
                 window: "tuple[float, float] | None" = None,
                 fault_schedule=None, telemetry: Telemetry | None = None,
                 workers: int = 1, config_factory=None,
                 known_workloads: "set[str] | None" = None,
                 fusion_threshold_mb: float | None = None,
                 fusion_max_ops: int | None = None,
                 graph: bool = False):
        if quantum_hours <= 0:
            raise ValueError("quantum_hours must be positive")
        if horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if not elastic and window is None:
            raise ValueError("the static baseline needs a window")
        self.topology = topology
        self.sessions = list(sessions)
        #: sorted-interval occupancy index — rounds query busy SoCs every
        #: quantum, so the per-round O(sessions) rescan was a hot path
        self._session_index = SessionIndex(self.sessions)
        self.quantum_hours = quantum_hours
        self.horizon_hours = horizon_hours
        self.start_hour = start_hour
        self.elastic = elastic
        self.window = window
        self.fault_schedule = fault_schedule
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.workers = workers
        self.fusion_threshold_mb = fusion_threshold_mb
        self.fusion_max_ops = fusion_max_ops
        self.graph = graph
        self._config_factory = config_factory
        if known_workloads is None and config_factory is None:
            from ..harness.experiments import WORKLOADS
            known_workloads = set(WORKLOADS)
        self.queue = JobQueue(topology, known_workloads=known_workloads)
        self.clock = PhaseClock()
        if self.telemetry.enabled:
            self.telemetry.attach(clock=self.clock, topology=topology)
        self._entries: dict[str, QueueEntry] = {}
        self._execs: dict[str, JobExecution] = {}
        self._records: dict[str, JobRecord] = {}

    # ------------------------------------------------------------------
    def submit(self, job: TrainingJob) -> JobRecord:
        """Admit ``job`` (or raise :class:`JobAdmissionError`)."""
        entry = self.queue.submit(job, job.submit_hour)
        self._entries[job.id] = entry
        record = JobRecord(job=job, submit_hour=job.submit_hour)
        self._records[job.id] = record
        return record

    # ------------------------------------------------------------------
    def _sim_s(self, hour: float) -> float:
        return (hour - self.start_hour) * 3600.0

    def _in_window(self, hour: float) -> bool:
        if self.window is None:
            return True
        start, duration = self.window
        return ((hour - start) % 24.0) < duration

    def _dead_socs(self, round_index: int) -> set:
        if self.fault_schedule is None:
            return set()
        return {s for s in self.fault_schedule.dead_socs(round_index)
                if 0 <= s < self.topology.num_socs}

    def _idle_socs(self, hour: float, round_index: int) -> list:
        """SoCs free of sessions and faults, in id order (deterministic)."""
        busy = self._session_index.busy_socs_at(hour % 24.0)
        dead = self._dead_socs(round_index)
        return [s for s in range(self.topology.num_socs)
                if s not in busy and s not in dead]

    def _capacity(self, hour: float, round_index: int) -> list:
        """Policy-gated schedulable SoCs (static mode adds the window).

        Utilisation accounting deliberately uses :meth:`_idle_socs`
        instead: the window is a *policy* choice, so idle capacity the
        static baseline refuses to touch still counts as available.
        """
        if not self.elastic and not self._in_window(hour):
            return []
        return self._idle_socs(hour, round_index)

    def _config_for(self, job: TrainingJob):
        if self._config_factory is not None:
            return self._config_factory(job)
        from ..harness.experiments import make_run_config
        config = make_run_config(
            job.workload, job.preset, num_socs=self.topology.num_socs,
            num_groups=max(1, self.topology.num_socs
                           // job.target_group_size),
            seed=job.seed, max_epochs=job.epochs, workers=self.workers,
            fusion_threshold_mb=self.fusion_threshold_mb,
            fusion_max_ops=self.fusion_max_ops,
            graph=self.graph)
        return replace(config, topology=self.topology)

    # ------------------------------------------------------------------
    # Fair-share allocation
    # ------------------------------------------------------------------
    def _runnable_entries(self, hour: float) -> "list[QueueEntry]":
        """Arrived, not-yet-complete entries in scheduling order."""
        entries = []
        for entry in self.queue.pending():
            if entry.submit_hour <= hour + 1e-9:
                entries.append(entry)
        for job_id in sorted(self._execs):
            ex = self._execs[job_id]
            if ex.running and not ex.complete:
                entries.append(self._entries[job_id])
        return sorted(entries, key=lambda e: e.sort_key)

    def _allocate(self, capacity: list, hour: float) -> "dict[str, list]":
        """``job id -> SoC ids`` this round (gang floors + fair surplus).

        Every grant satisfies ``min_socs <= len(socs) <= max_socs``; a
        job that cannot get its floor gets *nothing* (gang placement is
        all-or-nothing).  SoC ids are sticky: a resized job keeps as
        much of its previous allocation as capacity allows, minimising
        mapping churn.
        """
        candidates = self._runnable_entries(hour)
        grants: dict[str, int] = {}
        cap = len(capacity)
        for entry in candidates:
            job = entry.job
            if cap >= job.min_socs:
                grants[job.id] = job.min_socs
                cap -= job.min_socs
        if self.elastic and cap > 0:
            order = {e.job.id: i for i, e in enumerate(candidates)}
            while cap > 0:
                eligible = [
                    e.job for e in candidates
                    if e.job.id in grants and grants[e.job.id] < e.job.max_socs]
                if not eligible:
                    break
                # deficit round-robin: the job that has consumed the
                # least per unit of priority grows first; within a
                # round, surplus spreads proportionally to priority
                chosen = min(eligible, key=lambda j: (
                    self._records[j.id].soc_hours / j.priority,
                    grants[j.id] / j.priority,
                    order[j.id]))
                grants[chosen.id] += 1
                cap -= 1
        assigned: dict[str, list] = {}
        free = [s for s in capacity]
        for entry in candidates:
            job_id = entry.job.id
            if job_id not in grants:
                continue
            want = grants[job_id]
            ex = self._execs.get(job_id)
            prev = set(ex.allocated) if ex is not None else set()
            keep = [s for s in free if s in prev][:want]
            kept = set(keep)
            fill = [s for s in free if s not in kept][:want - len(keep)]
            taken = set(keep + fill)
            assigned[job_id] = sorted(taken)
            free = [s for s in free if s not in taken]
        return assigned

    # ------------------------------------------------------------------
    def _apply_allocation(self, assigned: "dict[str, list]",
                          hour: float) -> "dict[str, float]":
        """Preempt / place / resize to match the plan; per-job overhead s."""
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        overhead: dict[str, float] = {}
        now_s = self._sim_s(hour)
        for job_id in sorted(self._execs):
            ex = self._execs[job_id]
            if not ex.running or ex.complete:
                continue
            if job_id not in assigned:
                ex.preempt()
                record = self._records[job_id]
                record.preemptions += 1
                record.status = "queued"
                self.queue.requeue(self._entries[job_id])
                if tracer.enabled:
                    tracer.event("preemption", now_s, job=job_id,
                                 name=f"{job_id}:preempt",
                                 epochs_done=ex.epochs_done)
                metrics.counter("jobs.preemptions").inc()
        for job_id in sorted(assigned):
            socs = assigned[job_id]
            entry = self._entries[job_id]
            record = self._records[job_id]
            ex = self._execs.get(job_id)
            if ex is None:
                ex = JobExecution(entry.job, self._config_for(entry.job))
                self._execs[job_id] = ex
            if not ex.running:
                if job_id in self.queue:
                    self.queue.remove(job_id)
                first = record.start_hour is None
                overhead[job_id] = ex.place(socs)
                record.status = "running"
                if first:
                    record.start_hour = hour
                    record.queue_wait_hours = hour - entry.submit_hour
                    if tracer.enabled:
                        tracer.span("queue", self._sim_s(entry.submit_hour),
                                    record.queue_wait_hours * 3600.0,
                                    job=job_id, name=f"{job_id}:queued",
                                    priority=entry.job.priority)
                    metrics.histogram("jobs.queue_wait_hours").observe(
                        record.queue_wait_hours)
            elif socs != ex.allocated:
                grew = len(socs) > len(ex.allocated)
                overhead[job_id] = ex.resize(socs)
                record.resizes += 1
                if tracer.enabled:
                    tracer.event("resize", now_s, job=job_id,
                                 name=f"{job_id}:{'grow' if grew else 'shrink'}",
                                 socs=len(socs), num_groups=ex.num_groups)
                metrics.counter("jobs.resizes").inc()
        return overhead

    # ------------------------------------------------------------------
    # Round hooks (extension points for co-scheduling subclasses)
    # ------------------------------------------------------------------
    def _begin_round(self, hour: float, round_index: int) -> None:
        """Called at the top of every round, before capacity is computed.

        The serving co-scheduler (:mod:`repro.serving`) advances its
        request plane to ``hour`` here and re-bids for SoCs, so the
        capacity this round sees already reflects SLO pressure.
        """

    def _end_run(self, hour: float) -> None:
        """Called once when the horizon is reached (before reporting)."""

    # ------------------------------------------------------------------
    def run(self) -> ScheduleReport:
        """Drive the round loop to the horizon and report."""
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        report = ScheduleReport(jobs=self._records,
                                horizon_hours=self.horizon_hours)
        t = self.start_hour
        end = self.start_hour + self.horizon_hours
        round_index = 0
        try:
            while t < end:
                self._begin_round(t, round_index)
                capacity = self._capacity(t, round_index)
                assigned = self._allocate(capacity, t)
                overhead = self._apply_allocation(assigned, t)
                round_s = 0.0
                finished: list[str] = []
                for job_id in sorted(self._execs):
                    ex = self._execs[job_id]
                    if not ex.running or ex.complete:
                        continue
                    t0 = self._sim_s(t)
                    seconds = ex.run_epoch()
                    total = seconds + overhead.get(job_id, 0.0)
                    round_s = max(round_s, total)
                    record = self._records[job_id]
                    record.epochs_done = ex.epochs_done
                    record.final_accuracy = ex.final_accuracy
                    if tracer.enabled:
                        tracer.span(
                            "job", t0, seconds, job=job_id,
                            name=f"{job_id}:epoch {ex.epochs_done - 1}",
                            socs=len(ex.allocated),
                            num_groups=ex.num_groups,
                            accuracy=record.final_accuracy)
                    if ex.complete:
                        finished.append(job_id)
                dt = max(round_s / 3600.0, self.quantum_hours)
                dt = min(dt, end - t)
                report.available_soc_hours += \
                    len(self._idle_socs(t, round_index)) * dt
                for job_id in sorted(self._execs):
                    ex = self._execs[job_id]
                    if ex.running:
                        held = len(ex.allocated) * dt
                        report.used_soc_hours += held
                        self._records[job_id].soc_hours += held
                for job_id in finished:
                    self._finish(job_id, t + dt)
                t += dt
                self.clock.advance(dt * 3600.0, "job")
                round_index += 1
                report.rounds = round_index
                if metrics.enabled:
                    # live health feed: round cadence + concurrency, so
                    # a trace-less run still shows scheduling behaviour
                    metrics.histogram("jobs.round_hours").observe(dt)
                    metrics.histogram("jobs.running_per_round").observe(
                        sum(1 for ex in self._execs.values()
                            if ex.running and not ex.complete))
                if not self.queue and not any(
                        ex.running and not ex.complete
                        for ex in self._execs.values()):
                    break
            # Account the idle capacity left on the table between the
            # last round and the horizon, so utilisation compares
            # policies over the same denominator instead of rewarding
            # a baseline that merely stops early.
            while t < end - 1e-9:
                self._begin_round(t, round_index)
                dt = min(self.quantum_hours, end - t)
                report.available_soc_hours += \
                    len(self._idle_socs(t, round_index)) * dt
                t += dt
            self._end_run(end)
        finally:
            for ex in self._execs.values():
                ex.close()
        for job_id in sorted(self._records):
            record = self._records[job_id]
            if record.status in ("queued", "running"):
                record.status = "unfinished"
            if record.status == "unfinished" and record.epochs_done == 0 \
                    and tracer.enabled:
                # a job that waited out the whole horizon never got a
                # placement-time queue span; emit one so the analysis
                # engine's starved-job monitor sees the wait
                start = self._sim_s(record.submit_hour)
                tracer.span("queue", start,
                            max(0.0, self._sim_s(end) - start),
                            job=job_id, name=f"{job_id}:starved")
            ex = self._execs.get(job_id)
            if ex is not None:
                record.resizes = ex.resizes
            metrics.counter("jobs.soc_hours", job=job_id).inc(
                record.soc_hours)
        if metrics.enabled:
            metrics.gauge("jobs.utilisation").set(report.utilisation)
            metrics.gauge("jobs.available_soc_hours").set(
                report.available_soc_hours)
            metrics.gauge("jobs.used_soc_hours").set(
                report.used_soc_hours)
        report.extra["elastic"] = self.elastic
        return report

    def _finish(self, job_id: str, hour: float) -> None:
        ex = self._execs[job_id]
        record = self._records[job_id]
        record.finish_hour = hour
        elapsed = hour - record.submit_hour
        job = record.job
        missed = (job.deadline_hours is not None
                  and elapsed > job.deadline_hours)
        record.status = "missed" if missed else "completed"
        ex.allocated = []
        ex.close()
        metrics = self.telemetry.metrics
        metrics.counter("jobs.missed" if missed else "jobs.completed").inc()
