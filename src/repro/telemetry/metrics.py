"""Metrics registry: labeled counters, gauges and histograms.

The registry is the scalar/series side of the telemetry subsystem:
bytes over each PCB NIC, retry counts, per-phase seconds, alpha/beta
per epoch, straggler slowdowns.  Metrics are identified by a name plus
a sorted label set, so ``registry.counter("nic.bytes", pcb=3)`` is one
series and ``pcb=4`` another.

Everything is deterministic: histograms keep their raw observations in
arrival order and percentiles use nearest-rank interpolation over a
sorted copy, so two identical runs export identical summaries.  For
million-step runs a histogram can instead be bounded
(``Histogram(reservoir=k)``, or registry-wide via
``MetricsRegistry(histogram_reservoir=k)``): count/sum/min/max/mean
stay exact while percentiles come from a seeded Vitter Algorithm-R
sample — still deterministic for a fixed observation order.  The
:class:`NullMetricsRegistry` default makes every instrument a shared
no-op, keeping the untraced hot path free of bookkeeping.
"""

from __future__ import annotations

import json
import random

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetricsRegistry"]


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def summary(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-set value, with the full series kept for per-epoch reports."""

    kind = "gauge"

    def __init__(self):
        self.value: float | None = None
        self.series: list[float] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        self.series.append(self.value)

    def summary(self) -> dict:
        return {"value": self.value, "observations": len(self.series)}


class Histogram:
    """Raw-observation histogram with percentile summaries.

    With ``reservoir=k`` the instrument keeps at most ``k`` observations
    (uniform Vitter Algorithm-R sample, seeded per instrument so runs
    stay reproducible) while ``count``/``sum``/``min``/``max`` — and
    therefore ``mean`` — remain exact.  Only the percentiles become
    approximate, and only once more than ``k`` values arrive.
    """

    kind = "histogram"

    def __init__(self, reservoir: int | None = None):
        if reservoir is not None and reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self.observations: list[float] = []
        self.reservoir = reservoir
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._rng = random.Random(0x5eed) if reservoir is not None else None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.reservoir is None or len(self.observations) < self.reservoir:
            self.observations.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir:
                self.observations[slot] = value

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` for request-resolution callers.

        In unbounded mode the aggregates update in one pass without a
        per-value Python call; in reservoir mode values go through
        :meth:`observe` one by one so the RNG consumption — and thus the
        sample — is identical to the equivalent loop.
        """
        if self.reservoir is not None:
            for value in values:
                self.observe(value)
            return
        values = [float(v) for v in values]
        if not values:
            return
        self.count += len(values)
        self.sum += sum(values)
        low, high = min(values), max(values)
        self.min = low if self.min is None else min(self.min, low)
        self.max = high if self.max is None else max(self.max, high)
        self.observations.extend(values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        Exact in unbounded mode; computed over the reservoir sample once
        the instrument has spilled.
        """
        if not self.observations:
            raise ValueError("empty histogram has no percentiles")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.observations)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0}
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }
        if self.reservoir is not None and self.count > self.reservoir:
            out["sampled"] = len(self.observations)
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    kind = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Accepts every call, records nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> list[dict]:
        return []


class MetricsRegistry:
    """Get-or-create registry keyed by (name, sorted labels).

    ``histogram_reservoir`` bounds every histogram the registry creates
    (see :class:`Histogram`); the default ``None`` keeps the exact
    unbounded behaviour.
    """

    enabled = True

    def __init__(self, histogram_reservoir: int | None = None):
        self._metrics: dict[tuple, object] = {}
        self.histogram_reservoir = histogram_reservoir

    def _get(self, cls, name: str, labels: dict, factory=None):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = (factory or cls)()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r}{labels} already registered "
                            f"as {type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(
            Histogram, name, labels,
            factory=lambda: Histogram(reservoir=self.histogram_reservoir))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """All series as dict rows, sorted by (name, labels)."""
        rows = []
        for (name, labels), metric in sorted(self._metrics.items()):
            rows.append({"name": name, "labels": dict(labels),
                         "type": metric.kind, **metric.summary()})
        return rows

    def to_jsonl(self) -> str:
        """One JSON object per series; byte-stable across identical runs."""
        return "\n".join(json.dumps(row, sort_keys=True)
                         for row in self.collect())

    def write_jsonl(self, path) -> None:
        from .export import open_text
        with open_text(path, "w") as fh:
            fh.write(self.to_jsonl())
            fh.write("\n")
