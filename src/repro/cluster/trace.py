"""Diurnal (tidal) utilisation traces and idle-window extraction.

Reproduces the shape of Figure 3: the share of busy SoCs peaks between
11:00 and 17:00 and collapses overnight (the paper reports ~50x lower
CPU usage at midnight and <20% average utilisation), which is what
creates the free cycles SoCFlow harvests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TidalTrace", "IdleWindow"]


@dataclass(frozen=True)
class IdleWindow:
    """A contiguous period when a SoC share is available for training."""

    start_hour: float
    end_hour: float

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    def __post_init__(self):
        if self.end_hour < self.start_hour:
            raise ValueError("window ends before it starts")


class TidalTrace:
    """Synthetic busy-SoC-ratio trace over a 24 h day.

    The deterministic base curve is a raised double-peaked diurnal shape
    (late-morning and evening gaming peaks); per-sample noise is seeded.
    """

    def __init__(self, peak_busy: float = 0.78, trough_busy: float = 0.015,
                 noise: float = 0.03, seed: int = 0):
        if not 0 <= trough_busy <= peak_busy <= 1:
            raise ValueError("need 0 <= trough <= peak <= 1")
        self.peak_busy = peak_busy
        self.trough_busy = trough_busy
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def busy_ratio(self, hour: float) -> float:
        """Deterministic busy fraction at ``hour`` in [0, 24)."""
        hour = hour % 24.0
        # Activity ramps from ~8:00, plateaus 11:00-17:00, decays with an
        # evening shoulder around 21:00, and bottoms out 3:00-8:00.
        day = math.exp(-0.5 * ((hour - 14.0) / 2.4) ** 2)
        evening = 0.45 * math.exp(-0.5 * ((hour - 20.5) / 1.2) ** 2)
        shape = min(1.0, day + evening)
        return self.trough_busy + (self.peak_busy - self.trough_busy) * shape

    def busy_ratio_array(self, hours: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`busy_ratio` for request-resolution callers
        (the serving plane evaluates the rate at every arrival)."""
        hours = np.asarray(hours, dtype=float) % 24.0
        day = np.exp(-0.5 * ((hours - 14.0) / 2.4) ** 2)
        evening = 0.45 * np.exp(-0.5 * ((hours - 20.5) / 1.2) ** 2)
        shape = np.minimum(1.0, day + evening)
        return self.trough_busy + (self.peak_busy - self.trough_busy) * shape

    def sample_day(self, points_per_hour: int = 4) -> tuple[np.ndarray,
                                                            np.ndarray]:
        """(hours, noisy busy ratios) over one day."""
        hours = np.arange(0, 24, 1.0 / points_per_hour)
        base = np.array([self.busy_ratio(h) for h in hours])
        noisy = base + self.noise * self._rng.standard_normal(len(hours))
        return hours, np.clip(noisy, 0.0, 1.0)

    def idle_windows(self, busy_threshold: float = 0.25,
                     resolution_hours: float = 0.25) -> list[IdleWindow]:
        """Contiguous windows where the busy ratio stays below threshold."""
        windows: list[IdleWindow] = []
        start: float | None = None
        steps = int(round(24.0 / resolution_hours))
        for i in range(steps + 1):
            hour = i * resolution_hours
            idle = hour < 24.0 and self.busy_ratio(hour) < busy_threshold
            if idle and start is None:
                start = hour
            elif not idle and start is not None:
                windows.append(IdleWindow(start, hour))
                start = None
        return windows

    def longest_idle_window(self,
                            busy_threshold: float = 0.25) -> IdleWindow:
        """The nightly window the paper sizes training against (~4 h+).

        Windows wrapping midnight are merged before taking the max.
        """
        windows = self.idle_windows(busy_threshold)
        if not windows:
            raise ValueError("no idle window below threshold")
        if (len(windows) >= 2 and windows[0].start_hour == 0.0
                and windows[-1].end_hour == 24.0):
            merged = IdleWindow(windows[-1].start_hour - 24.0,
                                windows[0].end_hour)
            windows = windows[1:-1] + [merged]
        return max(windows, key=lambda w: w.duration_hours)

    def average_utilization(self) -> float:
        """Day-average busy fraction (paper: <20%)."""
        hours = np.arange(0, 24, 0.05)
        return float(np.mean([self.busy_ratio(h) for h in hours]))
