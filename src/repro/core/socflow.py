"""The SoCFlow training strategy — everything of §3 end to end.

Per batch: every logical group splits its sub-batch across CPU (FP32)
and NPU (INT8) by the alpha/beta rule, steps both, merges on-chip
(Eq. 5), and ring-synchronises within the group (the planned CG
schedule keeps contending rings off the wire simultaneously, hiding the
cost under compute).  Per epoch: the group leaders run one
Ring-AllReduce over the group weights (delayed aggregation), data is
reshuffled across groups, and alpha is re-profiled on the validation
set.

Every sub-technique is individually switchable for the Figure 13
ablation: ``grouping`` (vs one flat ring), ``mapping``
(integrity-greedy vs naive), ``planning`` (CG schedule vs concurrent),
``mixed`` (CPU+NPU vs CPU only).

Resilience: when the run config carries a
:class:`~repro.cluster.faults.FaultSchedule`, the scheduler surfaces
dead SoCs at every epoch boundary; SoCFlow rolls the cluster back to
the last merged checkpoint, re-runs Eq. 1 group sizing, the
integrity-greedy mapping and CG planning over the survivors, rebuilds
the logical groups, and keeps training — paying a priced recovery step
instead of aborting.  NIC degradations flow into the network fabric
(ring all-reduces slow down and pay timeout/retry backoff) and
persistent stragglers fold into the underclock rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..cluster.clock import PhaseClock
from ..comm.buckets import bucketed_average_states
from ..distributed.base import (CostModel, RunConfig, Strategy,
                                StrategyResult, evaluate_accuracy)
from ..quant.int8 import QuantConfig
from ..quant.mixed import MixedPrecisionController
from .grouping import survivor_group_count
from .mapping import MappingResult, integrity_greedy_mapping, naive_mapping
from .mixed_precision import GroupMixedTrainer
from .planning import CommunicationPlan
from .scheduler import GlobalScheduler, PreemptionEvent

__all__ = ["SoCFlowOptions", "SoCFlow", "build_socflow", "reform_groups"]


def reform_groups(config: RunConfig, controller, quant,
                  groups: "list[GroupMixedTrainer]", num_groups: int,
                  state: dict, int8_only: bool = False
                  ) -> "list[GroupMixedTrainer]":
    """Shrink or grow a warm trainer list to ``num_groups`` members.

    The shared rollback path of fault recovery and elastic resize:
    surviving trainers are reused so their warm runtime state
    (optimizer momentum, INT8 calibration RNG) carries across, new
    members are built at their seed offsets, and every member loads
    ``state`` — the last globally-merged checkpoint.
    """
    if not groups:
        raise ValueError("need at least one warm trainer to reform from")
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    groups = groups[:num_groups]
    for g in range(len(groups), num_groups):
        trainer = GroupMixedTrainer(config, controller, quant,
                                    seed_offset=g, mixed=groups[0].mixed)
        if int8_only:
            trainer.train_batch = _int8_only_step(trainer)  # type: ignore
        groups.append(trainer)
    for group in groups:
        group.load_state(state)
    return groups


@dataclass(frozen=True)
class SoCFlowOptions:
    """Feature switches (all on = the full system; see Figure 13)."""

    grouping: bool = True
    mapping: str = "integrity"          # "integrity" | "naive"
    planning: bool = True
    mixed: bool = True
    #: None = dynamic alpha (profiled per epoch); a float pins it
    #: (Figure 14's "Ours-Half" uses fixed alpha = 0.7)
    fixed_alpha: float | None = None
    #: "mixed" | "fp32" | "int8" — the Figure 14 precision modes
    precision: str = "mixed"
    quant: QuantConfig = field(default_factory=QuantConfig)
    rebalance: bool = True
    events: tuple = ()
    #: write a resumable checkpoint here after every epoch
    checkpoint_path: str | None = None
    #: resume from ``checkpoint_path`` when it exists
    resume: bool = False
    #: run the §3.1 warm-up heuristic: profile first-epoch accuracy at
    #: doubling group counts and pick the largest that holds up
    auto_group_size: bool = False
    #: accuracy-drop threshold for the heuristic (paper: ~15%)
    group_size_drop_threshold: float = 0.15

    def __post_init__(self):
        if self.mapping not in ("integrity", "naive"):
            raise ValueError("mapping must be 'integrity' or 'naive'")
        if self.precision not in ("mixed", "fp32", "int8"):
            raise ValueError("precision must be mixed/fp32/int8")


class SoCFlow(Strategy):
    """Group-wise parallelism + delayed aggregation + mixed precision."""

    name = "socflow"

    def __init__(self, options: SoCFlowOptions | None = None):
        self.options = options or SoCFlowOptions()

    # ------------------------------------------------------------------
    # Topology decisions
    # ------------------------------------------------------------------
    def _build_mapping(self, config: RunConfig,
                       alive: "set[int] | None" = None,
                       num_groups: int | None = None) -> MappingResult:
        available = (config.topology.num_socs if alive is None
                     else len(alive))
        if num_groups is None:
            num_groups = config.num_groups if self.options.grouping else 1
        num_groups = max(1, min(num_groups, available))
        if self.options.mapping == "integrity":
            return integrity_greedy_mapping(config.topology, num_groups,
                                            alive=alive)
        return naive_mapping(config.topology, num_groups, alive=alive)

    # ------------------------------------------------------------------
    def select_group_size(self, config: RunConfig) -> tuple[int, dict]:
        """The warm-up stage: one-epoch profiles at doubling group counts.

        Returns the selected count and the accuracy profile (for
        reporting).  Uses pre-merge group-local first-epoch accuracy,
        which mirrors convergence accuracy (Figure 6).
        """
        from .grouping import GroupSizeSelector
        candidates = [1]
        while candidates[-1] * 2 <= config.topology.num_socs // 2:
            candidates.append(candidates[-1] * 2)
        profile: dict[int, float] = {}
        probe_options = replace(self.options, auto_group_size=False)
        for n in candidates:
            # Probe runs stay untraced: their scratch clocks must not
            # rebind the telemetry context of the real run.
            probe_config = replace(config, max_epochs=1, num_groups=n,
                                   telemetry=None, workers=1)
            result = SoCFlow(probe_options).train(probe_config)
            profile[n] = result.extra["first_epoch_group_accuracy"]
        selector = GroupSizeSelector(self.options.group_size_drop_threshold)
        return selector.select(profile), profile

    def train(self, config: RunConfig) -> StrategyResult:
        options = self.options
        group_size_profile: dict | None = None
        if options.auto_group_size and options.grouping:
            chosen, group_size_profile = self.select_group_size(config)
            config = replace(config, num_groups=chosen)
        cost = CostModel(config, telemetry=config.telemetry)
        telemetry = cost.telemetry
        mapping = self._build_mapping(config)
        plan = CommunicationPlan.from_mapping(mapping)
        scheduler = GlobalScheduler(config.topology,
                                    rebalance=options.rebalance,
                                    events=list(options.events),
                                    fault_schedule=config.fault_schedule,
                                    telemetry=telemetry)

        mixed = options.mixed and options.precision == "mixed"
        controller = MixedPrecisionController(cost.t_cpu_sample,
                                              cost.t_npu_sample)
        if options.fixed_alpha is not None:
            controller.alpha = options.fixed_alpha

        groups = self._build_groups(config, mapping, controller, mixed)
        val_x = config.task.x_test[:128]
        rng = np.random.default_rng(config.seed)

        model_bytes = cost.grad_bytes
        dispatch_t0 = cost.clock.now
        dispatch_s = scheduler.dispatch_seconds(
            cost.fabric, model_bytes,
            data_bytes_per_soc=config.sim_samples_per_epoch
            * np.prod(config.task.input_shape) / config.topology.num_socs)
        cost.charge_epoch_sync(dispatch_s, config.topology.num_socs)
        if telemetry.tracer.enabled:
            telemetry.tracer.span("dispatch", dispatch_t0, dispatch_s,
                                  model_bytes=model_bytes,
                                  num_socs=config.topology.num_socs)

        history: list[float] = []
        state: dict = {}
        preempted = 0
        start_epoch = 0
        if options.resume and options.checkpoint_path is not None:
            start_epoch = self._try_resume(options.checkpoint_path, groups,
                                           controller, history, config)
        #: rollback anchor: the last globally-merged state (and its epoch)
        last_good: tuple[dict, int] = (groups[0].state_dict(), -1)
        current_dead: set[int] = set()
        recoveries: list[dict] = []
        executor = self._make_executor(config, cost, mixed, telemetry)
        try:
            for epoch in range(start_epoch, config.max_epochs):
                epoch_t0 = cost.clock.now
                epoch_phases0 = cost.clock.breakdown()
                epoch_hidden0 = cost.clock.attributed_breakdown()
                scheduler.apply_underclocks(epoch)
                dead = scheduler.apply_faults(epoch, cost.fabric)
                if dead != current_dead:
                    survivors = [s for s in range(config.topology.num_socs)
                                 if s not in dead]
                    if not survivors:
                        state["all_dead_epoch"] = epoch
                        break
                    mapping, plan, groups = self._recover(
                        config, controller, groups, dead, survivors, last_good,
                        cost, scheduler, recoveries, epoch)
                    preempted = min(preempted, len(groups) - 1)
                    current_dead = dead
                for event in scheduler.preemptions_at(epoch):
                    preempted = self._handle_preemption(
                        event, groups, preempted, cost, model_bytes)
                active = groups[:len(groups) - preempted] if preempted else groups
                if not active:
                    break
                active_mapping = MappingResult(
                    [mapping.groups[i] for i in range(len(active))],
                    config.topology)
                active_plan = CommunicationPlan.from_mapping(active_mapping)

                self._run_real_epoch(config, active, epoch, rng, executor)
                layout = active[0].fp32.flatten_parameters().layout
                self._charge_epoch(config, cost, active_mapping, active_plan,
                                   controller, scheduler, mixed, epoch,
                                   layout=layout)

                if epoch == 0:
                    # The group-size heuristic profiles *pre-merge* accuracy
                    # during the first epoch (§3.1) — one group's own model.
                    state["first_epoch_group_accuracy"] = evaluate_accuracy(
                        active[0].fp32, config.task.x_test, config.task.y_test)

                # Host data plane mirrors the fusion plan: the same
                # bucket boundaries aggregate the real weights, bit-
                # identically to the whole-model fused path.
                merged = bucketed_average_states(
                    [g.state_dict() for g in active],
                    cost.bucket_plan(layout), metrics=telemetry.metrics)
                for group in active:
                    group.load_state(merged)
                last_good = (merged, epoch)
                if mixed and options.fixed_alpha is None:
                    controller.update_alpha(
                        *self._profile_logits(active[0], val_x))

                accuracy = evaluate_accuracy(active[0].fp32, config.task.x_test,
                                             config.task.y_test)
                self._epoch_accuracy_bookkeeping(accuracy, epoch, config,
                                                 history, state)
                if options.checkpoint_path is not None:
                    self._write_checkpoint(options.checkpoint_path, active[0],
                                           epoch, history, controller, cost,
                                           config)
                if telemetry.enabled:
                    self._record_epoch_telemetry(
                        telemetry, cost, epoch, epoch_t0, epoch_phases0,
                        accuracy, controller if mixed else None,
                        active_mapping, hidden0=epoch_hidden0)

        finally:
            if executor is not None:
                executor.close()
        extra = {
            "first_epoch_group_accuracy":
                state.get("first_epoch_group_accuracy", 0.0),
            "num_groups": mapping.num_groups,
            "conflict_count": mapping.conflict_count(),
            "num_cgs": plan.num_cgs,
            "alpha_history": list(controller.history),
            "groups_preempted": preempted,
        }
        if group_size_profile is not None:
            extra["group_size_profile"] = group_size_profile
        if config.fault_schedule is not None:
            extra["aborted"] = False
            if "all_dead_epoch" in state:
                extra["all_dead_epoch"] = state["all_dead_epoch"]
            extra["recoveries"] = recoveries
            extra["final_num_groups"] = mapping.num_groups
            extra["final_groups"] = [list(g) for g in mapping.groups]
            extra["dead_socs"] = sorted(current_dead)
            extra["network_retries"] = cost.fabric.total_retries
        extra["final_state"] = groups[0].state_dict()
        self._flush_graph_stats(groups, plan, cost, telemetry, extra)
        return self._result(self.name, config, cost, history, state, extra)

    @staticmethod
    def _flush_graph_stats(groups, plan, cost, telemetry, extra) -> None:
        """Aggregate per-precision graph-executor counters into
        ``extra["graph_stats"]``, the metrics stream and the trace.

        No-op when ``--graph`` is off (no group has an executor), so
        eager telemetry is byte-identical to pre-graph runs.  Counters
        reuse the established ``graph.*`` names with a ``precision``
        label, plus a dedicated ``graph.int8_fallbacks`` total so a
        silently-eager INT8 path is visible rather than dropped.  One
        ``graph_replay`` span per (group, precision) carries LG/CG
        attribution.  Under ``workers > 1`` the steps run in worker
        replicas whose executor counters are not shipped back, so the
        main-process numbers only reflect local activity.
        """
        per_group = [group.graph_stats() for group in groups]
        if not any(per_group):
            return
        totals: dict[str, dict[str, int]] = {}
        for stats in per_group:
            for precision, counters in (stats or {}).items():
                total = totals.setdefault(precision, {})
                for key, value in counters.items():
                    total[key] = total.get(key, 0) + value
        extra["graph_stats"] = totals
        metrics = telemetry.metrics
        if metrics.enabled:
            for precision, counters in totals.items():
                for key, value in counters.items():
                    metrics.counter(f"graph.{key}",
                                    precision=precision).inc(value)
            if "int8" in totals:
                metrics.counter("graph.int8_fallbacks").inc(
                    totals["int8"].get("fallbacks", 0))
        tracer = telemetry.tracer
        if tracer.enabled:
            lg_to_cg = {lg: cg_idx for cg_idx, cg in enumerate(plan.cgs)
                        for lg in cg}
            now = cost.clock.now
            for lg, stats in enumerate(per_group):
                for precision, counters in (stats or {}).items():
                    tracer.span("graph_replay", now, 0.0, lg=lg,
                                cg=lg_to_cg.get(lg, 0),
                                precision=precision, **counters)

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _make_executor(self, config: RunConfig, cost: CostModel,
                       mixed: bool, telemetry):
        """A worker pool for ``config.workers > 1``, else None.

        The executor replicates each logical group in a worker process
        (same config, same seed offsets), so it needs exactly the
        inputs ``_build_groups`` consumed.
        """
        if getattr(config, "workers", 1) <= 1:
            return None
        from ..parallel import LgExecutor
        # Worker replicas mirror _build_groups: INT8-only mode also
        # constructs the dual-model trainer, then swaps in the pure
        # INT8 step.
        executor = LgExecutor(
            config, quant=self.options.quant,
            mixed=mixed or self.options.precision == "int8",
            int8_only=self.options.precision == "int8",
            t_cpu=cost.t_cpu_sample, t_npu=cost.t_npu_sample,
            telemetry=telemetry, workers=config.workers)
        if not executor.parallel:                       # pragma: no cover
            executor.close()
            return None
        return executor

    def _build_groups(self, config: RunConfig, mapping: MappingResult,
                      controller: MixedPrecisionController,
                      mixed: bool) -> list[GroupMixedTrainer]:
        options = self.options
        groups: list[GroupMixedTrainer] = []
        base = GroupMixedTrainer(config, controller, options.quant,
                                 seed_offset=0,
                                 mixed=mixed or options.precision == "int8")
        groups.append(base)
        init_state = base.state_dict()
        for g in range(1, mapping.num_groups):
            trainer = GroupMixedTrainer(config, controller, options.quant,
                                        seed_offset=g, mixed=base.mixed)
            trainer.load_state(init_state)
            groups.append(trainer)
        if options.precision == "int8":
            for trainer in groups:
                trainer.train_batch = _int8_only_step(trainer)  # type: ignore
        return groups

    @staticmethod
    def _profile_logits(group: GroupMixedTrainer,
                        val_x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        from ..nn.tensor import Tensor, no_grad
        group.fp32.eval()
        with no_grad():
            logits_fp32 = group.fp32(Tensor(val_x)).data
        logits_int8 = group.int8.predict_logits(val_x)
        return logits_fp32, logits_int8

    def _run_real_epoch(self, config: RunConfig,
                        groups: list[GroupMixedTrainer], epoch: int,
                        rng: np.random.Generator, executor=None) -> None:
        """Cross-group shuffle + lock-step group batches (real math)."""
        n = len(groups)
        order = rng.permutation(len(config.task.x_train))
        shards = np.array_split(order, n)
        # config.batch_size is BS_g: every group steps with a full batch
        # (Table 1 — the paper's "global batch size 64" is per group).
        group_batch = min(config.batch_size, min(len(s) for s in shards))
        steps = max(1, min(len(s) for s in shards) // group_batch)
        if executor is not None and executor.parallel and n > 1:
            # Group-major parallel schedule; bit-identical to the
            # step-major loop below because groups are independent
            # between sync points (see repro.parallel.pool).
            executor.run_epoch(groups, shards, steps, group_batch)
            return
        for step in range(steps):
            for group, shard in zip(groups, shards):
                idx = shard[step * group_batch:(step + 1) * group_batch]
                group.train_batch(config.task.x_train[idx],
                                  config.task.y_train[idx])

    def _charge_epoch(self, config: RunConfig, cost: CostModel,
                      mapping: MappingResult, plan: CommunicationPlan,
                      controller: MixedPrecisionController,
                      scheduler: GlobalScheduler, mixed: bool,
                      epoch: int = 0, layout=None) -> None:
        """Advance the simulated clock for one full-scale epoch.

        ``layout`` is the groups' shared flat parameter layout; with
        bucketed fusion enabled it drives the per-bucket sync timeline
        (each bucket runs the full CG schedule on its payload slice,
        overlapping the backward pass of the step that produced it).
        """
        options = self.options
        telemetry = cost.telemetry
        n = mapping.num_groups
        # SoCs actually hosting groups this epoch (survivors only, when
        # faults shrank the cluster).
        num_active_socs = sum(len(socs) for socs in mapping.groups)
        # BS_g samples per group-step, spread over the group's M/N SoCs.
        per_soc_samples = config.sim_global_batch * n / num_active_socs

        if options.precision == "int8":
            cpu_n, npu_n = 0.0, per_soc_samples
        elif mixed:
            share = controller.cpu_share
            cpu_n = share * per_soc_samples
            npu_n = per_soc_samples - cpu_n
        else:
            cpu_n, npu_n = per_soc_samples, 0.0
        cpu_busy = cpu_n * cost.t_cpu_sample
        npu_busy = npu_n * cost.t_npu_sample
        slowdown = max((scheduler.group_slowdown(socs)
                        for socs in mapping.groups), default=1.0)
        compute_s = max(cpu_busy, npu_busy) * slowdown

        from ..distributed.base import OVERLAP_FRACTION
        payload = cost.grad_bytes

        def branch_sync(nbytes: float, num_tensors: "float | None" = None):
            """(raw, cg_times) of one sync at ``nbytes`` payload."""
            if mapping.num_groups == 1:
                t = cost.fabric.ring_allreduce_time(
                    mapping.groups[0], nbytes, num_tensors=num_tensors)
                return t, [t]
            if options.planning:
                times = plan.planned_sync_seconds(cost.fabric, nbytes,
                                                  num_tensors=num_tensors)
                return sum(times), times
            return plan.unplanned_sync_seconds(
                cost.fabric, nbytes, num_tensors=num_tensors), None

        raw, cg_times = branch_sync(payload)
        if mapping.num_groups > 1 and options.planning:
            # Figure 7: the planned CG schedule interleaves each CG's sync
            # with the other CG's compute, hiding up to a full compute
            # window of synchronisation.
            hidden = min(raw, compute_s)
        else:
            hidden = min(raw, OVERLAP_FRACTION * compute_s)

        bucket_plan = cost.bucket_plan(layout)
        bucket_schedule = None
        if bucket_plan is not None:
            # Bucket granularity: every gradient bucket runs the full CG
            # sequence on its slice of the payload, starting as soon as
            # backward emits it; the overlap timeline then decides how
            # much of the epoch's sync hides under compute.
            bucket_times = [
                branch_sync(b_bytes, num_tensors=b_tensors)[0]
                for b_bytes, b_tensors in zip(
                    bucket_plan.sim_bytes(payload),
                    bucket_plan.sim_tensors(cost.profile.num_tensors))]
            sync_s, hidden, bucket_schedule = cost.overlapped_sync(
                compute_s, bucket_plan, bucket_times, raw, hidden)
            raw = sync_s + hidden
        else:
            sync_s = raw - hidden

        update_s = cost.update_seconds()
        # All N groups step in parallel: one parallel step consumes
        # N * BS_g samples of the epoch.
        steps = max(1, -(-config.sim_samples_per_epoch
                         // (n * config.sim_global_batch)))
        t0 = cost.clock.now
        cost.clock.advance(steps * compute_s, "compute")
        cost.clock.advance(steps * sync_s, "sync")
        cost.clock.attribute(steps * hidden, "sync")
        cost.clock.advance(steps * update_s, "update")
        cost.energy.charge_mixed(steps * cpu_busy, steps * npu_busy,
                                 steps * compute_s, num_active_socs)
        cost.energy.charge_network(steps * sync_s, num_active_socs)
        cost.energy.charge_network(steps * hidden, num_active_socs,
                                   include_idle=False)
        cost.energy.charge_compute(steps * update_s, num_active_socs, 1.0)

        if telemetry.tracer.enabled:
            self._emit_step_spans(telemetry.tracer, mapping, plan, t0, steps,
                                  compute_s, sync_s, hidden, update_s, raw,
                                  cg_times, slowdown, cpu_n, npu_n,
                                  bucket_schedule=bucket_schedule)

        # Epoch tail: one unhidden intra-group sync + the leader ring
        # (delayed aggregation) — "the extra delay of SoCFlow is only one
        # intra-group and inter-group synchronization time".
        tail_t0 = cost.clock.now
        tail = plan.planned_sync_seconds(cost.fabric, payload)
        leaders = [socs[0] for socs in mapping.groups]
        inter = (cost.fabric.ring_allreduce_time(leaders, payload)
                 if len(leaders) > 1 else 0.0)
        cost.charge_epoch_sync(sum(tail) + inter, num_active_socs)

        if telemetry.tracer.enabled:
            self._emit_tail_spans(telemetry.tracer, mapping, plan, tail_t0,
                                  tail, inter, leaders)
        if telemetry.metrics.enabled:
            metrics = telemetry.metrics
            # Exact NIC accounting: `steps` in-epoch intra-group syncs,
            # one tail sync, one leader ring.  Bucketed syncs go through
            # the conservation-checked path: the per-bucket loads must
            # sum to the whole-model loads or the fabric raises.
            if bucket_plan is not None:
                intra = cost.fabric.bucketed_pcb_ring_bytes(
                    mapping.groups, bucket_plan.sim_bytes(payload),
                    total_bytes=payload)
            else:
                intra = cost.fabric.pcb_ring_bytes(mapping.groups, payload)
            for pcb, nbytes in sorted(intra.items()):
                metrics.counter("nic.bytes", pcb=pcb).inc(
                    (steps + 1) * nbytes)
            for pcb, nbytes in sorted(
                    cost.fabric.pcb_ring_bytes([leaders], payload).items()):
                metrics.counter("nic.bytes", pcb=pcb).inc(nbytes)
            metrics.gauge("compute.slowdown").set(slowdown)
            metrics.histogram("sync.hidden_fraction").observe(
                hidden / raw if raw > 0 else 0.0)

    # ------------------------------------------------------------------
    # Telemetry emission (pure observation: no simulation state touched)
    # ------------------------------------------------------------------
    @staticmethod
    def _emit_step_spans(tracer, mapping: MappingResult,
                         plan: CommunicationPlan, t0: float, steps: int,
                         compute_s: float, sync_s: float, hidden: float,
                         update_s: float, raw: float,
                         cg_times: "list[float] | None", slowdown: float,
                         cpu_n: float, npu_n: float,
                         bucket_schedule=None) -> None:
        """Spans for the in-epoch step windows, per SoC with LG/CG tags.

        The epoch's ``steps`` identical step windows are drawn as one
        aggregated compute span and one sync span per SoC; the planned
        CG schedule lays each CG's visible share out sequentially, the
        unplanned fallback draws every ring concurrently.  ``args``
        carry the raw (pre-hiding) and hidden seconds so the trace
        accounts for overlapped communication too.  With bucketed
        fusion, each bucket's collective additionally gets its own span
        (scaled by ``steps``, like the windows it rides in), whose
        ``hidden_s`` arg is the share that ran under backward.
        """
        compute_end = t0 + steps * compute_s
        for lg, socs in enumerate(mapping.groups):
            for soc in socs:
                tracer.span("compute", t0, steps * compute_s, soc=soc,
                            lg=lg, steps=steps, slowdown=slowdown,
                            cpu_samples=cpu_n, npu_samples=npu_n)
        if bucket_schedule:
            for index, (start, end) in enumerate(bucket_schedule):
                tracer.span(
                    "bucket_sync", t0 + steps * start, steps * (end - start),
                    bucket=index, steps=steps,
                    hidden_s=steps * max(0.0, min(end, compute_s) - start))
        visible = steps * sync_s
        if cg_times is not None:
            cursor = compute_end
            for cg_idx, cg in enumerate(plan.cgs):
                if cg_idx >= len(cg_times):
                    break
                share = (cg_times[cg_idx] / raw * visible if raw > 0
                         else 0.0)
                for lg in cg:
                    for soc in mapping.groups[lg]:
                        tracer.span("allreduce", cursor, share, soc=soc,
                                    lg=lg, cg=cg_idx,
                                    raw_s=steps * cg_times[cg_idx],
                                    hidden_s=steps * hidden)
                cursor += share
        else:
            for lg, socs in enumerate(mapping.groups):
                for soc in socs:
                    tracer.span("allreduce", compute_end, visible, soc=soc,
                                lg=lg, raw_s=steps * raw,
                                hidden_s=steps * hidden)
        tracer.span("update", compute_end + visible, steps * update_s,
                    steps=steps)

    @staticmethod
    def _emit_tail_spans(tracer, mapping: MappingResult,
                         plan: CommunicationPlan, tail_t0: float,
                         tail: list[float], inter: float,
                         leaders: list[int]) -> None:
        """The epoch tail: per-CG intra-group syncs, then the leader ring."""
        cursor = tail_t0
        for cg_idx, cg in enumerate(plan.cgs):
            if cg_idx >= len(tail):
                break
            for lg in cg:
                for soc in mapping.groups[lg]:
                    tracer.span("allreduce", cursor, tail[cg_idx],
                                name="allreduce:tail", soc=soc, lg=lg,
                                cg=cg_idx)
            cursor += tail[cg_idx]
        if inter > 0:
            for lg, leader in enumerate(leaders):
                tracer.span("leader_sync", cursor, inter, soc=leader,
                            lg=lg, num_leaders=len(leaders))

    @staticmethod
    def _record_epoch_telemetry(telemetry, cost: CostModel, epoch: int,
                                epoch_t0: float, phases0: dict,
                                accuracy: float, controller, mapping,
                                hidden0: dict | None = None) -> None:
        """Per-epoch report row, epoch span, and epoch-level metrics."""
        phases1 = cost.clock.breakdown()
        delta = {phase: phases1.get(phase, 0.0) - phases0.get(phase, 0.0)
                 for phase in phases1}
        seconds = cost.clock.now - epoch_t0
        alpha = controller.alpha if controller is not None else None
        hidden1 = cost.clock.attributed_breakdown()
        hidden_s = (hidden1.get("sync", 0.0)
                    - (hidden0 or {}).get("sync", 0.0))
        telemetry.record_epoch(
            epoch=epoch, seconds=seconds,
            compute_s=delta.get("compute", 0.0),
            sync_s=delta.get("sync", 0.0),
            hidden_s=hidden_s,
            update_s=delta.get("update", 0.0),
            recovery_s=delta.get("recovery") or None,
            accuracy=accuracy, alpha=alpha,
            retries=cost.fabric.total_retries)
        if telemetry.tracer.enabled:
            telemetry.tracer.span(
                "epoch", epoch_t0, seconds, name=f"epoch {epoch}",
                epoch=epoch, accuracy=accuracy,
                num_groups=mapping.num_groups,
                **({"alpha": alpha} if alpha is not None else {}))
        metrics = telemetry.metrics
        if metrics.enabled:
            metrics.counter("epochs").inc()
            metrics.histogram("epoch.seconds").observe(seconds)
            for phase, value in sorted(delta.items()):
                metrics.counter("phase.seconds", phase=phase).inc(value)
            if alpha is not None:
                metrics.gauge("mixed.alpha").set(alpha)
                metrics.gauge("mixed.beta").set(controller.beta)
                metrics.gauge("mixed.cpu_share").set(controller.cpu_share)

    @staticmethod
    def _try_resume(path: str, groups: list[GroupMixedTrainer],
                    controller: MixedPrecisionController,
                    history: list[float], config: RunConfig) -> int:
        """Restore a prior run's state; returns the epoch to resume at."""
        from .checkpoint import TrainingCheckpoint
        try:
            checkpoint = TrainingCheckpoint.load(path)
        except FileNotFoundError:
            return 0
        for group in groups:
            group.load_state(checkpoint.model_state)
        controller.alpha = checkpoint.alpha
        history.extend(checkpoint.accuracy_history)
        return min(checkpoint.epoch + 1, config.max_epochs)

    @staticmethod
    def _write_checkpoint(path: str, group: GroupMixedTrainer, epoch: int,
                          history: list[float],
                          controller: MixedPrecisionController,
                          cost: CostModel, config: RunConfig) -> None:
        from .checkpoint import TrainingCheckpoint
        checkpoint = TrainingCheckpoint(
            model_state=group.state_dict(), epoch=epoch,
            accuracy_history=list(history), alpha=controller.alpha,
            rng_seed=config.seed, meta={"model": config.model_name})
        checkpoint.save(path)
        # writing to UFS happens off the critical path on every SoC,
        # but the leader's write is charged once per epoch
        write_t0 = cost.clock.now
        write_s = checkpoint.write_seconds()
        cost.clock.advance(write_s, "update")
        if cost.telemetry.tracer.enabled:
            cost.telemetry.tracer.span("checkpoint", write_t0, write_s,
                                       name="checkpoint:epoch", epoch=epoch)

    def _recover(self, config: RunConfig, controller,
                 groups: list[GroupMixedTrainer], dead: set[int],
                 survivors: list[int], last_good: tuple[dict, int],
                 cost: CostModel, scheduler: GlobalScheduler,
                 recoveries: list[dict], epoch: int):
        """Roll back and re-form groups after the dead set changes.

        Eq. 1 group sizing and the mapping/CG planning re-run on the
        shrunken (or re-grown) survivor set, and the recovery step is
        charged to the clock.  Only the *weights* roll back to the last
        merged checkpoint: the surviving trainers are reused so their
        warm runtime state (optimizer momentum, INT8 calibration RNG)
        carries across the recovery instead of resetting — rebuilding
        from scratch measurably stalls the mixed-precision path.
        """
        base_groups = config.num_groups if self.options.grouping else 1
        num_groups = survivor_group_count(
            len(survivors), base_groups, config.topology.num_socs)
        mapping = self._build_mapping(config, alive=set(survivors),
                                      num_groups=num_groups)
        plan = CommunicationPlan.from_mapping(mapping)
        rollback_state, rollback_epoch = last_good
        groups = reform_groups(
            config, controller, self.options.quant, groups, num_groups,
            rollback_state, int8_only=self.options.precision == "int8")
        recovery_t0 = cost.clock.now
        recovery_s = scheduler.recovery_seconds(cost.grad_bytes, cost.fabric,
                                                survivors)
        # The recovery step is priced on a scratch clock under its own
        # phase and merged in, so the per-epoch report can attribute it
        # separately from ordinary synchronisation.
        recovery_clock = PhaseClock()
        recovery_clock.advance(recovery_s, "recovery")
        cost.clock.merge(recovery_clock)
        cost.energy.charge_network(recovery_s, len(survivors))
        telemetry = cost.telemetry
        if telemetry.tracer.enabled:
            telemetry.tracer.span(
                "recovery", recovery_t0, recovery_s,
                name=f"recovery@{epoch}", dead_socs=sorted(dead),
                survivors=len(survivors), num_groups=mapping.num_groups,
                rolled_back_to=rollback_epoch)
        if telemetry.metrics.enabled:
            telemetry.metrics.counter("recovery.count").inc()
            telemetry.metrics.histogram("recovery.seconds").observe(
                recovery_s)
        recoveries.append({
            "epoch": epoch,
            "dead_socs": sorted(dead),
            "num_groups": mapping.num_groups,
            "rolled_back_to": rollback_epoch,
            "recovery_seconds": recovery_s,
        })
        return mapping, plan, groups

    def _handle_preemption(self, event: PreemptionEvent,
                           groups: list[GroupMixedTrainer], preempted: int,
                           cost: CostModel, model_bytes: float) -> int:
        """Terminate whole logical groups; checkpoint their models."""
        newly = min(event.num_groups, len(groups) - preempted - 1)
        if newly > 0:
            checkpoint_t0 = cost.clock.now
            checkpoint_s = GlobalScheduler.checkpoint_seconds(model_bytes)
            cost.clock.advance(checkpoint_s, "sync")
            telemetry = cost.telemetry
            if telemetry.tracer.enabled:
                telemetry.tracer.event("preemption", checkpoint_t0,
                                       epoch=event.epoch, num_groups=newly)
                telemetry.tracer.span("checkpoint", checkpoint_t0,
                                      checkpoint_s, name="checkpoint:preempt",
                                      model_bytes=model_bytes)
            telemetry.metrics.counter("preemptions.groups").inc(newly)
        return preempted + max(0, newly)


def _int8_only_step(trainer: GroupMixedTrainer):
    """Replace the mixed step with a pure INT8 step (Ours-INT8 mode)."""
    def step(x, y):
        trainer.int8.train_step(x, y)
        state = trainer.int8.model.state_dict()
        trainer.fp32.load_state_dict(state)
    return step


def build_socflow(**kwargs) -> SoCFlow:
    """Convenience constructor: ``build_socflow(planning=False, ...)``."""
    return SoCFlow(SoCFlowOptions(**kwargs))
