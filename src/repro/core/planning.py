"""Communication-group division and the pipelined sync schedule (§3.1).

Logical groups whose intra-group Ring-AllReduce crosses a PCB boundary
contend for the shared PCB NICs.  SoCFlow puts mutually-contending
groups into different *communication groups* (CGs) and runs the CGs'
synchronisations one after another, interleaved with compute (Figure 7),
so no two contending rings are ever on the wire together.

CG division is graph colouring on the conflict graph; Theorem 2 of the
integrity-greedy mapping bounds every vertex degree by 2, so the graph
is a union of paths/cycles and two colours suffice via DFS (the paper's
"minimum bipartite graph colouring").  A greedy fallback covers
non-integrity mappings, whose conflict graphs can be arbitrary.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..cluster.network import NetworkFabric
from .mapping import MappingResult

__all__ = ["build_conflict_graph", "divide_into_cgs", "CommunicationPlan"]


def build_conflict_graph(mapping: MappingResult) -> nx.Graph:
    """Vertices = logical groups; edge = the two groups share a PCB NIC."""
    graph = nx.Graph()
    graph.add_nodes_from(range(mapping.num_groups))
    split = sorted(mapping.split_groups)
    pcbs_of = {g: {mapping.topology.pcb_of(s) for s in mapping.groups[g]}
               for g in split}
    for i, g in enumerate(split):
        for h in split[i + 1:]:
            if pcbs_of[g] & pcbs_of[h]:
                graph.add_edge(g, h)
    return graph


def divide_into_cgs(mapping: MappingResult) -> list[list[int]]:
    """Colour the conflict graph; each colour class is one CG.

    Non-split groups never contend, so they join the first CG.  With an
    integrity-greedy mapping the result has at most two CGs.
    """
    graph = build_conflict_graph(mapping)
    colors: dict[int, int] = {}
    # DFS 2-colouring on each component; greedy fallback on odd cycles.
    for component in nx.connected_components(graph):
        nodes = sorted(component)
        try:
            two_color = nx.algorithms.bipartite.color(graph.subgraph(nodes))
            colors.update(two_color)
        except nx.NetworkXError:
            greedy = nx.coloring.greedy_color(graph.subgraph(nodes),
                                              strategy="DSATUR")
            colors.update(greedy)
    num_colors = max(colors.values(), default=0) + 1
    cgs: list[list[int]] = [[] for _ in range(num_colors)]
    for group in range(mapping.num_groups):
        cgs[colors.get(group, 0)].append(group)
    return [cg for cg in cgs if cg]


@dataclass
class CommunicationPlan:
    """A full schedule: which rings sync together, and in what order."""

    mapping: MappingResult
    cgs: list[list[int]]

    @classmethod
    def from_mapping(cls, mapping: MappingResult) -> "CommunicationPlan":
        return cls(mapping, divide_into_cgs(mapping))

    @property
    def num_cgs(self) -> int:
        return len(self.cgs)

    def planned_sync_seconds(self, fabric: NetworkFabric, nbytes: float,
                             num_tensors: float | None = None) -> list[float]:
        """Per-CG ring all-reduce times, run in sequence (no contention).

        ``num_tensors`` prices the schedule for one gradient *bucket*
        (bucketed fusion interleaves the pipelined CGs at bucket
        granularity: every bucket runs the full CG sequence on its own
        slice of the payload).
        """
        times: list[float] = []
        for cg in self.cgs:
            rings = [self.mapping.groups[g] for g in cg]
            times.append(fabric.concurrent_ring_allreduce_time(
                rings, nbytes, num_tensors=num_tensors))
        return times

    def unplanned_sync_seconds(self, fabric: NetworkFabric, nbytes: float,
                               num_tensors: float | None = None) -> float:
        """All rings at once (what happens without planning)."""
        return fabric.concurrent_ring_allreduce_time(
            self.mapping.groups, nbytes, num_tensors=num_tensors)

    def step_sync_seconds(self, fabric: NetworkFabric, nbytes: float,
                          compute_seconds: float,
                          planned: bool = True) -> float:
        """Effective per-step sync cost after pipelining (Figure 7).

        With planning, CG k's communication hides under CG k+1's compute;
        the schedule's residual cost is whatever the compute window
        cannot absorb.  Without planning, all rings contend and only the
        generic overlap fraction applies (handled by the caller).
        """
        if not planned:
            return self.unplanned_sync_seconds(fabric, nbytes)
        total = sum(self.planned_sync_seconds(fabric, nbytes))
        return max(0.0, total - compute_seconds)
