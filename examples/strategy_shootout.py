#!/usr/bin/env python
"""Scenario: compare every distributed strategy on one workload.

Reproduces the paper's evaluation loop in miniature: all six baselines
plus SoCFlow train the same ResNet-18 job on the same simulated 32-SoC
server; the script prints a Figure-8/9/12-style summary table and the
topology decisions SoCFlow made (mapping conflicts, communication
groups).

Run:  python examples/strategy_shootout.py
"""

from repro.core import SoCFlow, SoCFlowOptions, integrity_greedy_mapping
from repro.core.planning import CommunicationPlan
from repro.distributed import STRATEGY_REGISTRY, build_strategy
from repro.harness import format_table, make_run_config


def main() -> None:
    config = make_run_config("resnet18", "quick", num_socs=32,
                             num_groups=4, max_epochs=4)

    results = {}
    for name in ["ps", "ring", "hipress", "2d_paral", "fedavg", "t_fedavg"]:
        results[name] = build_strategy(name).train(config)
    results["socflow"] = SoCFlow(SoCFlowOptions()).train(config)

    rows = []
    for name, result in results.items():
        shares = result.phase_shares()
        rows.append([
            name,
            f"{result.best_accuracy:.1%}",
            round(result.sim_time_hours, 3),
            round(result.energy.total_kj, 1),
            f"{shares.get('sync', 0):.0%}",
        ])
    print(format_table(
        ["method", "best_acc", "hours", "energy_kJ", "sync_share"], rows))

    socflow = results["socflow"]
    ring = results["ring"]
    print(f"\nSoCFlow vs RING: {ring.sim_time_s / socflow.sim_time_s:.1f}x "
          f"faster, {ring.energy.total_j / socflow.energy.total_j:.1f}x "
          f"less energy")

    # Peek under the hood: the logical->physical mapping and CG plan.
    mapping = integrity_greedy_mapping(config.topology, config.num_groups)
    plan = CommunicationPlan.from_mapping(mapping)
    print("\nSoCFlow topology decisions:")
    for g, socs in enumerate(mapping.groups):
        split = " (splits PCBs)" if g in mapping.split_groups else ""
        print(f"  logical group {g}: SoCs {socs}{split}")
    print(f"  NIC conflict count C = {mapping.conflict_count()}")
    print(f"  communication groups = {plan.cgs}")


if __name__ == "__main__":
    main()
