"""Figure 8: end-to-end training time at 32 SoCs, all methods.

Two tables: raw hours for the shared epoch budget, and
convergence-adjusted hours (time to first reach a common accuracy
target, with a penalty for methods that never do — the paper's
time-to-convergence semantics).  Checks the paper's shape: PS slowest
by far, RING far behind SoCFlow, SoCFlow fastest overall and inside the
nightly idle window.
"""

from conftest import METHODS, convergence_adjusted_hours, print_block

from repro.cluster import TidalTrace
from repro.harness import format_table

WORKLOADS_FIG8 = ["mobilenet", "vgg11", "resnet18", "lenet5_emnist",
                  "lenet5_fmnist"]
DML = ("ps", "ring", "hipress", "2d_paral")


def test_fig08_end_to_end_training_time(benchmark, suite):
    def compute():
        raw, adjusted = {}, {}
        for workload in WORKLOADS_FIG8:
            results = {m: suite.run(workload, m) for m in METHODS}
            target = 0.85 * max(r.best_accuracy for r in results.values())
            raw[workload] = {m: r.sim_time_hours
                             for m, r in results.items()}
            adjusted[workload] = {
                m: convergence_adjusted_hours(r, target)
                for m, r in results.items()}
        return raw, adjusted

    raw, adjusted = benchmark.pedantic(compute, rounds=1, iterations=1)

    for title, table in [("equal epochs", raw),
                         ("convergence-adjusted", adjusted)]:
        rows = [[w, *(round(table[w][m], 4) for m in METHODS)]
                for w in WORKLOADS_FIG8]
        print_block(f"Figure 8: training time (hours, 32 SoCs, {title})",
                    format_table(["workload", *METHODS], rows))

    idle_hours = TidalTrace().longest_idle_window(0.25).duration_hours
    for workload in WORKLOADS_FIG8:
        times = raw[workload]
        # SoCFlow fastest among the per-batch distributed-ML methods
        assert times["socflow"] < min(times[m] for m in DML), workload
        # PS the slowest DML method
        assert times["ps"] == max(times[m] for m in DML)
        # the headline deployment claim: SoCFlow fits the idle window
        assert times["socflow"] < idle_hours, workload

    # vs federated learning the honest metric is time-to-accuracy:
    # FedAvg's cheap rounds lose to its slow convergence on average
    mean_socflow = sum(adjusted[w]["socflow"]
                       for w in WORKLOADS_FIG8) / len(WORKLOADS_FIG8)
    mean_fedavg = sum(adjusted[w]["fedavg"]
                      for w in WORKLOADS_FIG8) / len(WORKLOADS_FIG8)
    print_block("Mean convergence-adjusted hours", format_table(
        ["method", "hours"], [["socflow", round(mean_socflow, 4)],
                              ["fedavg", round(mean_fedavg, 4)]]))

    speedup_ring = raw["vgg11"]["ring"] / raw["vgg11"]["socflow"]
    speedup_ps = raw["vgg11"]["ps"] / raw["vgg11"]["socflow"]
    print_block("VGG-11 speedups vs SoCFlow", format_table(
        ["baseline", "slowdown_factor"],
        [["ring", round(speedup_ring, 1)], ["ps", round(speedup_ps, 1)]]))
    # paper: RING 14.8-143x, PS 94-740x; require the same magnitude order
    assert speedup_ring > 5
    assert speedup_ps > speedup_ring
