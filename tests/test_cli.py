"""CLI: argument parsing and command outputs."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "imagenet"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "socflow"
        assert args.socs == 32


class TestListCommand:
    def test_lists_everything(self):
        code, output = run_cli(["list"])
        assert code == 0
        assert "socflow" in output
        assert "vgg11" in output
        assert "quick" in output


class TestTraceCommand:
    def test_prints_trace_and_window(self):
        code, output = run_cli(["trace", "--threshold", "0.25"])
        assert code == 0
        assert "longest idle window" in output
        assert "busy" in output


class TestRunCommand:
    def test_run_lenet_quick(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "socflow",
            "--epochs", "1", "--socs", "16"])
        assert code == 0
        assert "socflow" in output
        assert "accuracy per epoch" in output

    def test_run_baseline(self):
        code, output = run_cli([
            "run", "--workload", "lenet5_fmnist", "--method", "fedavg",
            "--epochs", "1", "--socs", "8"])
        assert code == 0
        assert "fedavg" in output


class TestCompareCommand:
    def test_compare_two_methods(self):
        code, output = run_cli([
            "compare", "--workload", "lenet5_fmnist",
            "--methods", "ring,socflow", "--epochs", "1", "--socs", "8"])
        assert code == 0
        assert "ring" in output and "socflow" in output

    def test_unknown_method_fails_cleanly(self):
        code, _ = run_cli([
            "compare", "--workload", "lenet5_fmnist",
            "--methods", "warpdrive", "--epochs", "1"])
        assert code == 2
