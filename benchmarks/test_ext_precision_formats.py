"""Extension: the §5 future-work precision formats, INT4/8/16 and FP16.

"These NPUs now concurrently accommodate a diverse range of
low-precision data formats, including INT4, INT8, INT16, and FP16."
This sweep trains the same model under each format on the simulated NPU
and reports accuracy — the expected shape is monotone in precision,
with FP16 ~lossless and INT4 visibly degraded.
"""

import numpy as np
from conftest import print_block

from repro.data import load_dataset
from repro.distributed.base import evaluate_accuracy
from repro.harness import format_table
from repro.nn.models import build_model
from repro.quant import Int8Trainer, QuantConfig

FORMATS = {
    "int4": QuantConfig(bits=4),
    "int8": QuantConfig(bits=8),
    "int16": QuantConfig(bits=16),
    "fp16": QuantConfig(float16=True),
}
EPOCHS = 5


def _train_with(config: QuantConfig, task) -> float:
    model = build_model("vgg11", num_classes=task.num_classes,
                        in_channels=3, image_size=16, width=0.25, seed=0)
    trainer = Int8Trainer(model, lr=0.05, config=config, momentum=0.9,
                          seed=0)
    rng = np.random.default_rng(0)
    best = 0.0
    for _ in range(EPOCHS):
        order = rng.permutation(len(task.x_train))
        for start in range(0, len(order) - 15, 16):
            idx = order[start:start + 16]
            trainer.train_step(task.x_train[idx], task.y_train[idx])
        best = max(best, evaluate_accuracy(model, task.x_test, task.y_test))
    return best


def test_precision_format_sweep(benchmark):
    def compute():
        task = load_dataset("cifar10", scale=0.04, image_size=16, seed=0)
        return {name: _train_with(config, task)
                for name, config in FORMATS.items()}

    accuracy = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block("§5 extension: NPU format sweep (VGG-11)",
                format_table(["format", "best_acc_pct"],
                             [[name, round(100 * acc, 1)]
                              for name, acc in accuracy.items()]))

    # INT4 is the lossy end; every wider format beats it
    assert accuracy["int8"] > accuracy["int4"]
    assert accuracy["int16"] > accuracy["int4"]
    assert accuracy["fp16"] > accuracy["int4"]
    # INT4 still learns something (it is usable for tiny tasks)
    assert accuracy["int4"] > 0.15
