"""State-dict arithmetic shared by all aggregation schemes, plus the
timeout/retry policy collectives apply over degraded links."""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

StateDict = "OrderedDict[str, np.ndarray]"

__all__ = ["RetryPolicy", "average_states", "weighted_average_states",
           "state_l2_distance", "zeros_like_state"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry with exponential backoff for degraded links.

    A transfer crossing a PCB NIC running at a bandwidth multiplier at
    or below ``degraded_threshold`` starts missing its transport
    timeout; the sender retries with exponentially growing backoff.
    The model is deterministic: the number of timed-out attempts grows
    with the severity of the degradation (halving the bandwidth again
    costs one more retry), capped at ``max_retries``.
    """

    timeout_s: float = 1.0
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    max_retries: int = 5
    degraded_threshold: float = 0.5

    def __post_init__(self):
        if self.timeout_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timeout and backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 < self.degraded_threshold <= 1.0:
            raise ValueError("degraded_threshold must be in (0, 1]")

    def retries_for(self, multiplier: float) -> int:
        """Timed-out attempts for a link at ``multiplier`` of nominal."""
        if multiplier >= 1.0 or multiplier > self.degraded_threshold:
            return 0
        if multiplier <= 0.0:
            return self.max_retries
        severity = self.degraded_threshold / multiplier
        return min(self.max_retries, 1 + int(math.floor(math.log2(severity))))

    def penalty_seconds(self, retries: int) -> float:
        """Wall-time cost of ``retries`` timed-out attempts + backoffs."""
        retries = min(retries, self.max_retries)
        if retries <= 0:
            return 0.0
        backoff = sum(self.backoff_base_s * self.backoff_factor ** k
                      for k in range(retries))
        return retries * self.timeout_s + backoff


def average_states(states: Sequence[dict], metrics=None
                   ) -> "OrderedDict[str, np.ndarray]":
    """Uniform element-wise average of model state dicts."""
    if not states:
        raise ValueError("need at least one state")
    return weighted_average_states(states, [1.0] * len(states),
                                   metrics=metrics)


def weighted_average_states(states: Sequence[dict],
                            weights: Sequence[float],
                            metrics=None
                            ) -> "OrderedDict[str, np.ndarray]":
    """Weighted element-wise average (weights are normalised).

    ``metrics`` optionally takes a telemetry
    :class:`~repro.telemetry.MetricsRegistry`; each call then counts one
    ``comm.merges`` and the state bytes actually averaged
    (``comm.merged_bytes``) — this is the *real* data-plane aggregation
    every strategy performs, as opposed to the simulated-scale transfer
    accounting in :class:`~repro.cluster.network.NetworkFabric`.
    """
    if len(states) != len(weights):
        raise ValueError("one weight per state required")
    total = float(sum(weights))
    if total <= 0 or not math.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    keys = list(states[0].keys())
    for state in states[1:]:
        if list(state.keys()) != keys:
            raise ValueError("state dicts have mismatched keys")
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for key in keys:
        acc = np.zeros_like(np.asarray(states[0][key], dtype=np.float64))
        for state, weight in zip(states, weights):
            acc += (weight / total) * state[key]
        out[key] = acc.astype(states[0][key].dtype)
    if metrics is not None and metrics.enabled:
        nbytes = sum(np.asarray(v).nbytes for v in out.values())
        metrics.counter("comm.merges").inc()
        metrics.counter("comm.merged_bytes").inc(nbytes * len(states))
    return out


def state_l2_distance(a: dict, b: dict) -> float:
    """L2 distance between two state dicts (divergence diagnostics)."""
    total = 0.0
    for key in a:
        diff = np.asarray(a[key], dtype=np.float64) - b[key]
        total += float(np.sum(diff * diff))
    return math.sqrt(total)


def zeros_like_state(state: dict) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((k, np.zeros_like(v)) for k, v in state.items())
