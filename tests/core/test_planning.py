"""Communication-group division and the pipelined schedule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterTopology, NetworkFabric
from repro.core import (CommunicationPlan, build_conflict_graph,
                        divide_into_cgs, integrity_greedy_mapping,
                        naive_mapping)

MB = 1e6


def plan_for(num_socs, num_groups, builder=integrity_greedy_mapping):
    topo = ClusterTopology(num_socs=num_socs)
    mapping = builder(topo, num_groups)
    return CommunicationPlan.from_mapping(mapping), NetworkFabric(topo)


class TestConflictGraph:
    def test_no_edges_when_groups_align_with_pcbs(self):
        topo = ClusterTopology(num_socs=20, socs_per_pcb=5)
        mapping = integrity_greedy_mapping(topo, 4)
        graph = build_conflict_graph(mapping)
        assert graph.number_of_edges() == 0

    def test_split_groups_sharing_pcb_conflict(self):
        topo = ClusterTopology(num_socs=15, socs_per_pcb=5)
        mapping = naive_mapping(topo, 5)
        graph = build_conflict_graph(mapping)
        assert graph.number_of_edges() >= 1


class TestCgDivision:
    def test_all_groups_appear_exactly_once(self):
        plan, _ = plan_for(32, 8)
        flat = sorted(g for cg in plan.cgs for g in cg)
        assert flat == list(range(8))

    def test_no_conflicting_pair_in_same_cg(self):
        plan, _ = plan_for(32, 8)
        graph = build_conflict_graph(plan.mapping)
        for cg in plan.cgs:
            members = set(cg)
            for a in cg:
                assert not (set(graph.neighbors(a)) & members)

    @given(st.integers(6, 60), st.integers(2, 12))
    @settings(max_examples=50, deadline=None)
    def test_integrity_mapping_needs_at_most_two_cgs(self, num_socs,
                                                     num_groups):
        """Theorem 2 -> bipartite -> 2 colours suffice (paper §3.1)."""
        num_groups = min(num_groups, num_socs)
        topo = ClusterTopology(num_socs=num_socs)
        mapping = integrity_greedy_mapping(topo, num_groups)
        assert len(divide_into_cgs(mapping)) <= 2

    @given(st.integers(6, 60), st.integers(2, 12))
    @settings(max_examples=50, deadline=None)
    def test_naive_mapping_still_gets_valid_colouring(self, num_socs,
                                                      num_groups):
        num_groups = min(num_groups, num_socs)
        topo = ClusterTopology(num_socs=num_socs)
        mapping = naive_mapping(topo, num_groups)
        cgs = divide_into_cgs(mapping)
        graph = build_conflict_graph(mapping)
        for cg in cgs:
            members = set(cg)
            for a in cg:
                assert not (set(graph.neighbors(a)) & members)


class TestOddCycleFallback:
    def test_triangle_conflict_graph_gets_three_cgs(self):
        """Hand-built mapping where three split groups pairwise share
        PCBs (an odd cycle): the bipartite 2-colouring cannot apply and
        the DSATUR fallback must produce a valid 3-colouring."""
        from repro.core.mapping import MappingResult
        topo = ClusterTopology(num_socs=9, socs_per_pcb=3)
        groups = [[0, 3],   # PCBs 0,1
                  [4, 6],   # PCBs 1,2
                  [1, 7],   # PCBs 0,2  -> triangle with the first two
                  [2], [5], [8]]
        mapping = MappingResult(groups, topo)
        graph = build_conflict_graph(mapping)
        assert graph.number_of_edges() == 3
        cgs = divide_into_cgs(mapping)
        assert len(cgs) == 3
        for cg in cgs:
            members = set(cg)
            for a in cg:
                assert not (set(graph.neighbors(a)) & members)


class TestScheduleCosts:
    def test_planned_sequence_no_worse_than_unplanned(self):
        plan, fabric = plan_for(32, 8)
        planned_total = sum(plan.planned_sync_seconds(fabric, 30 * MB))
        unplanned = plan.unplanned_sync_seconds(fabric, 30 * MB)
        # sequencing trades concurrency for contention-freedom; with the
        # pipeline hiding (step_sync_seconds) it must not lose overall
        residual_planned = plan.step_sync_seconds(
            fabric, 30 * MB, compute_seconds=planned_total, planned=True)
        assert residual_planned <= unplanned

    def test_full_hiding_when_compute_dominates(self):
        plan, fabric = plan_for(32, 8)
        assert plan.step_sync_seconds(fabric, 30 * MB,
                                      compute_seconds=1e9) == 0.0

    def test_no_hiding_without_compute(self):
        plan, fabric = plan_for(32, 8)
        total = sum(plan.planned_sync_seconds(fabric, 30 * MB))
        assert plan.step_sync_seconds(fabric, 30 * MB, 0.0) == \
            pytest.approx(total)

    def test_unplanned_ignores_compute(self):
        plan, fabric = plan_for(32, 8)
        a = plan.step_sync_seconds(fabric, 30 * MB, 100.0, planned=False)
        b = plan.unplanned_sync_seconds(fabric, 30 * MB)
        assert a == pytest.approx(b)

    def test_num_cgs_property(self):
        plan, _ = plan_for(32, 8)
        assert plan.num_cgs == len(plan.cgs)
