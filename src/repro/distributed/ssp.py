"""Stale-Synchronous Parallel (SSP) baseline (Ho et al., NIPS'13).

The paper's related work (§6) discusses SSP as the classic middle
ground between fully synchronous SGD and federated averaging: workers
read parameters from a local cache and only synchronise when their
clock drifts more than ``staleness`` steps from the slowest worker.

Execution model here: worker groups run locally for ``staleness``
batches between parameter-server synchronisations, so both the real
math (periodic averaging every ``staleness`` steps) and the cost model
(PS sync every ``staleness`` steps instead of every step) interpolate
between PS (staleness=1) and FedAvg (staleness=steps-per-epoch).
"""

from __future__ import annotations

import numpy as np

from ..comm.primitives import average_states
from ..data.loader import iid_partition
from ..nn.optim import SGD
from .base import (CostModel, RunConfig, Strategy, StrategyResult,
                   evaluate_accuracy, fp32_train_step, make_model,
                   record_epoch_telemetry)

__all__ = ["StaleSynchronous"]

#: simulated worker groups executing divergent local chains
_NUM_CHAINS = 4


class StaleSynchronous(Strategy):
    name = "ssp"

    def __init__(self, staleness: int = 8):
        if staleness < 1:
            raise ValueError("staleness must be >= 1")
        self.staleness = staleness

    def train(self, config: RunConfig) -> StrategyResult:
        cost = CostModel(config, telemetry=config.telemetry)
        chains = [make_model(config) for _ in range(_NUM_CHAINS)]
        shared = chains[0].state_dict()
        for chain in chains:
            chain.load_state_dict(shared)
        optimizers = [SGD(chain.parameters(), lr=config.lr,
                          momentum=config.momentum,
                          weight_decay=config.weight_decay,
                          flat=chain.flatten_parameters())
                      for chain in chains]
        if config.graph:
            for chain in chains:
                chain.enable_graph_executor()
        shards = iid_partition(config.task.x_train, config.task.y_train,
                               _NUM_CHAINS, seed=config.seed)

        # Simulated cost: every SoC computes its slice per step; one PS
        # sync every `staleness` steps.
        per_soc = config.sim_global_batch / config.topology.num_socs
        compute_s = cost.compute_seconds(per_soc, "cpu")
        sync_s = cost.fabric.parameter_server_time(
            list(range(config.topology.num_socs)), cost.grad_bytes)

        rng = np.random.default_rng(config.seed)
        telemetry = cost.telemetry
        history: list[float] = []
        state: dict = {}
        for epoch in range(config.max_epochs):
            epoch_t0 = cost.clock.now
            if telemetry.enabled:
                phases0 = cost.clock.breakdown()
                hidden0 = cost.clock.attributed_breakdown().get("sync", 0.0)
            orders = [rng.permutation(len(shard)) for shard in shards]
            steps = min(len(o) for o in orders) // config.batch_size
            since_sync = 0
            for step in range(steps):
                for chain, optimizer, shard, order in zip(
                        chains, optimizers, shards, orders):
                    idx = order[step * config.batch_size:
                                (step + 1) * config.batch_size]
                    fp32_train_step(chain, optimizer, shard.x[idx],
                                    shard.y[idx])
                since_sync += 1
                if since_sync >= self.staleness:
                    merged = average_states([c.state_dict()
                                             for c in chains])
                    for chain in chains:
                        chain.load_state_dict(merged)
                    since_sync = 0
            # cost model at paper scale
            sim_steps = cost.steps_per_epoch
            sim_syncs = sim_steps // self.staleness
            for _ in range(sim_steps):
                cost.charge_step(compute_s, 0.0, config.topology.num_socs)
            cost.charge_epoch_sync(sim_syncs * sync_s,
                                   config.topology.num_socs)

            merged = average_states([c.state_dict() for c in chains])
            chains[0].load_state_dict(merged)
            accuracy = evaluate_accuracy(chains[0], config.task.x_test,
                                         config.task.y_test)
            for chain in chains[1:]:
                chain.load_state_dict(merged)
            self._epoch_accuracy_bookkeeping(accuracy, epoch, config,
                                             history, state)
            if telemetry.enabled:
                record_epoch_telemetry(telemetry, cost, epoch, epoch_t0,
                                       phases0, hidden0, accuracy)
        return self._result(self.name, config, cost, history, state,
                            extra={"staleness": self.staleness})
