"""Extension ablations: the §4.1 optimisations without their own figure.

(1) Underclocking-aware workload rebalancing: a DVFS event slows one
    SoC; rebalancing moves batch shares to its group peers instead of
    letting it straggle.
(2) Checkpoint-based preemption: terminating logical groups mid-run
    costs accuracy gracefully instead of killing the job.
"""

from conftest import print_block

from repro.core import (PreemptionEvent, SoCFlow, SoCFlowOptions,
                        UnderclockEvent)
from repro.harness import format_table


def test_underclocking_rebalancing(benchmark, suite):
    def compute():
        config = suite.config("vgg11", num_socs=32, max_epochs=3)
        events = tuple(UnderclockEvent(epoch=0, soc=s, factor=0.5)
                       for s in (0, 9))
        baseline = SoCFlow(SoCFlowOptions()).train(config)
        straggler = SoCFlow(SoCFlowOptions(
            events=events, rebalance=False)).train(config)
        rebalanced = SoCFlow(SoCFlowOptions(
            events=events, rebalance=True)).train(config)
        return baseline, straggler, rebalanced

    baseline, straggler, rebalanced = benchmark.pedantic(compute, rounds=1,
                                                         iterations=1)
    rows = [["no underclock", round(baseline.sim_time_hours, 4)],
            ["underclocked, no rebalance",
             round(straggler.sim_time_hours, 4)],
            ["underclocked, rebalanced",
             round(rebalanced.sim_time_hours, 4)]]
    print_block("§4.1 optimisation 2: underclocking-aware rebalancing",
                format_table(["configuration", "hours"], rows))

    assert baseline.sim_time_s < rebalanced.sim_time_s < \
        straggler.sim_time_s
    # rebalancing recovers most of the straggler penalty
    penalty_raw = straggler.sim_time_s - baseline.sim_time_s
    penalty_rebalanced = rebalanced.sim_time_s - baseline.sim_time_s
    assert penalty_rebalanced < 0.5 * penalty_raw


def test_preemption_graceful_degradation(benchmark, suite):
    def compute():
        config = suite.config("vgg11", num_socs=32, max_epochs=4)
        normal = SoCFlow(SoCFlowOptions()).train(config)
        preempted = SoCFlow(SoCFlowOptions(
            events=(PreemptionEvent(epoch=2, num_groups=4),))).train(config)
        return normal, preempted

    normal, preempted = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block("Preemption: losing half the groups at epoch 2",
                format_table(
                    ["run", "final_acc_pct", "hours", "groups_lost"],
                    [["uninterrupted",
                      round(100 * normal.final_accuracy, 1),
                      round(normal.sim_time_hours, 4), 0],
                     ["preempted",
                      round(100 * preempted.final_accuracy, 1),
                      round(preempted.sim_time_hours, 4),
                      preempted.extra["groups_preempted"]]]))

    # training survives the preemption and still produces a model
    assert preempted.epochs_run == normal.epochs_run
    assert preempted.extra["groups_preempted"] == 4
    assert preempted.final_accuracy > 0.0
