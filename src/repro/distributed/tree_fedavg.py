"""Tree-aggregated hierarchical FedAvg (Jayaram et al. / Mhaisen et al.).

Identical client-side math to :class:`~repro.distributed.FedAvg` —
Table 3 reports the same accuracy for both — but aggregation flows up a
two-level tree (PCB members -> PCB leader -> root) instead of incasting
at one server, which shortens the per-round synchronisation.
"""

from __future__ import annotations

from .base import CostModel
from .fedavg import FedAvg

__all__ = ["TreeFedAvg"]


class TreeFedAvg(FedAvg):
    name = "t_fedavg"

    def round_sync_seconds(self, cost: CostModel) -> float:
        topo = cost.topology
        groups = [topo.socs_on_pcb(p) for p in range(topo.num_pcbs)]
        return cost.fabric.tree_aggregate_time(groups, cost.grad_bytes)
