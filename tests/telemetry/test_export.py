"""Exporters: Chrome trace mapping, JSONL, human-readable tables."""

import json

import pytest

from repro.cluster import ClusterTopology
from repro.telemetry import (MetricsRegistry, Tracer, render_epoch_table,
                             render_metrics_table, to_chrome_trace, to_jsonl,
                             write_trace)


def _sample_tracer():
    tracer = Tracer(topology=ClusterTopology(num_socs=16))
    tracer.span("compute", 0.0, 2.0, soc=9, lg=1, steps=4)
    tracer.span("nic_wait", 2.0, 0.5, pcb=0, link_bytes=1024)
    tracer.span("recovery", 2.5, 1.0, name="recovery@1")
    tracer.event("fault", 2.5, name="fault:crash", soc=9)
    return tracer


class TestChromeTrace:
    def test_pid_tid_mapping(self):
        trace = to_chrome_trace(_sample_tracer())
        events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        compute, nic, recovery, fault = events
        topo = ClusterTopology(num_socs=16)
        # SoC 9 lives on its PCB's process, thread soc+1
        assert compute["pid"] == topo.pcb_of(9) + 1
        assert compute["tid"] == 10
        # PCB-only records land on the NIC lane (tid 0)
        assert nic["pid"] == 1 and nic["tid"] == 0
        # unattributed records go to the cluster process
        assert recovery["pid"] == 0
        assert fault["ph"] == "i" and fault["s"] == "g"

    def test_microsecond_timestamps(self):
        trace = to_chrome_trace(_sample_tracer())
        compute = next(e for e in trace["traceEvents"]
                       if e.get("cat") == "compute")
        assert compute["ts"] == 0.0
        assert compute["dur"] == 2_000_000.0

    def test_process_and_thread_metadata(self):
        trace = to_chrome_trace(_sample_tracer())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e.get("pid"), e.get("tid")): e["args"]["name"]
                 for e in meta if "name" in e["args"]}
        assert names[("process_name", 0, None)] == "cluster"
        assert names[("thread_name", 1, 0)] == "NIC"
        pcb9 = ClusterTopology(num_socs=16).pcb_of(9)
        assert names[("process_name", pcb9 + 1, None)] == f"PCB {pcb9}"
        assert names[("thread_name", pcb9 + 1, 10)] == "SoC 9"

    def test_args_carry_attribution_and_kwargs(self):
        trace = to_chrome_trace(_sample_tracer())
        compute = next(e for e in trace["traceEvents"]
                       if e.get("cat") == "compute")
        assert compute["args"] == {"steps": 4, "lg": 1}


class TestJsonl:
    def test_emission_order_and_valid_json(self):
        lines = to_jsonl(_sample_tracer()).splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["compute", "nic_wait", "recovery", "fault"]

    def test_write_trace_dispatch(self, tmp_path):
        tracer = _sample_tracer()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        write_trace(tracer, chrome, fmt="chrome")
        write_trace(tracer, jsonl, fmt="jsonl")
        assert "traceEvents" in json.loads(chrome.read_text())
        assert len(jsonl.read_text().splitlines()) == 4
        with pytest.raises(ValueError):
            write_trace(tracer, tmp_path / "t.x", fmt="xml")


class TestEpochTable:
    def test_drops_all_none_columns(self):
        rows = [{"epoch": 0, "seconds": 1.5, "compute_s": 1.0,
                 "sync_s": 0.5, "update_s": 0.01, "recovery_s": None,
                 "accuracy": 0.5, "alpha": None, "retries": 0}]
        out = render_epoch_table(rows)
        assert "recovery" not in out and "alpha" not in out
        assert "epoch" in out and "sync" in out

    def test_recovery_column_appears_when_present(self):
        rows = [{"epoch": 0, "seconds": 1.0, "recovery_s": None},
                {"epoch": 1, "seconds": 9.0, "recovery_s": 3.0}]
        out = render_epoch_table(rows)
        assert "recovery" in out

    def test_empty(self):
        assert "no epochs" in render_epoch_table([])


class TestMetricsTable:
    def test_rows_and_histogram_detail(self):
        reg = MetricsRegistry()
        reg.counter("retries", pcb=0).inc(3)
        h = reg.histogram("epoch.seconds")
        h.observe(1.0)
        h.observe(2.0)
        out = render_metrics_table(reg)
        assert "retries" in out and "pcb=0" in out
        assert "p50=" in out and "n=2" in out

    def test_empty(self):
        assert "no metrics" in render_metrics_table(MetricsRegistry())


class TestTableEdgeCases:
    """Renderer edge cases: empty, zero-duration, long labels, alignment."""

    def test_zero_duration_epochs(self):
        rows = [{"epoch": 0, "seconds": 0.0, "compute_s": 0.0,
                 "sync_s": 0.0, "accuracy": 0.1},
                {"epoch": 1, "seconds": 2.5, "compute_s": 2.0,
                 "sync_s": 0.5, "accuracy": 0.2}]
        out = render_epoch_table(rows)
        # zero floats render as "0", not "" or "0.000"
        zero_row = out.splitlines()[2]
        assert zero_row.split() == ["0", "0", "0", "0", "0.1"]

    def test_long_labels_widen_columns_consistently(self):
        reg = MetricsRegistry()
        long_name = "subsystem.component.metric_with_a_very_long_name"
        reg.counter(long_name, shard="rack-0/pcb-11/soc-59").inc(7)
        reg.counter("x").inc(1)
        out = render_metrics_table(reg)
        lines = out.splitlines()
        assert long_name in out and "rack-0/pcb-11/soc-59" in out
        # every line is padded to the same width
        assert len({len(line) for line in lines}) == 1

    def test_numeric_columns_right_aligned(self):
        from repro.harness.reporting import format_table
        out = format_table(["name", "value"],
                           [["a", 1.0], ["bbbb", 12345.0]])
        # numbers right-aligned: every value line ends at the same column
        lines = out.splitlines()
        width = len(lines[0])
        assert all(len(line) == width for line in lines)
        assert lines[2].endswith("1") and lines[3].endswith("12,345.0")
        assert not lines[2].endswith(" ")

    def test_mixed_column_stays_left_aligned(self):
        from repro.harness.reporting import format_table
        out = format_table(["k", "v"], [["a", 1.0], ["b", "n/a"]])
        lines = out.splitlines()
        assert lines[2].startswith("a  1")      # value not right-padded

    def test_empty_metrics_and_epochs(self):
        assert render_metrics_table(MetricsRegistry()) \
            == "(no metrics recorded)"
        assert render_epoch_table([]) == "(no epochs recorded)"

    def test_epoch_table_all_rows_equal_width(self):
        rows = [{"epoch": 0, "seconds": 1.0,
                 "accuracy": 0.123456789},
                {"epoch": 100000, "seconds": 123456.789,
                 "accuracy": 1.0}]
        lines = render_epoch_table(rows).splitlines()
        assert len({len(line) for line in lines}) == 1
