"""A small reverse-mode automatic differentiation engine over numpy.

The :class:`Tensor` records the operations that produced it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients into every tensor with
``requires_grad=True``.  The engine is deliberately compact: it supports
exactly the operations the SoCFlow model zoo needs (dense and
convolutional nets with batch norm), but each op has a correct,
broadcast-aware gradient and is covered by numerical gradient checks in
the test suite.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True

#: active :class:`repro.nn.graph.GraphRecorder` (or ``None``).  When set,
#: every op built through :meth:`Tensor._make` reports itself to the
#: recorder *after* computing its eager result, so capturing a step is
#: bit-identical to running it uninstrumented.
_CAPTURE = None


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block (like torch)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-d array with an optional autograd tape.

    Parameters
    ----------
    data:
        Anything convertible to a ``float64``/``float32`` numpy array.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_grad_buf")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        #: preallocated gradient storage (a view into a fused flat array
        #: when the owning module has been flattened); ``_accumulate``
        #: writes the first gradient here instead of allocating
        self._grad_buf: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None],
              op: str = "", ctx: dict | None = None) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        if _CAPTURE is not None:
            _CAPTURE.record(op, out, parents, ctx)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            buf = self._grad_buf
            if buf is not None and buf.shape == grad.shape:
                # np.copyto casts exactly like astype; writing into the
                # fused buffer keeps the whole model gradient contiguous.
                np.copyto(buf, grad)
                self.grad = buf
            else:
                # Keep the freshly allocated copy as this tensor's gradient
                # buffer so the next step (same shape) reuses it instead of
                # allocating again.  order="C" so a gradient arriving as a
                # transposed/sliced view is stored canonically — downstream
                # reductions must not depend on the producer's layout.
                buf = grad.astype(np.float32, order="C", copy=True)
                self.grad = buf
                self._grad_buf = buf
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate ``grad`` (default: ones) through the graph."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return self._make(out_data, (self, other), backward, op="div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, op="pow",
                          ctx={"exponent": exponent})

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return self._make(out_data, (self, other), backward, op="matmul")

    # ------------------------------------------------------------------
    # Reductions and shaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward, op="sum",
                          ctx={"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward, op="reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward,
                          op="transpose", ctx={"axes": axes, "inverse": inverse})

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, op="getitem",
                          ctx={"index": index})

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward, op="relu")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward, op="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward, op="sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, op="sigmoid")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward,
                          op="clip")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g)

        return self._make(out_data, (self,), backward, op="max")

    # ------------------------------------------------------------------
    # Structural ops used by conv nets
    # ------------------------------------------------------------------
    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes of an NCHW tensor."""
        if padding == 0:
            return self
        pad = ((0, 0),) * (self.ndim - 2) + ((padding, padding), (padding, padding))
        out_data = np.pad(self.data, pad)
        p = padding

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[..., p:-p, p:-p])

        return self._make(out_data, (self,), backward, op="pad2d",
                          ctx={"padding": padding})

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        return Tensor._make(out_data, tensors, backward, op="concatenate")
