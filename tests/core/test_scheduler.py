"""Global scheduler: events, rebalancing, checkpoint costs, faults."""

import pytest

from repro.cluster import (ClusterTopology, FaultSchedule, NetworkFabric,
                           NicDegradation, PreemptionStorm, SoCCrash,
                           StragglerFault)
from repro.core import GlobalScheduler, PreemptionEvent, UnderclockEvent


def scheduler(rebalance=True, events=(), fault_schedule=None):
    return GlobalScheduler(ClusterTopology(num_socs=20),
                           rebalance=rebalance, events=list(events),
                           fault_schedule=fault_schedule)


class TestEvents:
    def test_preemptions_filtered_by_epoch(self):
        sched = scheduler(events=[PreemptionEvent(epoch=2),
                                  PreemptionEvent(epoch=5, num_groups=2)])
        assert len(sched.preemptions_at(2)) == 1
        assert sched.preemptions_at(3) == []
        assert sched.preemptions_at(5)[0].num_groups == 2

    def test_underclock_validation(self):
        with pytest.raises(ValueError):
            UnderclockEvent(epoch=0, soc=1, factor=0.0)
        with pytest.raises(ValueError):
            UnderclockEvent(epoch=0, soc=1, factor=1.5)


class TestUnderclocking:
    def test_no_events_no_slowdown(self):
        assert scheduler().group_slowdown([0, 1, 2]) == 1.0

    def test_rebalanced_slowdown_is_harmonic(self):
        sched = scheduler(events=[UnderclockEvent(0, soc=0, factor=0.5)])
        sched.apply_underclocks(0)
        # factors [0.5, 1, 1, 1] -> 4 / 3.5
        assert sched.group_slowdown([0, 1, 2, 3]) == pytest.approx(4 / 3.5)

    def test_straggler_without_rebalancing(self):
        sched = scheduler(rebalance=False,
                          events=[UnderclockEvent(0, soc=0, factor=0.5)])
        sched.apply_underclocks(0)
        assert sched.group_slowdown([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_rebalancing_always_at_least_as_fast(self):
        events = [UnderclockEvent(0, soc=0, factor=0.25)]
        with_rb = scheduler(rebalance=True, events=list(events))
        without = scheduler(rebalance=False, events=list(events))
        with_rb.apply_underclocks(0)
        without.apply_underclocks(0)
        group = [0, 1, 2, 3, 4]
        assert with_rb.group_slowdown(group) <= without.group_slowdown(group)

    def test_event_applies_only_from_its_epoch(self):
        sched = scheduler(events=[UnderclockEvent(3, soc=0, factor=0.5)])
        sched.apply_underclocks(1)
        assert sched.group_slowdown([0, 1]) == 1.0
        sched.apply_underclocks(3)
        assert sched.group_slowdown([0, 1]) > 1.0

    def test_slowdown_is_direct_product_of_clock_factors(self):
        # direct unit coverage: two slowed SoCs in one group, rebalanced
        sched = scheduler(events=[UnderclockEvent(0, soc=0, factor=0.5),
                                  UnderclockEvent(0, soc=1, factor=0.25)])
        sched.apply_underclocks(0)
        # factors [0.5, 0.25, 1, 1] -> 4 / 2.75
        assert sched.group_slowdown([0, 1, 2, 3]) == pytest.approx(4 / 2.75)

    def test_slowdown_ignores_socs_outside_group(self):
        sched = scheduler(events=[UnderclockEvent(0, soc=19, factor=0.5)])
        sched.apply_underclocks(0)
        assert sched.group_slowdown([0, 1, 2]) == 1.0


class TestUnderclockingAcrossResume:
    """The checkpoint-restore off-by-one: DVFS state is persistent, so an
    event that landed on or before the epoch a checkpoint restores into
    must still be in force when ``apply_underclocks`` first runs."""

    def test_event_before_resume_epoch_still_applies(self):
        sched = scheduler(events=[UnderclockEvent(2, soc=0, factor=0.5)])
        sched.apply_underclocks(4)      # first call after resuming at 4
        assert sched.group_slowdown([0, 1]) == pytest.approx(2 / 1.5)

    def test_event_on_resume_epoch_applies(self):
        # an UnderclockEvent landing exactly on the epoch the checkpoint
        # restores into used to be skipped when epochs advanced past it
        sched = scheduler(events=[UnderclockEvent(3, soc=1, factor=0.25)])
        sched.apply_underclocks(3)
        assert sched.group_slowdown([1, 2, 3, 4]) == pytest.approx(4 / 3.25)

    def test_events_apply_in_epoch_order_not_list_order(self):
        sched = scheduler(events=[UnderclockEvent(3, soc=0, factor=0.75),
                                  UnderclockEvent(1, soc=0, factor=0.25)])
        sched.apply_underclocks(5)
        # the epoch-3 event supersedes the epoch-1 one
        assert sched.group_slowdown([0, 1]) == pytest.approx(2 / 1.75)


class TestFaults:
    def test_no_schedule_is_a_noop(self):
        sched = scheduler()
        assert sched.apply_faults(0) == set()
        assert sched.alive_socs_at(0) == list(range(20))

    def test_dead_socs_tracked_with_recovery(self):
        sched = scheduler(fault_schedule=FaultSchedule(
            (SoCCrash(1, 3), SoCCrash(2, 5, recover_epoch=4))))
        assert sched.dead_socs_at(0) == set()
        assert sched.dead_socs_at(2) == {3, 5}
        assert sched.dead_socs_at(4) == {3}
        assert 5 in sched.alive_socs_at(4)

    def test_out_of_range_crashes_are_ignored(self):
        sched = scheduler(fault_schedule=FaultSchedule((SoCCrash(0, 99),)))
        assert sched.dead_socs_at(0) == set()

    def test_stragglers_fold_into_clock_factors(self):
        sched = scheduler(fault_schedule=FaultSchedule(
            (StragglerFault(1, 0, 0.5),)))
        sched.apply_faults(0)
        assert sched.group_slowdown([0, 1]) == 1.0
        sched.apply_faults(1)
        assert sched.group_slowdown([0, 1]) == pytest.approx(2 / 1.5)

    def test_nic_multipliers_pushed_into_fabric(self):
        sched = scheduler(fault_schedule=FaultSchedule(
            (NicDegradation(1, 0, 0.25, recover_epoch=3),)))
        fabric = NetworkFabric(sched.topology)
        sched.apply_faults(1, fabric)
        assert fabric.pcb_multiplier(0) == 0.25
        sched.apply_faults(3, fabric)
        assert fabric.pcb_multiplier(0) == 1.0

    def test_storms_surface_as_preemptions(self):
        sched = scheduler(events=[PreemptionEvent(2)],
                          fault_schedule=FaultSchedule(
                              (PreemptionStorm(2, num_groups=3),)))
        preemptions = sched.preemptions_at(2)
        assert len(preemptions) == 2
        assert sum(p.num_groups for p in preemptions) == 4

    def test_recovery_seconds_positive_and_scales(self):
        sched = scheduler()
        fabric = NetworkFabric(sched.topology)
        small = sched.recovery_seconds(1e6, fabric, list(range(10)))
        large = sched.recovery_seconds(1e8, fabric, list(range(10)))
        assert 0 < small < large


class TestCosts:
    def test_checkpoint_time_scales_with_model(self):
        small = GlobalScheduler.checkpoint_seconds(1e6)
        large = GlobalScheduler.checkpoint_seconds(1e8)
        assert large == pytest.approx(100 * small)

    def test_dispatch_covers_all_socs(self):
        sched = scheduler()
        fabric = NetworkFabric(sched.topology)
        t = sched.dispatch_seconds(fabric, model_bytes=1e7,
                                   data_bytes_per_soc=1e7)
        assert t > 0
