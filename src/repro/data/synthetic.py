"""Deterministic class-conditional synthetic image generation.

Each class is a mixture of spatially-smooth prototype images; samples
are prototypes plus jitter (shift, noise, per-sample gain).  The
``difficulty`` knob moves class prototypes closer together and raises
noise, which controls how hard the task is to learn — important because
the paper's effects (INT8 degradation, large-group degradation) only
show on tasks that are neither trivial nor impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

__all__ = ["SyntheticImageTask", "make_classification_images"]


def _smooth_prototype(rng: np.random.Generator, channels: int, size: int,
                      sigma: float) -> np.ndarray:
    raw = rng.standard_normal((channels, size, size))
    smooth = ndimage.gaussian_filter(raw, sigma=(0, sigma, sigma))
    peak = np.abs(smooth).max()
    return (smooth / peak).astype(np.float32)


@dataclass
class SyntheticImageTask:
    """A generated classification task with train/test splits."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    name: str = "synthetic"
    meta: dict = field(default_factory=dict)

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return tuple(self.x_train.shape[1:])

    def subset(self, n_train: int, n_test: int | None = None
               ) -> "SyntheticImageTask":
        """First-n subset, preserving the shuffled class balance."""
        n_test = n_test or len(self.x_test)
        return SyntheticImageTask(
            self.x_train[:n_train], self.y_train[:n_train],
            self.x_test[:n_test], self.y_test[:n_test],
            self.num_classes, self.name, dict(self.meta))


def make_classification_images(
        num_classes: int, train_size: int, test_size: int,
        channels: int = 3, image_size: int = 16,
        difficulty: float = 0.5, prototypes_per_class: int = 2,
        seed: int = 0, name: str = "synthetic") -> SyntheticImageTask:
    """Generate a deterministic image-classification task.

    Parameters
    ----------
    difficulty:
        0 → trivially separable, 1 → heavily overlapping classes.  The
        knob scales both the inter-class prototype separation and the
        per-sample noise level.
    """
    if not 0.0 <= difficulty <= 1.0:
        raise ValueError("difficulty must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    signal = 1.0 - 0.6 * difficulty
    noise_level = 0.25 + 0.9 * difficulty
    sigma = max(1.0, image_size / 8)

    shared = _smooth_prototype(rng, channels, image_size, sigma)
    prototypes = np.stack([
        np.stack([
            signal * _smooth_prototype(rng, channels, image_size, sigma)
            + (1.0 - signal) * shared
            for _ in range(prototypes_per_class)
        ]) for _ in range(num_classes)
    ])  # (classes, protos, C, H, W)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        proto_idx = rng.integers(0, prototypes_per_class, size=count)
        images = prototypes[labels, proto_idx].copy()
        shifts = rng.integers(-2, 3, size=(count, 2))
        for i, (dy, dx) in enumerate(shifts):
            images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        gains = rng.uniform(0.85, 1.15, size=(count, 1, 1, 1))
        images = images * gains + noise_level * rng.standard_normal(
            images.shape)
        return images.astype(np.float32), labels.astype(np.int64)

    x_train, y_train = sample(train_size)
    x_test, y_test = sample(test_size)
    return SyntheticImageTask(
        x_train, y_train, x_test, y_test, num_classes, name=name,
        meta={"difficulty": difficulty, "seed": seed,
              "channels": channels, "image_size": image_size})
