"""Arrival-process tests: diurnal shape, flash crowds, determinism."""

import numpy as np
import pytest

from repro.serving import ArrivalProcess, FlashCrowd, Region


def process(**kw):
    kw.setdefault("start_hour", 0.0)
    kw.setdefault("horizon_hours", 24.0)
    kw.setdefault("seed", 0)
    return ArrivalProcess([Region("global", kw.pop("peak_rps", 2.0))], **kw)


class TestFlashCrowd:
    def test_parse(self):
        crowd = FlashCrowd.parse("20:1.5:4")
        assert crowd.start_hour == 20.0
        assert crowd.duration_hours == 1.5
        assert crowd.multiplier == 4.0
        assert crowd.end_hour == 21.5

    @pytest.mark.parametrize("spec", ["20:1", "a:b:c", "20:1:4:9", ""])
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            FlashCrowd.parse(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            FlashCrowd(0.0, 1.0, 1.0)


class TestRegion:
    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            Region("r", 0.0)


class TestGeneration:
    def test_arrivals_sorted_and_in_horizon(self):
        proc = process(start_hour=6.0, horizon_hours=12.0)
        times = proc.arrivals_h
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 6.0
        assert times.max() < 18.0

    def test_deterministic_across_instances(self):
        a = process(peak_rps=5.0, seed=11)
        b = process(peak_rps=5.0, seed=11)
        assert np.array_equal(a.arrivals_h, b.arrivals_h)

    def test_seed_changes_realisation(self):
        a = process(seed=0)
        b = process(seed=1)
        assert not np.array_equal(a.arrivals_h, b.arrivals_h)

    def test_follows_diurnal_shape(self):
        proc = process(peak_rps=10.0)
        day = proc.count_between(12.0, 16.0)
        night = proc.count_between(2.0, 6.0)
        assert day > 5 * max(night, 1)

    def test_flash_crowd_multiplies_rate(self):
        base = process(peak_rps=10.0)
        crowd = process(peak_rps=10.0,
                        flash_crowds=[FlashCrowd(13.0, 1.0, 4.0)])
        in_base = base.count_between(13.0, 14.0)
        in_crowd = crowd.count_between(13.0, 14.0)
        # 4x rate -> ~4x arrivals inside the surge...
        assert in_crowd > 2.5 * in_base
        # ...and an identical realisation outside it (superposed
        # component, not a re-thinned stream)
        assert np.array_equal(base.slice_h(15.0, 20.0),
                              crowd.slice_h(15.0, 20.0))

    def test_regions_superpose(self):
        one = ArrivalProcess([Region("a", 4.0)], seed=3)
        two = ArrivalProcess([Region("a", 4.0), Region("b", 4.0)], seed=3)
        assert len(two) > 1.5 * len(one)

    def test_phase_shift_moves_peak(self):
        shifted = ArrivalProcess([Region("east", 10.0,
                                         phase_shift_hours=6.0)], seed=0)
        # the tidal peak (14:00) lands at 20:00 for a +6 h region
        assert shifted.count_between(19.0, 21.0) \
            > 2 * shifted.count_between(13.0, 15.0)

    def test_rate_rps_flash_additive(self):
        proc = process(peak_rps=10.0,
                       flash_crowds=[FlashCrowd(14.0, 1.0, 3.0)])
        base = process(peak_rps=10.0)
        assert proc.rate_rps(14.5) == pytest.approx(
            3.0 * base.rate_rps(14.5))
        assert proc.rate_rps(16.0) == pytest.approx(base.rate_rps(16.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess([], seed=0)
        with pytest.raises(ValueError):
            process(horizon_hours=0.0)


class TestQueries:
    def test_slice_and_count_agree(self):
        proc = process(peak_rps=5.0)
        assert len(proc.slice_h(10.0, 12.0)) \
            == proc.count_between(10.0, 12.0)

    def test_from_times(self):
        proc = ArrivalProcess.from_times([3.0, 1.0, 2.0],
                                         horizon_hours=4.0)
        assert list(proc.arrivals_h) == [1.0, 2.0, 3.0]
        assert proc.count_between(0.0, 2.5) == 2
