"""VGG-11 (configuration A of Simonyan & Zisserman) for 32x32 inputs."""

from __future__ import annotations

import numpy as np

from ..modules import (BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d,
                       Module, ReLU, Sequential)
from ..tensor import Tensor

# Configuration "A": numbers are output channels, "M" is 2x2 max pool.
_VGG11_CFG = [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"]


def _scaled(channels: int, width: float) -> int:
    return max(1, int(round(channels * width)))


class VGG11(Module):
    """VGG-11 with batch norm, adapted to CIFAR-sized (32x32) inputs.

    For ``image_size`` below 32 the deepest pooling stages are dropped so
    the spatial map never collapses below 1x1 — this is how the reduced
    harness configurations stay architecturally faithful.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, width: float = 1.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        channels = in_channels
        spatial = image_size
        for entry in _VGG11_CFG:
            if entry == "M":
                if spatial >= 2:
                    layers.append(MaxPool2d(2))
                    spatial //= 2
                continue
            out = _scaled(int(entry), width)
            layers.append(Conv2d(channels, out, 3, rng, padding=1, bias=False))
            layers.append(BatchNorm2d(out))
            layers.append(ReLU())
            channels = out
        self.features = Sequential(*layers)
        self.classifier = Sequential(
            Flatten(),
            Linear(channels * spatial * spatial, num_classes, rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
