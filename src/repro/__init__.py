"""SoCFlow reproduction (ASPLOS 2024).

Public entry points:

- :mod:`repro.nn` -- pure-numpy DNN training framework and model zoo.
- :mod:`repro.quant` -- INT8 fake-quantised training (the NPU path).
- :mod:`repro.data` -- synthetic stand-ins for the paper's datasets.
- :mod:`repro.cluster` -- SoC-Cluster hardware / network / energy model.
- :mod:`repro.comm` -- collective-communication cost models + primitives.
- :mod:`repro.distributed` -- the six baseline training strategies.
- :mod:`repro.core` -- SoCFlow itself (grouping, mapping, planning,
  mixed-precision, scheduler).
- :mod:`repro.harness` -- per-figure/table experiment runners.
"""

__version__ = "1.0.0"
