"""Service-time calibration and replica batching state."""

import pytest

from repro.cluster.spec import SOC_REGISTRY, model_profile
from repro.serving import Replica, ServiceModel
from repro.serving.replica import INFERENCE_TRAIN_RATIO


class TestServiceModel:
    def test_measured_model_uses_figure_4a_latency(self):
        svc = ServiceModel.for_model("vgg11")
        profile = model_profile("vgg11")
        assert svc.per_request_s == pytest.approx(
            profile.t_npu_sample_s * INFERENCE_TRAIN_RATIO)

    def test_scales_with_npu_throughput(self):
        """Same rule as CostModel: measured SD865 latency rescaled by
        the hosting SoC's NPU FLOPs."""
        sd865 = SOC_REGISTRY["sd865"]
        for name, soc in sorted(SOC_REGISTRY.items()):
            svc = ServiceModel.for_model("vgg11", soc=soc)
            ref = ServiceModel.for_model("vgg11", soc=sd865)
            assert svc.per_request_s == pytest.approx(
                ref.per_request_s * sd865.npu.flops / soc.npu.flops)

    def test_unmeasured_model_extrapolates_from_flops(self):
        svc = ServiceModel.for_model("mobilenet_v1")
        profile = model_profile("mobilenet_v1")
        soc = SOC_REGISTRY["sd865"]
        assert svc.per_request_s == pytest.approx(
            profile.flops_per_sample / soc.npu.flops
            * INFERENCE_TRAIN_RATIO)

    def test_batch_seconds_amortises_overhead(self):
        svc = ServiceModel.for_model("vgg11", max_batch=8)
        per_request_full = svc.batch_seconds(8) / 8
        per_request_single = svc.batch_seconds(1)
        assert per_request_full < per_request_single

    def test_batch_bounds_enforced(self):
        svc = ServiceModel.for_model("vgg11", max_batch=4)
        with pytest.raises(ValueError):
            svc.batch_seconds(0)
        with pytest.raises(ValueError):
            svc.batch_seconds(5)

    def test_peak_rps(self):
        svc = ServiceModel.for_model("vgg11", max_batch=8)
        assert svc.peak_rps == pytest.approx(8 / svc.batch_seconds(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel("m", per_request_s=0.0, batch_overhead_s=0.0,
                         max_batch=1)
        with pytest.raises(ValueError):
            ServiceModel("m", per_request_s=0.01, batch_overhead_s=-1.0,
                         max_batch=1)
        with pytest.raises(ValueError):
            ServiceModel("m", per_request_s=0.01, batch_overhead_s=0.0,
                         max_batch=0)


class TestReplica:
    def test_serve_batch_advances_clock(self):
        svc = ServiceModel("m", per_request_s=0.1, batch_overhead_s=0.1,
                           max_batch=4)
        replica = Replica(soc=3, service=svc, ready_hour=1.0)
        done = replica.serve_batch(1.0, 4)
        assert done == pytest.approx(1.0 + 0.5 / 3600.0)
        assert replica.free_hour == done
        assert replica.requests_served == 4
        assert replica.batches == 1
        assert replica.busy_s == pytest.approx(0.5)

    def test_utilisation(self):
        svc = ServiceModel("m", per_request_s=0.1, batch_overhead_s=0.0,
                           max_batch=4)
        replica = Replica(soc=0, service=svc)
        replica.serve_batch(0.0, 4)     # 0.4 s busy
        hour = 0.4 / 3600.0
        assert replica.utilisation(0.0, hour) == pytest.approx(1.0)
        assert replica.utilisation(0.0, 2 * hour) == pytest.approx(0.5)
        assert replica.utilisation(1.0, 1.0) == 0.0  # empty window
