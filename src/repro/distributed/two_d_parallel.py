"""2D-parallelism baseline (Optimus-CC-style, Song et al., ASPLOS'23).

SoCs are split into groups: *within* a group the model is
pipeline-parallel across the member SoCs (PipeDream-style stages);
*across* groups, the same-stage SoCs run data-parallel Ring-AllReduce
per batch.  The weight math is identical to synchronous SGD; the cost
model captures what actually differs on a SoC-Cluster:

- pipeline bubble: a G-stage pipeline over ``mb`` microbatches costs
  ``(mb + G - 1)/mb`` of the ideal time;
- per-batch cross-group synchronisation runs G rings (one per stage)
  *concurrently* with naive consecutive group placement, so the rings
  contend for the shared PCB NICs — 2D-Paral does no topology mapping
  or communication planning.
"""

from __future__ import annotations

from .base import CostModel
from .ssgd import SsgdStrategy

__all__ = ["TwoDParallel"]

#: microbatches per pipeline flush (PipeDream-style schedule)
_MICROBATCHES = 4


class TwoDParallel(SsgdStrategy):
    name = "2d_paral"

    def _groups(self, cost: CostModel) -> list[list[int]]:
        m = cost.topology.num_socs
        n = max(1, min(cost.config.num_groups, m))
        size = m // n
        return [list(range(g * size, (g + 1) * size)) for g in range(n)]

    def step_compute_seconds(self, cost: CostModel,
                             num_socs: int | None = None) -> float:
        # 2D keeps its full pipeline layout regardless of survivor count
        # (``num_socs`` accepted for the shared fault-path signature).
        groups = self._groups(cost)
        group_size = len(groups[0])
        group_batch = cost.config.sim_global_batch / len(groups)
        ideal = cost.compute_seconds(group_batch, "cpu") / group_size
        bubble = (_MICROBATCHES + group_size - 1) / _MICROBATCHES
        # Inter-stage activation traffic (forward) and activation-gradient
        # traffic (backward) over the SoC links, interleaved with compute.
        boundaries = group_size - 1
        act_bytes = (2.0 * boundaries * group_batch
                     * cost.profile.act_bytes_per_sample)
        act_seconds = 8.0 * act_bytes / cost.topology.soc.nic_bps
        return ideal * bubble + act_seconds

    def step_sync_seconds(self, cost: CostModel,
                          nbytes: float | None = None,
                          num_tensors: float | None = None) -> float:
        groups = self._groups(cost)
        group_size = len(groups[0])
        if len(groups) < 2:
            return 0.0
        # Stage s of every group holds 1/G of the weights; the N SoCs
        # owning stage s form one ring.  All G rings run at once.
        rings = [[group[stage] for group in groups]
                 for stage in range(group_size)]
        payload = cost.grad_bytes if nbytes is None else nbytes
        return cost.fabric.concurrent_ring_allreduce_time(
            rings, payload / group_size, num_tensors=num_tensors)
