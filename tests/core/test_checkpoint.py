"""Checkpoint save/load round-trips and SoCFlow resume."""

from collections import OrderedDict
from dataclasses import replace

import numpy as np
import pytest

from repro.core import SoCFlow, SoCFlowOptions, TrainingCheckpoint


def sample_state():
    rng = np.random.default_rng(0)
    return OrderedDict(
        weight=rng.standard_normal((4, 3)).astype(np.float32),
        bias=rng.standard_normal(4).astype(np.float32),
    )


class TestRoundTrip:
    def test_save_load_restores_everything(self, tmp_path):
        original = TrainingCheckpoint(
            model_state=sample_state(), epoch=3,
            accuracy_history=[0.1, 0.4, 0.6], alpha=0.87, rng_seed=5,
            meta={"model": "vgg11"})
        path = original.save(tmp_path / "run.npz")
        loaded = TrainingCheckpoint.load(path)
        assert loaded.epoch == 3
        assert loaded.alpha == pytest.approx(0.87)
        assert loaded.rng_seed == 5
        assert loaded.meta == {"model": "vgg11"}
        assert loaded.accuracy_history == pytest.approx([0.1, 0.4, 0.6])
        for key in original.model_state:
            np.testing.assert_array_equal(loaded.model_state[key],
                                          original.model_state[key])

    def test_key_order_preserved(self, tmp_path):
        original = TrainingCheckpoint(model_state=sample_state(), epoch=0)
        loaded = TrainingCheckpoint.load(
            original.save(tmp_path / "k.npz"))
        assert list(loaded.model_state) == list(original.model_state)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TrainingCheckpoint.load(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ValueError, match="not a SoCFlow checkpoint"):
            TrainingCheckpoint.load(path)

    def test_creates_parent_directories(self, tmp_path):
        checkpoint = TrainingCheckpoint(model_state=sample_state(), epoch=0)
        path = checkpoint.save(tmp_path / "a" / "b" / "run.npz")
        assert path.exists()


class TestCosts:
    def test_nbytes_counts_payload(self):
        checkpoint = TrainingCheckpoint(model_state=sample_state(), epoch=0)
        assert checkpoint.nbytes == (12 + 4) * 4

    def test_write_seconds_positive(self):
        checkpoint = TrainingCheckpoint(model_state=sample_state(), epoch=0)
        assert checkpoint.write_seconds() > 0


class TestSoCFlowResume:
    def test_resume_continues_from_saved_epoch(self, quick_config, tmp_path):
        path = str(tmp_path / "socflow.npz")
        config2 = replace(quick_config, max_epochs=1)
        SoCFlow(SoCFlowOptions(checkpoint_path=path)).train(config2)
        resumed = SoCFlow(SoCFlowOptions(
            checkpoint_path=path, resume=True)).train(quick_config)
        assert resumed.epochs_run == quick_config.max_epochs
        saved = TrainingCheckpoint.load(path)
        assert saved.epoch == quick_config.max_epochs - 1

    def test_resume_without_checkpoint_starts_fresh(self, quick_config,
                                                    tmp_path):
        path = str(tmp_path / "missing.npz")
        result = SoCFlow(SoCFlowOptions(
            checkpoint_path=path, resume=True)).train(quick_config)
        assert result.epochs_run == quick_config.max_epochs

    def test_fully_trained_checkpoint_resumes_to_noop(self, quick_config,
                                                      tmp_path):
        path = str(tmp_path / "done.npz")
        SoCFlow(SoCFlowOptions(checkpoint_path=path)).train(quick_config)
        resumed = SoCFlow(SoCFlowOptions(
            checkpoint_path=path, resume=True)).train(quick_config)
        # history carries over; no extra epochs were executed
        assert resumed.epochs_run == quick_config.max_epochs
        assert resumed.sim_time_s < 1e4  # only dispatch cost accrued
