"""Fixtures for the job-scheduler tests: tiny configs, hand-built sessions."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterTopology, Session
from repro.distributed import RunConfig
from repro.jobs import ElasticScheduler, TrainingJob


@pytest.fixture(scope="session")
def jobs_topology():
    return ClusterTopology(num_socs=8)


@pytest.fixture()
def config_factory(tiny_task, jobs_topology):
    """job -> RunConfig on the shared tiny task (fast real math)."""
    def factory(job):
        return RunConfig(
            task=tiny_task, model_name="lenet5", width=1.0, batch_size=16,
            lr=0.05, max_epochs=job.epochs, seed=job.seed,
            topology=jobs_topology, sim_samples_per_epoch=2_000,
            sim_global_batch=64, num_groups=2)
    return factory


def busy_all(topology: ClusterTopology, start: float,
             duration: float) -> list:
    """Sessions occupying every SoC for ``[start, start + duration)``."""
    return [Session(s, start, duration) for s in range(topology.num_socs)]


def make_job(job_id="job", **overrides) -> TrainingJob:
    spec = dict(id=job_id, workload="tiny", priority=1, min_socs=2,
                max_socs=8, epochs=2, target_group_size=2)
    spec.update(overrides)
    return TrainingJob(**spec)


def make_scheduler(topology, factory, sessions=(), **kw) -> ElasticScheduler:
    kw.setdefault("quantum_hours", 0.25)
    kw.setdefault("horizon_hours", 6.0)
    return ElasticScheduler(topology, list(sessions),
                            config_factory=factory, **kw)
