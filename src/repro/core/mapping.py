"""Integrity-greedy logical→physical mapping (§3.1, Figure 5c).

The problem: place N logical groups of size M/N onto K PCBs of
``socs_per_pcb`` SoCs so that ``C`` — the *maximum over PCBs* of the
number of PCB-splitting (inter-PCB) logical groups touching that PCB —
is minimised (Eq. 2–3).

The algorithm (two phases):

1. *Integrity phase*: pack as many whole logical groups as fit on each
   PCB without splitting.
2. *Squeeze phase*: lay the remaining groups out contiguously over the
   remaining SoC slots in order.

Theorem 1 (optimality of C) and Theorem 2 (each logical group contends
with ≤ 2 others for a NIC) are both checked by the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.topology import ClusterTopology

__all__ = ["MappingResult", "integrity_greedy_mapping", "naive_mapping",
           "nic_conflict_count", "contention_degree"]


@dataclass
class MappingResult:
    """groups[g] is the list of SoC ids hosting logical group ``g``."""

    groups: list[list[int]]
    topology: ClusterTopology
    split_groups: set[int] = field(init=False)

    def __post_init__(self):
        self.split_groups = {
            g for g, socs in enumerate(self.groups)
            if len({self.topology.pcb_of(s) for s in socs}) > 1
        }

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, soc: int) -> int | None:
        for g, socs in enumerate(self.groups):
            if soc in socs:
                return g
        return None

    def inter_pcb_groups_on(self, pcb: int) -> list[int]:
        """L_i^inter of Eq. 2: split groups with members on this PCB."""
        return [g for g in self.split_groups
                if any(self.topology.pcb_of(s) == pcb
                       for s in self.groups[g])]

    def conflict_count(self) -> int:
        """C of Eq. 3: the max NIC conflict over all PCBs."""
        return max((len(self.inter_pcb_groups_on(p))
                    for p in range(self.topology.num_pcbs)), default=0)


def _group_sizes(num_socs: int, num_groups: int) -> list[int]:
    base = num_socs // num_groups
    remainder = num_socs % num_groups
    return [base + (1 if g < remainder else 0) for g in range(num_groups)]


def _available_socs(topology: ClusterTopology,
                    alive: "set[int] | list[int] | None") -> list[int]:
    if alive is None:
        return list(range(topology.num_socs))
    available = sorted(set(alive))
    if not available:
        raise ValueError("no surviving SoCs to map groups onto")
    for s in available:
        topology.pcb_of(s)                      # range-checks the SoC id
    return available


def integrity_greedy_mapping(topology: ClusterTopology, num_groups: int,
                             alive: "set[int] | list[int] | None" = None
                             ) -> MappingResult:
    """The paper's mapping algorithm (optimal C, contention degree ≤ 2).

    ``alive`` restricts placement to the surviving SoCs after faults:
    groups are sized over the survivors and both phases skip dead
    chips.  On a holey survivor set the whole-group phase can strand
    PCB fragments whose sizes happen to align with a contiguous
    layout's group boundaries, so when ``alive`` is given the result is
    compared against the contiguous layout and the lower-conflict one
    wins (ties keep the greedy; contiguous layouts also satisfy the
    Theorem 2 contention bound, so both theorems survive the choice).
    """
    available = _available_socs(topology, alive)
    if not 1 <= num_groups <= len(available):
        raise ValueError(f"need 1 <= num_groups <= {len(available)}")
    sizes = _group_sizes(len(available), num_groups)
    alive_set = set(available)
    free_on_pcb = {p: [s for s in topology.socs_on_pcb(p) if s in alive_set]
                   for p in range(topology.num_pcbs)}
    placed: dict[int, list[int]] = {}

    # Phase 1: whole-group placement, round-robin over PCBs so whole
    # groups spread out and the leftover slots stay contiguous per PCB.
    pending = sorted(range(num_groups), key=lambda g: -sizes[g])
    still_pending: list[int] = []
    for g in pending:
        home = next((p for p in range(topology.num_pcbs)
                     if len(free_on_pcb[p]) >= sizes[g]), None)
        if home is None:
            still_pending.append(g)
            continue
        placed[g] = free_on_pcb[home][:sizes[g]]
        free_on_pcb[home] = free_on_pcb[home][sizes[g]:]

    # Phase 2: squeeze the rest into the remaining slots, in SoC order,
    # keeping each group's members contiguous in the squeezed order.
    leftovers = [s for p in range(topology.num_pcbs) for s in free_on_pcb[p]]
    cursor = 0
    for g in sorted(still_pending):
        placed[g] = leftovers[cursor:cursor + sizes[g]]
        cursor += sizes[g]

    result = MappingResult([placed[g] for g in range(num_groups)], topology)
    if alive is not None:
        contiguous = naive_mapping(topology, num_groups, alive=alive)
        if contiguous.conflict_count() < result.conflict_count():
            return contiguous
    return result


def naive_mapping(topology: ClusterTopology, num_groups: int,
                  alive: "set[int] | list[int] | None" = None
                  ) -> MappingResult:
    """Sequential blocks with no integrity phase (the ablation baseline)."""
    available = _available_socs(topology, alive)
    if not 1 <= num_groups <= len(available):
        raise ValueError(f"need 1 <= num_groups <= {len(available)}")
    sizes = _group_sizes(len(available), num_groups)
    groups: list[list[int]] = []
    cursor = 0
    for size in sizes:
        groups.append(available[cursor:cursor + size])
        cursor += size
    return MappingResult(groups, topology)


def nic_conflict_count(mapping: MappingResult) -> int:
    """Alias for Eq. 3's C on a finished mapping."""
    return mapping.conflict_count()


def contention_degree(mapping: MappingResult, group: int) -> int:
    """How many *other* split groups share a PCB NIC with ``group``."""
    if group not in mapping.split_groups:
        return 0
    pcbs = {mapping.topology.pcb_of(s) for s in mapping.groups[group]}
    rivals = set()
    for other in mapping.split_groups - {group}:
        other_pcbs = {mapping.topology.pcb_of(s)
                      for s in mapping.groups[other]}
        if pcbs & other_pcbs:
            rivals.add(other)
    return len(rivals)
