"""Synthetic dataset generator: determinism, shapes, difficulty knob."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import make_classification_images
from repro.nn import SGD, Tensor
from repro.nn import functional as F
from repro.nn.models import LeNet5


class TestShapes:
    def test_shapes_and_dtypes(self):
        task = make_classification_images(5, 100, 40, channels=3,
                                          image_size=14, seed=0)
        assert task.x_train.shape == (100, 3, 14, 14)
        assert task.x_train.dtype == np.float32
        assert task.y_train.dtype == np.int64
        assert task.input_shape == (3, 14, 14)

    def test_labels_in_range(self):
        task = make_classification_images(7, 200, 50, seed=1)
        assert task.y_train.min() >= 0
        assert task.y_train.max() < 7

    def test_subset(self):
        task = make_classification_images(4, 100, 60, seed=2)
        sub = task.subset(30, 10)
        assert len(sub.x_train) == 30
        assert len(sub.x_test) == 10
        np.testing.assert_array_equal(sub.x_train, task.x_train[:30])


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_classification_images(3, 50, 20, seed=42)
        b = make_classification_images(3, 50, 20, seed=42)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seed_different_data(self):
        a = make_classification_images(3, 50, 20, seed=1)
        b = make_classification_images(3, 50, 20, seed=2)
        assert not np.allclose(a.x_train, b.x_train)


class TestDifficulty:
    def _linear_probe_accuracy(self, task, epochs=30):
        """A trained LeNet separates easy tasks better than hard ones."""
        model = LeNet5(num_classes=task.num_classes,
                       in_channels=task.input_shape[0],
                       image_size=task.input_shape[1], width=0.5, seed=0)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(epochs):
            model.train()
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(task.x_train)), task.y_train)
            loss.backward()
            opt.step()
        model.eval()
        from repro.nn.tensor import no_grad
        with no_grad():
            pred = model(Tensor(task.x_test)).numpy().argmax(1)
        return (pred == task.y_test).mean()

    def test_easier_task_is_more_learnable(self):
        easy = make_classification_images(4, 240, 120, channels=1,
                                          image_size=12, difficulty=0.1,
                                          seed=3)
        hard = make_classification_images(4, 240, 120, channels=1,
                                          image_size=12, difficulty=0.95,
                                          seed=3)
        assert (self._linear_probe_accuracy(easy)
                > self._linear_probe_accuracy(hard) + 0.1)

    def test_invalid_difficulty_raises(self):
        with pytest.raises(ValueError):
            make_classification_images(3, 10, 10, difficulty=1.5)

    @given(st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_any_class_count_generates(self, classes, seed):
        task = make_classification_images(classes, classes * 4, classes * 2,
                                          image_size=10, seed=seed)
        assert set(np.unique(task.y_train)) <= set(range(classes))
