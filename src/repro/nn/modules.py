"""Layer / module abstraction over the autograd engine.

Modules own named :class:`~repro.nn.tensor.Tensor` parameters and plain
numpy buffers (batch-norm running statistics).  ``state_dict`` /
``load_state_dict`` round-trip both, which is what the distributed
strategies use to ship weights between simulated SoCs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module", "Sequential", "Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d",
    "ReLU", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "Identity",
]


class Module:
    """Base class: parameter registration, train/eval mode, state dicts."""

    def __init__(self):
        self._parameters: OrderedDict[str, Tensor] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self._flat = None
        self.training = True

    # -- registration --------------------------------------------------
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def register_buffer(self, name: str, array: np.ndarray) -> np.ndarray:
        self._buffers[name] = array
        return array

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ----------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- fused storage ---------------------------------------------------
    def flatten_parameters(self):
        """Pack parameters, buffers and gradients into contiguous arrays.

        Returns the module's :class:`~repro.nn.flat.FlatParamBuffer`,
        creating and binding it on first call.  After flattening,
        ``state_dict`` snapshots are single-memcpy
        :class:`~repro.nn.flat.FlatState` objects and SGD/aggregation
        take fused vectorised fast paths.  Idempotent; numerics are
        bit-identical to the unflattened module.
        """
        if self._flat is None or not self._flat.is_intact():
            from .flat import FlatParamBuffer
            try:
                self._flat = FlatParamBuffer(self)
            except TypeError:
                # Non-float32 storage: leave the module unfused.
                self._flat = None
        return self._flat

    def enable_graph_executor(self, max_programs: int = 8,
                              fuse: bool = True):
        """Attach a trace-once/replay-many step executor (idempotent).

        Returns the :class:`~repro.nn.graph.GraphExecutor` now owned by
        the module, or ``None`` when the module cannot flatten (the
        training step stays eager).  ``fp32_train_step`` dispatches to
        the executor when present; replayed steps are bit-identical to
        the eager interpreter.
        """
        from .graph import attach_graph_executor
        return attach_graph_executor(self, max_programs=max_programs,
                                     fuse=fuse)

    def disable_graph_executor(self) -> None:
        """Drop the attached executor; every step runs eager again."""
        from .graph import detach_graph_executor
        detach_graph_executor(self)

    # -- state ----------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        flat = self._flat
        if flat is not None and flat.is_intact():
            return flat.state_dict()
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        flat = self._flat
        if (flat is not None and flat.is_intact()
                and getattr(state, "layout", None) is flat.layout
                and state.is_intact()):
            flat.load_flat(state)
            return
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = set(params) | set(buffers)
        for name, value in state.items():
            if name in params:
                params[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")
            missing.discard(name)
        if missing:
            raise KeyError(f"missing keys in state dict: {sorted(missing)}")

    # -- call -----------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(init.kaiming_uniform((out_features, in_features), rng)))
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(init.zeros((out_features,))))
        #: optional Tensor -> Tensor hook applied to the output
        #: (INT8 activation quantisation attaches here)
        self.output_quant = None

    def forward(self, x: Tensor) -> Tensor:
        out = F.linear(x, self.weight, self.bias)
        if self.output_quant is not None:
            out = self.output_quant(out)
        return out


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 groups: int = 1, bias: bool = True):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = self.register_parameter(
            "weight", Tensor(init.kaiming_normal(shape, rng)))
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(init.zeros((out_channels,))))
        #: optional Tensor -> Tensor hook applied to the output
        #: (INT8 activation quantisation attaches here)
        self.output_quant = None

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d(x, self.weight, self.bias, stride=self.stride,
                       padding=self.padding, groups=self.groups)
        if self.output_quant is not None:
            out = self.output_quant(out)
        return out


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.weight = self.register_parameter(
            "weight", Tensor(init.ones((num_features,))))
        self.bias = self.register_parameter(
            "bias", Tensor(init.zeros((num_features,))))
        self.running_mean = self.register_buffer(
            "running_mean", init.zeros((num_features,)))
        self.running_var = self.register_buffer(
            "running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.weight, self.bias, self.running_mean,
                            self.running_var, self.training,
                            momentum=self.momentum, eps=self.eps)


class BatchNorm2d(_BatchNorm):
    pass


class BatchNorm1d(_BatchNorm):
    pass


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)
