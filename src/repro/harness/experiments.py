"""Workload definitions (Table 2) and scale presets.

A *workload* is one row of the paper's evaluation: a model, a dataset,
a simulated batch size and learning parameters.  A *scale preset*
decides how big the real numpy training runs are; the simulated clock
always runs at paper scale regardless of preset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cluster.topology import ClusterTopology
from ..data.datasets import DATASET_REGISTRY, load_dataset
from ..data.synthetic import SyntheticImageTask
from ..distributed.base import RunConfig, make_model
from ..nn.optim import SGD
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["Workload", "ScalePreset", "WORKLOADS", "SCALE_PRESETS",
           "prepare_task", "make_run_config", "pretrain_for_transfer"]


@dataclass(frozen=True)
class Workload:
    """One evaluation workload (a row of Table 3 / a panel of Fig. 8)."""

    key: str
    model: str
    dataset: str
    sim_global_batch: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    transfer_from: str | None = None     # pretrain dataset (ResNet-50 row)
    #: override the preset's channel multiplier (LeNet is tiny to begin
    #: with; shrinking it below full width makes the task unlearnable)
    width: float | None = None


# Table 2 of the paper, in Table-3 row order.
WORKLOADS: dict[str, Workload] = {w.key: w for w in [
    Workload("mobilenet", "mobilenet_v1", "cifar10", sim_global_batch=256),
    Workload("vgg11", "vgg11", "cifar10"),
    Workload("resnet18", "resnet18", "cifar10"),
    Workload("vgg11_celeba", "vgg11", "celeba"),
    Workload("resnet18_celeba", "resnet18", "celeba"),
    Workload("lenet5_emnist", "lenet5", "emnist", width=1.0),
    Workload("lenet5_fmnist", "lenet5", "fmnist", width=1.0),
    Workload("resnet50_finetune", "resnet50", "cifar10", lr=0.02,
             transfer_from="cinic10"),
]}


@dataclass(frozen=True)
class ScalePreset:
    """How big the *real* numpy training runs are.

    The simulated dataset size / batch always stay at paper scale; this
    preset only trades statistical resolution against wall-clock time.
    """

    name: str
    data_scale: float          # fraction of the real dataset generated
    image_size: int
    width: float               # model channel multiplier
    batch_size: int            # real-execution BS_g
    max_epochs: int


SCALE_PRESETS: dict[str, ScalePreset] = {p.name: p for p in [
    # CI-speed: one run in a few seconds.
    ScalePreset("quick", data_scale=0.02, image_size=16, width=0.15,
                batch_size=16, max_epochs=3),
    # Benchmark default: one run in tens of seconds.
    ScalePreset("bench", data_scale=0.06, image_size=16, width=0.25,
                batch_size=16, max_epochs=8),
    # Higher-resolution accuracy studies.
    ScalePreset("full", data_scale=0.15, image_size=16, width=0.35,
                batch_size=32, max_epochs=15),
]}


def prepare_task(workload: Workload, preset: ScalePreset,
                 seed: int = 0) -> SyntheticImageTask:
    return load_dataset(workload.dataset, scale=preset.data_scale,
                        image_size=preset.image_size, seed=seed)


def make_run_config(workload_key: str, preset_name: str = "bench",
                    num_socs: int = 32, num_groups: int = 8,
                    seed: int = 0, max_epochs: int | None = None,
                    target_accuracy: float | None = None,
                    fault_schedule=None,
                    fault_mode: str = "fail-stop",
                    telemetry=None, workers: int = 1,
                    fusion_threshold_mb: float | None = None,
                    fusion_max_ops: int | None = None,
                    graph: bool = False) -> RunConfig:
    """Build the RunConfig for one workload at one scale."""
    workload = WORKLOADS[workload_key]
    preset = SCALE_PRESETS[preset_name]
    task = prepare_task(workload, preset, seed=seed)
    spec = DATASET_REGISTRY[workload.dataset]
    config = RunConfig(
        task=task,
        model_name=workload.model,
        width=workload.width or preset.width,
        batch_size=preset.batch_size,
        lr=workload.lr,
        momentum=workload.momentum,
        max_epochs=max_epochs or preset.max_epochs,
        target_accuracy=target_accuracy,
        seed=seed,
        topology=ClusterTopology(num_socs=num_socs),
        sim_samples_per_epoch=spec.train_size,
        sim_global_batch=workload.sim_global_batch,
        num_groups=num_groups,
        workers=workers,
        fault_schedule=fault_schedule,
        fault_mode=fault_mode,
        telemetry=telemetry,
        fusion_threshold_mb=fusion_threshold_mb,
        fusion_max_ops=fusion_max_ops,
        graph=graph,
    )
    if workload.transfer_from is not None:
        config = pretrain_for_transfer(config, workload, preset, seed)
    return config


def pretrain_for_transfer(config: RunConfig, workload: Workload,
                          preset: ScalePreset, seed: int) -> RunConfig:
    """ResNet-50 transfer learning: pretrain on CINIC-10, then finetune.

    The pretrained weights become ``init_state`` and the backbone is
    frozen, matching the paper's ResNet50-Finetune row.
    """
    source = load_dataset(workload.transfer_from, scale=preset.data_scale,
                          image_size=preset.image_size, seed=seed + 7)
    pretrain_config = replace(config, task=source, init_state=None,
                              freeze_backbone=False)
    model = make_model(pretrain_config)
    optimizer = SGD(model.parameters(), lr=workload.lr,
                    momentum=workload.momentum)
    rng = np.random.default_rng(seed)
    for _ in range(2):
        order = rng.permutation(len(source.x_train))
        for start in range(0, len(order), preset.batch_size):
            idx = order[start:start + preset.batch_size]
            model.train()
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(source.x_train[idx])),
                                   source.y_train[idx])
            loss.backward()
            optimizer.step()
    return replace(config, init_state=model.state_dict(),
                   freeze_backbone=True)
