"""Tidal trace: the Figure 3 phenomenon."""

import pytest

from repro.cluster import TidalTrace
from repro.cluster.trace import IdleWindow


class TestShape:
    def test_peak_hours_busier_than_night(self):
        trace = TidalTrace()
        assert trace.busy_ratio(14.0) > 10 * trace.busy_ratio(4.0)

    def test_order_of_magnitude_gap(self):
        """Paper: midnight usage ~50x lower than peak."""
        trace = TidalTrace()
        ratio = trace.busy_ratio(14.0) / trace.busy_ratio(4.0)
        assert 20 <= ratio <= 100

    def test_average_utilization_low(self):
        """Paper: average utilisation below ~20%."""
        assert TidalTrace().average_utilization() < 0.30

    def test_wraps_around_midnight(self):
        trace = TidalTrace()
        assert trace.busy_ratio(25.0) == pytest.approx(trace.busy_ratio(1.0))

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            TidalTrace(peak_busy=0.1, trough_busy=0.5)


class TestSampling:
    def test_sample_day_shapes_and_bounds(self):
        hours, busy = TidalTrace(seed=3).sample_day(points_per_hour=2)
        assert len(hours) == 48
        assert busy.min() >= 0.0 and busy.max() <= 1.0

    def test_seeded_noise_deterministic(self):
        _, a = TidalTrace(seed=5).sample_day()
        _, b = TidalTrace(seed=5).sample_day()
        assert (a == b).all()


class TestIdleWindows:
    def test_overnight_window_exists(self):
        """Paper: a typical idle frame of ~4 h (we find the overnight one)."""
        window = TidalTrace().longest_idle_window(busy_threshold=0.25)
        assert window.duration_hours >= 4.0
        # the window covers the small hours
        assert window.start_hour <= 4.0 <= window.end_hour

    def test_windows_are_disjoint_and_ordered(self):
        windows = TidalTrace().idle_windows(busy_threshold=0.25)
        for first, second in zip(windows, windows[1:]):
            assert first.end_hour <= second.start_hour

    def test_high_threshold_gives_more_idle_time(self):
        trace = TidalTrace()
        low = sum(w.duration_hours for w in trace.idle_windows(0.1))
        high = sum(w.duration_hours for w in trace.idle_windows(0.6))
        assert high > low

    def test_no_idle_below_trough_raises(self):
        with pytest.raises(ValueError):
            TidalTrace().longest_idle_window(busy_threshold=0.001)

    def test_idle_window_validation(self):
        with pytest.raises(ValueError):
            IdleWindow(5.0, 4.0)
