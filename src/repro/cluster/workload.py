"""User-workload (cloud gaming) session simulation — the Figure 1 story.

The SoC-Cluster's day job is serving user-triggered sessions (cloud
gaming, live streaming).  :class:`SessionSimulator` generates session
arrivals from a non-homogeneous Poisson process whose rate follows the
tidal trace, assigns sessions to SoCs, and exposes the resulting busy
timeline.  :func:`derive_training_events` converts a planned overnight
training window into the preemption events SoCFlow must absorb when
users show up early — closing the loop between the trace model, the
scheduler and the training engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import PreemptionEvent
from .topology import ClusterTopology
from .trace import TidalTrace

__all__ = ["Session", "SessionSimulator", "derive_training_events"]


@dataclass(frozen=True)
class Session:
    """One user session pinned to one SoC."""

    soc: int
    start_hour: float
    duration_hours: float

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours


class SessionSimulator:
    """Poisson session arrivals whose rate follows the tidal curve.

    Parameters
    ----------
    peak_sessions_per_hour:
        Arrival rate at the busiest moment; scaled down by the trace's
        busy ratio elsewhere.
    mean_session_hours:
        Exponential session-length mean (cloud-gaming sessions run tens
        of minutes).
    """

    def __init__(self, topology: ClusterTopology,
                 trace: TidalTrace | None = None,
                 peak_sessions_per_hour: float = 120.0,
                 mean_session_hours: float = 0.75,
                 seed: int = 0):
        self.topology = topology
        self.trace = trace or TidalTrace(seed=seed)
        self.peak_rate = peak_sessions_per_hour
        self.mean_session_hours = mean_session_hours
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def simulate_day(self, resolution_hours: float = 0.1) -> list[Session]:
        """Generate one day of sessions via thinning.

        Sessions land on the lowest-numbered free SoC; arrivals beyond
        capacity are dropped (the real platform load-balances to other
        servers).
        """
        sessions: list[Session] = []
        free_at = np.zeros(self.topology.num_socs)
        steps = int(round(24.0 / resolution_hours))
        peak_busy = self.trace.peak_busy
        for i in range(steps):
            hour = i * resolution_hours
            rate = (self.peak_rate * self.trace.busy_ratio(hour)
                    / peak_busy)
            arrivals = self._rng.poisson(rate * resolution_hours)
            for _ in range(arrivals):
                soc = int(np.argmin(free_at))
                if free_at[soc] > hour:
                    continue  # saturated: drop
                duration = float(self._rng.exponential(
                    self.mean_session_hours))
                sessions.append(Session(soc, hour, duration))
                free_at[soc] = hour + duration
        return sessions

    # ------------------------------------------------------------------
    @staticmethod
    def busy_socs_at(sessions: list[Session], hour: float) -> set[int]:
        return {s.soc for s in sessions
                if s.start_hour <= hour < s.end_hour}

    def idle_socs_at(self, sessions: list[Session],
                     hour: float) -> list[int]:
        """SoCs free for training at ``hour``, in id order.

        The complement of :meth:`busy_socs_at` over the topology; the
        list is sorted so schedulers iterating it stay deterministic.
        At peak load this is legitimately *empty* — a training job must
        then stay queued rather than plan an empty logical group.
        """
        busy = self.busy_socs_at(sessions, hour)
        return [s for s in range(self.topology.num_socs) if s not in busy]

    def busy_curve(self, sessions: list[Session],
                   resolution_hours: float = 0.25) -> tuple[np.ndarray,
                                                            np.ndarray]:
        """(hours, busy fraction) — the simulated counterpart of Fig 3."""
        hours = np.arange(0.0, 24.0, resolution_hours)
        busy = np.array([
            len(self.busy_socs_at(sessions, h)) / self.topology.num_socs
            for h in hours])
        return hours, busy


def derive_training_events(sessions: list[Session],
                           window_start_hour: float,
                           epoch_hours: float,
                           max_epochs: int,
                           socs_per_group: int,
                           idle_socs: int) -> list[PreemptionEvent]:
    """Plan preemptions for a training job inside an idle window.

    The job starts at ``window_start_hour`` with ``idle_socs`` chips.
    Whenever new sessions claim enough previously-idle SoCs to exhaust
    a logical group's worth of capacity, one group is preempted at the
    next epoch boundary.

    A window too busy to host even one logical group (``idle_socs <
    socs_per_group`` — the zero-idle case included) returns no events:
    nothing was ever planned, so there is nothing to preempt.  Callers
    (e.g. the :mod:`repro.jobs` scheduler) must keep such a job queued
    instead of starting it — an empty logical group is never planned.
    """
    if socs_per_group <= 0 or epoch_hours <= 0:
        raise ValueError("socs_per_group and epoch_hours must be positive")
    if idle_socs < 0:
        raise ValueError("idle_socs must be non-negative")
    if idle_socs < socs_per_group:
        return []
    events: list[PreemptionEvent] = []
    baseline = len(SessionSimulator.busy_socs_at(sessions,
                                                 window_start_hour))
    claimed_groups = 0
    for epoch in range(max_epochs):
        hour = (window_start_hour + (epoch + 1) * epoch_hours) % 24.0
        busy_now = len(SessionSimulator.busy_socs_at(sessions, hour))
        surge = max(0, busy_now - baseline)
        groups_needed = min(surge // socs_per_group,
                            idle_socs // socs_per_group - claimed_groups)
        if groups_needed > claimed_groups:
            events.append(PreemptionEvent(
                epoch=epoch + 1,
                num_groups=groups_needed - claimed_groups))
            claimed_groups = groups_needed
    return events
