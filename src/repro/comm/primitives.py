"""State-dict arithmetic shared by all aggregation schemes."""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Sequence

import numpy as np

StateDict = "OrderedDict[str, np.ndarray]"

__all__ = ["average_states", "weighted_average_states", "state_l2_distance",
           "zeros_like_state"]


def average_states(states: Sequence[dict]) -> "OrderedDict[str, np.ndarray]":
    """Uniform element-wise average of model state dicts."""
    if not states:
        raise ValueError("need at least one state")
    return weighted_average_states(states, [1.0] * len(states))


def weighted_average_states(states: Sequence[dict],
                            weights: Sequence[float]
                            ) -> "OrderedDict[str, np.ndarray]":
    """Weighted element-wise average (weights are normalised)."""
    if len(states) != len(weights):
        raise ValueError("one weight per state required")
    total = float(sum(weights))
    if total <= 0 or not math.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    keys = list(states[0].keys())
    for state in states[1:]:
        if list(state.keys()) != keys:
            raise ValueError("state dicts have mismatched keys")
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for key in keys:
        acc = np.zeros_like(np.asarray(states[0][key], dtype=np.float64))
        for state, weight in zip(states, weights):
            acc += (weight / total) * state[key]
        out[key] = acc.astype(states[0][key].dtype)
    return out


def state_l2_distance(a: dict, b: dict) -> float:
    """L2 distance between two state dicts (divergence diagnostics)."""
    total = 0.0
    for key in a:
        diff = np.asarray(a[key], dtype=np.float64) - b[key]
        total += float(np.sum(diff * diff))
    return math.sqrt(total)


def zeros_like_state(state: dict) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((k, np.zeros_like(v)) for k, v in state.items())
