"""Vision Transformer extension: LayerNorm, attention, end-to-end."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.models import (LayerNorm, MultiHeadAttention,
                             TransformerBlock, VisionTransformer,
                             build_model)
from repro.nn.optim import Adam

RNG = np.random.default_rng(0)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        x = Tensor((5.0 + 2.0 * RNG.standard_normal((4, 7, 16))).astype(
            np.float32))
        out = LayerNorm(16)(x).numpy()
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-2)

    def test_gradient_flows(self):
        x = Tensor(RNG.standard_normal((2, 3, 8)).astype(np.float32),
                   requires_grad=True)
        LayerNorm(8)(x).sum().backward()
        assert x.grad is not None

    def test_numeric_gradient(self):
        norm = LayerNorm(6)
        x0 = RNG.standard_normal((2, 6)).astype(np.float32)
        proj = RNG.standard_normal((2, 6)).astype(np.float32)

        def scalar(arr):
            out = (norm(Tensor(arr)).numpy() * proj)
            return float((out ** 2).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        out = norm(x) * Tensor(proj)
        (out * out).sum().backward()
        idx = (1, 3)
        eps = 1e-3
        xp, xm = x0.copy(), x0.copy()
        xp[idx] += eps
        xm[idx] -= eps
        numeric = (scalar(xp) - scalar(xm)) / (2 * eps)
        assert float(x.grad[idx]) == pytest.approx(numeric, rel=5e-2,
                                                   abs=1e-3)


class TestAttention:
    def test_output_shape(self):
        attention = MultiHeadAttention(16, 4, RNG)
        x = Tensor(RNG.standard_normal((2, 9, 16)).astype(np.float32))
        assert attention(x).shape == (2, 9, 16)

    def test_heads_must_divide_dim(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, RNG)

    def test_permutation_equivariance(self):
        """Self-attention without position info commutes with token
        permutations."""
        attention = MultiHeadAttention(8, 2, RNG)
        x = RNG.standard_normal((1, 5, 8)).astype(np.float32)
        perm = np.array([3, 0, 4, 1, 2])
        out = attention(Tensor(x)).numpy()
        out_perm = attention(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-4)

    def test_gradient_flows_to_qkv(self):
        attention = MultiHeadAttention(8, 2, RNG)
        x = Tensor(RNG.standard_normal((1, 4, 8)).astype(np.float32))
        attention(x).sum().backward()
        assert attention.qkv.weight.grad is not None
        assert attention.proj.weight.grad is not None


class TestBlockAndModel:
    def test_block_preserves_shape(self):
        block = TransformerBlock(16, 4, 2.0, RNG)
        x = Tensor(RNG.standard_normal((2, 6, 16)).astype(np.float32))
        assert block(x).shape == (2, 6, 16)

    def test_vit_forward_shape(self):
        model = VisionTransformer(num_classes=7, in_channels=3,
                                  image_size=16, width=0.5, seed=0,
                                  depth=2)
        x = Tensor(RNG.standard_normal((3, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (3, 7)

    def test_patch_size_must_divide(self):
        with pytest.raises(ValueError):
            VisionTransformer(image_size=15, patch_size=4)

    def test_registry_has_vit(self):
        model = build_model("vit_tiny", num_classes=3, in_channels=3,
                            image_size=16, width=0.25, seed=0)
        assert model.num_parameters() > 0

    def test_trains_with_adam_on_memorized_batch(self):
        model = VisionTransformer(num_classes=4, in_channels=3,
                                  image_size=16, width=0.5, seed=0,
                                  depth=2)
        optimizer = Adam(model.parameters(), lr=1e-3)
        x = RNG.standard_normal((8, 3, 16, 16)).astype(np.float32)
        y = np.array([0, 1, 2, 3] * 2)
        losses = []
        for _ in range(15):
            model.train()
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5

    def test_state_dict_roundtrip(self):
        a = VisionTransformer(num_classes=3, image_size=16, width=0.25,
                              seed=0, depth=2)
        b = VisionTransformer(num_classes=3, image_size=16, width=0.25,
                              seed=9, depth=2)
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.standard_normal((2, 3, 16, 16)).astype(np.float32))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy(), rtol=1e-5)

    def test_int8_trainer_works_on_vit(self):
        from repro.quant import Int8Trainer, QuantConfig
        model = VisionTransformer(num_classes=3, image_size=16, width=0.25,
                                  seed=0, depth=1)
        trainer = Int8Trainer(model, lr=1e-3, config=QuantConfig(), seed=0)
        x = RNG.standard_normal((4, 3, 16, 16)).astype(np.float32)
        loss = trainer.train_step(x, np.array([0, 1, 2, 0]))
        assert np.isfinite(loss)
