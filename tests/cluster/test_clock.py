"""Simulated phase clock."""

import pytest

from repro.cluster import PhaseClock


class TestClock:
    def test_advance_accumulates(self):
        clock = PhaseClock()
        clock.advance(2.0, "compute")
        clock.advance(1.0, "sync")
        clock.advance(3.0, "compute")
        assert clock.now == 6.0
        assert clock.breakdown() == {"compute": 5.0, "sync": 1.0}

    def test_attribute_does_not_advance_wall(self):
        clock = PhaseClock()
        clock.advance(2.0, "compute")
        clock.attribute(1.5, "sync")
        assert clock.now == 2.0
        assert clock.breakdown()["sync"] == 1.5

    def test_fraction(self):
        clock = PhaseClock()
        clock.advance(3.0, "compute")
        clock.advance(1.0, "sync")
        assert clock.fraction("compute") == pytest.approx(0.75)
        assert clock.fraction("missing") == 0.0

    def test_fraction_of_empty_clock(self):
        assert PhaseClock().fraction("compute") == 0.0

    def test_negative_rejected(self):
        clock = PhaseClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0, "compute")
        with pytest.raises(ValueError):
            clock.attribute(-1.0, "sync")

    def test_reset(self):
        clock = PhaseClock()
        clock.advance(1.0, "compute")
        clock.reset()
        assert clock.now == 0.0
        assert clock.breakdown() == {}

    def test_merge_adds_time_and_phases(self):
        clock = PhaseClock()
        clock.advance(2.0, "compute")
        scratch = PhaseClock()
        scratch.advance(1.5, "recovery")
        scratch.advance(0.5, "compute")
        clock.merge(scratch)
        assert clock.now == 4.0
        assert clock.breakdown() == {"compute": 2.5, "recovery": 1.5}
        # the source clock is untouched
        assert scratch.now == 2.0

    def test_merge_empty_is_noop(self):
        clock = PhaseClock()
        clock.advance(1.0, "sync")
        clock.merge(PhaseClock())
        assert clock.now == 1.0
        assert clock.breakdown() == {"sync": 1.0}
