"""LeNet-5 (LeCun et al.) for 28x28 single-channel inputs."""

from __future__ import annotations

import numpy as np

from ..modules import (Conv2d, Flatten, Linear, MaxPool2d, Module, ReLU,
                       Sequential)
from ..tensor import Tensor


def _scaled(channels: int, width: float) -> int:
    return max(1, int(round(channels * width)))


class LeNet5(Module):
    """Classic LeNet-5 with ReLU activations and max pooling.

    Parameters
    ----------
    num_classes: output classes (47 for EMNIST-balanced, 10 for F-MNIST).
    in_channels: input channels (1 for the MNIST family).
    image_size: square input side; 28 matches the paper's datasets.
    width: channel multiplier for fast reduced-scale experiments.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 1,
                 image_size: int = 28, width: float = 1.0,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        c1 = _scaled(6, width)
        c2 = _scaled(16, width)
        self.features = Sequential(
            Conv2d(in_channels, c1, 5, rng, padding=2),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, 5, rng),
            ReLU(),
            MaxPool2d(2),
        )
        # 28 -> (pad2, k5) 28 -> pool 14 -> k5 10 -> pool 5
        feat = (image_size // 2 - 4) // 2
        flat = c2 * feat * feat
        h1 = _scaled(120, width)
        h2 = _scaled(84, width)
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, h1, rng),
            ReLU(),
            Linear(h1, h2, rng),
            ReLU(),
            Linear(h2, num_classes, rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
