"""Job-spec validation and YAML/JSON job-file parsing."""

import json
from pathlib import Path

import pytest

from repro.jobs import (JobSpecError, TrainingJob, load_job_file,
                        parse_job_specs, parse_simple_yaml)
from repro.jobs import spec as spec_module

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "jobs.yaml"

YAML_DOC = """\
# a comment
cluster:
  socs: 16
  seed: 7
jobs:
  - id: alpha
    workload: vgg11
    priority: 2
    min_socs: 4
    max_socs: 8
    mixed: true
  - id: beta
    workload: lenet5_fmnist
    submit_hour: 1.5
"""


class TestTrainingJobValidation:
    def test_defaults(self):
        job = TrainingJob(id="j", workload="vgg11")
        assert job.priority == 1
        assert job.min_socs <= job.max_socs
        assert job.deadline_hours is None

    @pytest.mark.parametrize("overrides", [
        {"id": ""},
        {"workload": ""},
        {"priority": 0},
        {"min_socs": 0},
        {"min_socs": 8, "max_socs": 4},
        {"epochs": 0},
        {"submit_hour": -1.0},
        {"deadline_hours": 0.0},
        {"target_group_size": 0},
    ])
    def test_rejects_bad_fields(self, overrides):
        spec = dict(id="j", workload="vgg11")
        spec.update(overrides)
        with pytest.raises(JobSpecError):
            TrainingJob(**spec)


class TestParseJobSpecs:
    def test_bare_list(self):
        jobs, cluster = parse_job_specs([{"id": "a", "workload": "vgg11"}])
        assert [j.id for j in jobs] == ["a"]
        assert cluster == {}

    def test_cluster_section(self):
        jobs, cluster = parse_job_specs({
            "cluster": {"socs": 16},
            "jobs": [{"id": "a", "workload": "vgg11"}]})
        assert cluster == {"socs": 16}

    def test_unknown_job_field_rejected(self):
        with pytest.raises(JobSpecError, match="unknown field"):
            parse_job_specs([{"id": "a", "workload": "vgg11",
                              "gpus": 4}])

    def test_unknown_top_level_section_rejected(self):
        with pytest.raises(JobSpecError, match="top-level"):
            parse_job_specs({"jobs": [{"id": "a", "workload": "v"}],
                             "nodes": 3})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(JobSpecError, match="duplicate"):
            parse_job_specs([{"id": "a", "workload": "v"},
                             {"id": "a", "workload": "v"}])

    @pytest.mark.parametrize("payload", [
        "jobs: everywhere", {"jobs": []}, {"jobs": "nope"}, {}, []])
    def test_malformed_documents_rejected(self, payload):
        with pytest.raises(JobSpecError):
            parse_job_specs(payload)


class TestSimpleYaml:
    def test_parses_nested_document(self):
        payload = parse_simple_yaml(YAML_DOC)
        assert payload["cluster"] == {"socs": 16, "seed": 7}
        alpha, beta = payload["jobs"]
        assert alpha == {"id": "alpha", "workload": "vgg11",
                         "priority": 2, "min_socs": 4, "max_socs": 8,
                         "mixed": True}
        assert beta["submit_hour"] == 1.5

    def test_scalar_types(self):
        payload = parse_simple_yaml(
            "a: 1\nb: 2.5\nc: yes\nd: 'quoted'\ne: null\nf: text\n")
        assert payload == {"a": 1, "b": 2.5, "c": True, "d": "quoted",
                           "e": None, "f": "text"}

    def test_empty_document_rejected(self):
        with pytest.raises(JobSpecError):
            parse_simple_yaml("# only comments\n")

    def test_example_file_parses(self):
        jobs, cluster = parse_job_specs(
            parse_simple_yaml(EXAMPLE.read_text()))
        assert len(jobs) >= 3
        assert cluster["socs"] == 32

    def test_matches_pyyaml_when_available(self):
        yaml = pytest.importorskip("yaml")
        assert (parse_simple_yaml(EXAMPLE.read_text())
                == yaml.safe_load(EXAMPLE.read_text()))
        assert parse_simple_yaml(YAML_DOC) == yaml.safe_load(YAML_DOC)


class TestLoadJobFile:
    def test_json_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(
            {"jobs": [{"id": "a", "workload": "vgg11"}]}))
        jobs, _ = load_job_file(path)
        assert jobs[0].workload == "vgg11"

    def test_bad_json_reports_path(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{nope")
        with pytest.raises(JobSpecError, match="jobs.json"):
            load_job_file(path)

    def test_yaml_without_pyyaml_uses_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setattr(spec_module, "_yaml", None)
        path = tmp_path / "jobs.yaml"
        path.write_text(YAML_DOC)
        jobs, cluster = load_job_file(path)
        assert [j.id for j in jobs] == ["alpha", "beta"]
        assert cluster["seed"] == 7

    def test_example_file_loads(self):
        jobs, cluster = load_job_file(EXAMPLE)
        assert {j.id for j in jobs} == {"vgg-nightly", "mobilenet-batch",
                                        "lenet-late"}
        assert jobs[0].deadline_hours == 12
