"""Simulated wall clock with named-phase accounting.

Every distributed strategy advances one shared :class:`PhaseClock`;
the per-phase totals are exactly the Compute / Sync / Update breakdown
of Figure 12, and the final :attr:`now` is the end-to-end training time
of Figures 8 and 10.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["PhaseClock"]


class PhaseClock:
    """Accumulates simulated seconds, attributed to named phases."""

    def __init__(self):
        self.now = 0.0
        self.phase_totals: dict[str, float] = defaultdict(float)
        #: the attributed (hidden-under-compute) share of each phase —
        #: a subset of :attr:`phase_totals`, never part of :attr:`now`
        self.attributed_totals: dict[str, float] = defaultdict(float)

    def advance(self, seconds: float, phase: str) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.now += seconds
        self.phase_totals[phase] += seconds

    def attribute(self, seconds: float, phase: str) -> None:
        """Credit busy time to a phase *without* advancing the wall clock.

        Used for synchronisation that is overlapped (hidden) under
        compute: the network is busy — and Figure 12's breakdown counts
        it — but no wall time elapses beyond the compute window.
        """
        if seconds < 0:
            raise ValueError(f"cannot attribute negative time {seconds}")
        self.phase_totals[phase] += seconds
        self.attributed_totals[phase] += seconds

    def breakdown(self) -> dict[str, float]:
        """Phase → seconds, in insertion order."""
        return dict(self.phase_totals)

    def attributed_breakdown(self) -> dict[str, float]:
        """Phase → hidden seconds (the overlapped share of the totals)."""
        return dict(self.attributed_totals)

    def merge(self, other: "PhaseClock") -> None:
        """Fold another clock's elapsed time and phase totals into this
        one.

        Recovery steps (and any other sub-procedure priced on a scratch
        clock) keep their own phase attribution and aggregate correctly:
        the wall clock advances by the scratch clock's total and every
        phase total adds through, instead of the sub-procedure's
        breakdown being flattened into a single phase.
        """
        self.now += other.now
        for phase, seconds in other.phase_totals.items():
            self.phase_totals[phase] += seconds
        for phase, seconds in other.attributed_totals.items():
            self.attributed_totals[phase] += seconds

    def fraction(self, phase: str) -> float:
        return self.phase_totals.get(phase, 0.0) / self.now if self.now else 0.0

    def reset(self) -> None:
        self.now = 0.0
        self.phase_totals.clear()
        self.attributed_totals.clear()
