"""The serving plane: shared request queue, replica pool, SLO autoscaler.

:class:`ServingPlane` simulates the inference side of the cluster at
request granularity.  It owns the pre-generated arrival stream, a
shared FIFO request queue, and a pool of per-SoC
:class:`~repro.serving.replica.Replica` servers; time advances in fixed
*check windows* (the autoscaler's control period).  Inside a window,
batches form greedily: the earliest-free replica takes up to
``max_batch`` queued requests that have already arrived when it can
start, so batching amortises launch overhead without ever idling a
replica to wait for a fuller batch.  Requests whose queueing delay
exceeds the shedding timeout are dropped — and counted, never silent.

At each window boundary the autoscaler compares demand against
capacity: the target replica count covers the next window's arrival
rate at ``target_utilisation``, plus whatever it takes to drain the
current backlog within one window, bumped by one whenever the window's
p99 violated the SLO.  Scale-ups claim idle SoCs immediately (with a
spin-up delay before the new replica serves); when idle SoCs run out
the shortfall is published as :attr:`pending_deficit`, which the
co-scheduler converts into training preemptions at the next round
boundary.  Scale-downs wait out a patience period and only release
replicas that are idle, so in-flight batches always finish.

Determinism: arrivals are pre-generated, batch formation is a pure
function of arrival times and replica state, and every iteration is
sorted — the same parameters and seed produce byte-identical window
stats, metrics and traces.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import NULL_TELEMETRY, Telemetry
from .arrivals import ArrivalProcess
from .replica import Replica, ServiceModel

__all__ = ["ServingPlane", "WindowStats"]


@dataclass
class WindowStats:
    """Aggregates of one check window (the autoscaler's control period)."""

    index: int
    start_hour: float
    end_hour: float
    arrivals: int = 0
    served: int = 0
    dropped: int = 0
    queue_depth: int = 0
    replicas: int = 0
    p50_ms: float | None = None
    p99_ms: float | None = None
    violation: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_hour": round(self.start_hour, 6),
            "arrivals": self.arrivals, "served": self.served,
            "dropped": self.dropped, "queue_depth": self.queue_depth,
            "replicas": self.replicas,
            "p50_ms": (None if self.p50_ms is None
                       else round(self.p50_ms, 3)),
            "p99_ms": (None if self.p99_ms is None
                       else round(self.p99_ms, 3)),
            "violation": self.violation,
        }


def _nearest_rank(sorted_ms: "np.ndarray", p: float) -> float:
    """Nearest-rank percentile (the histogram's rule) over a sorted
    array, so window stats and registry summaries agree."""
    rank = max(0, min(len(sorted_ms) - 1,
                      int(round(p / 100.0 * (len(sorted_ms) - 1)))))
    return float(sorted_ms[rank])


class ServingPlane:
    """Request queue + replica pool + SLO-aware autoscaler.

    Parameters
    ----------
    arrivals, service:
        The workload and the calibrated per-replica timing.
    slo_ms:
        The p99 latency objective per check window.
    target_utilisation:
        Demand headroom: replicas are provisioned so the forecast rate
        uses only this share of their peak throughput.
    min_replicas, max_replicas:
        Pool bounds (``max_replicas=None`` = bounded by the cluster).
    check_interval_hours:
        Control period; also the stats/telemetry window.
    scale_down_patience:
        Consecutive calm windows before surplus replicas release.
    spinup_s:
        Model-load delay before a newly claimed SoC serves traffic.
    shed_after_s:
        Queueing-delay bound after which a request is dropped
        (defaults to ``4 * slo_ms``): the real platform sheds to other
        servers rather than serve a hopelessly late response.
    autoscale:
        ``False`` freezes the pool (the statically provisioned
        baseline): no claims, no releases, no deficit.
    sim_zero_hour:
        Hour mapped to simulated second 0 in traces (the scheduler's
        ``start_hour``).
    """

    def __init__(self, arrivals: ArrivalProcess, service: ServiceModel, *,
                 slo_ms: float = 250.0, target_utilisation: float = 0.6,
                 min_replicas: int = 1, max_replicas: "int | None" = None,
                 check_interval_hours: float = 0.25,
                 scale_down_patience: int = 3, spinup_s: float = 30.0,
                 shed_after_s: "float | None" = None, autoscale: bool = True,
                 sim_zero_hour: "float | None" = None,
                 telemetry: "Telemetry | None" = None):
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not 0 < target_utilisation <= 1:
            raise ValueError("target_utilisation must be in (0, 1]")
        if min_replicas < 0:
            raise ValueError("min_replicas must be non-negative")
        if max_replicas is not None and max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if check_interval_hours <= 0:
            raise ValueError("check_interval_hours must be positive")
        self.arrivals = arrivals
        self.service = service
        self.slo_ms = slo_ms
        self.target_utilisation = target_utilisation
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.check_interval_hours = check_interval_hours
        self.scale_down_patience = scale_down_patience
        self.spinup_s = spinup_s
        self.shed_after_s = (4.0 * slo_ms / 1000.0 if shed_after_s is None
                             else shed_after_s)
        self.autoscale = autoscale
        self.sim_zero_hour = (arrivals.start_hour if sim_zero_hour is None
                              else sim_zero_hour)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        self.replicas: "dict[int, Replica]" = {}
        self.windows: "list[WindowStats]" = []
        self.pending_deficit = 0
        self.total_requests = 0
        self.total_served = 0
        self.total_dropped = 0
        self.violation_windows = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.preempted_socs = 0
        self.replica_soc_hours = 0.0

        self._now = arrivals.start_hour
        self._queue: "list[float]" = []      # arrival hours awaiting dispatch
        self._head = 0                       # queue read pointer
        self._arrival_ptr = 0                # consumed prefix of arrivals
        self._heap: "list[tuple[float, int]]" = []   # (effective free, soc)
        self._calm_windows = 0
        self._window_index = 0

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    @property
    def held_socs(self) -> "set[int]":
        """SoCs currently owned by serving replicas."""
        return set(self.replicas)

    def provision(self, socs: "list[int]", hour: float, *,
                  warm: bool = True) -> None:
        """Install replicas on ``socs`` (no spin-up when ``warm``)."""
        ready = hour if warm else hour + self.spinup_s / 3600.0
        for soc in sorted(socs):
            if soc in self.replicas:
                raise ValueError(f"soc {soc} already serves")
            replica = Replica(soc, self.service, ready_hour=ready)
            self.replicas[soc] = replica
            heapq.heappush(self._heap, (replica.ready_hour, soc))

    def grant(self, socs: "list[int]", hour: float) -> None:
        """Hand over SoCs preempted from training (co-scheduler path)."""
        socs = sorted(socs)[:max(0, self.pending_deficit)]
        if not socs:
            return
        self.provision(socs, hour, warm=False)
        self.pending_deficit -= len(socs)
        self.preempted_socs += len(socs)
        self.scale_ups += len(socs)
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.event("scale", self._sim_s(hour), name="scale-up:preempt",
                         socs=len(socs), replicas=len(self.replicas))

    def bootstrap(self, claimable: "list[int]", hour: float) -> None:
        """Provision the initial pool for the first window's forecast.

        The service was already running before the simulated horizon
        begins, so the starting replicas are warm (no spin-up) and not
        counted as scale-ups.
        """
        if self.replicas or not self.autoscale:
            return
        check_s = self.check_interval_hours * 3600.0
        forecast_rps = self.arrivals.count_between(
            hour, hour + self.check_interval_hours) / check_s
        per_replica_rps = self.target_utilisation * self.service.peak_rps
        target = max(math.ceil(forecast_rps / per_replica_rps),
                     self.min_replicas)
        if self.max_replicas is not None:
            target = min(target, self.max_replicas)
        claims = sorted(claimable, reverse=True)[:target]
        for soc in claims:
            claimable.remove(soc)
        self.provision(claims, hour, warm=True)
        self.pending_deficit = target - len(claims)

    def _sim_s(self, hour: float) -> float:
        return (hour - self.sim_zero_hour) * 3600.0

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def advance(self, until_hour: float,
                claimable: "list[int] | None" = None, *,
                flush: bool = False) -> None:
        """Process complete check windows up to ``until_hour``.

        ``claimable`` is this round's idle-SoC pool (mutated as the
        autoscaler claims from it).  A trailing partial window is left
        for the next call unless ``flush`` (end of horizon).
        """
        claimable = claimable if claimable is not None else []
        eps = 1e-9
        while self._now + self.check_interval_hours <= until_hour + eps:
            w1 = self._now + self.check_interval_hours
            self._run_window(self._now, w1, claimable)
            self._now = w1
        if flush and until_hour > self._now + eps:
            self._run_window(self._now, until_hour, claimable)
            self._now = until_hour

    # ------------------------------------------------------------------
    def _run_window(self, t0: float, t1: float,
                    claimable: "list[int]") -> None:
        stats = WindowStats(index=self._window_index, start_hour=t0,
                            end_hour=t1, replicas=len(self.replicas))
        self._window_index += 1

        # 1. admit this window's arrivals into the shared queue
        hi = int(np.searchsorted(self.arrivals.arrivals_h, t1, side="left"))
        fresh = self.arrivals.arrivals_h[self._arrival_ptr:hi]
        self._arrival_ptr = hi
        stats.arrivals = len(fresh)
        self.total_requests += len(fresh)
        if len(fresh):
            self._queue.extend(fresh.tolist())

        # 2. dispatch batches until nothing can start inside the window
        latencies_ms, dropped = self._dispatch(t1)
        stats.served = len(latencies_ms)
        stats.dropped = dropped
        self.total_served += stats.served
        self.total_dropped += dropped
        self.observe_latencies(latencies_ms)
        stats.queue_depth = len(self._queue) - self._head
        if latencies_ms:
            ordered = np.sort(np.asarray(latencies_ms))
            stats.p50_ms = _nearest_rank(ordered, 50)
            stats.p99_ms = _nearest_rank(ordered, 99)
            stats.violation = stats.p99_ms > self.slo_ms
        # an un-drained backlog is an SLO violation in the making even
        # if every *served* request was fast
        if stats.queue_depth > 0 and not self.replicas:
            stats.violation = True
        if stats.violation:
            self.violation_windows += 1

        self.replica_soc_hours += len(self.replicas) * (t1 - t0)
        self._emit_window(stats, t0, t1)
        self.windows.append(stats)

        # 3. autoscale for the next window
        if self.autoscale:
            self._autoscale(stats, t1, claimable)

    # ------------------------------------------------------------------
    def _dispatch(self, t1: float) -> "tuple[list[float], int]":
        """Form and run batches whose start falls before ``t1``."""
        latencies_ms: list[float] = []
        dropped = 0
        shed_h = self.shed_after_s / 3600.0
        max_batch = self.service.max_batch
        queue, heap = self._queue, self._heap
        while self._head < len(queue):
            # earliest-free live replica (lazy-invalidated heap)
            replica = None
            while heap:
                free, soc = heap[0]
                replica = self.replicas.get(soc)
                if replica is None or \
                        max(replica.free_hour, replica.ready_hour) > free + 1e-12:
                    heapq.heappop(heap)
                    replica = None
                    continue
                break
            if replica is None:
                # no capacity at all: shed what has already waited out
                # the timeout by t1, keep the rest queued
                while self._head < len(queue) \
                        and t1 - queue[self._head] > shed_h:
                    self._head += 1
                    dropped += 1
                break
            start = max(free, queue[self._head])
            if start >= t1 - 1e-12:
                break                    # next batch belongs to a later window
            # shed requests that would exceed the timeout by batch start
            while self._head < len(queue) \
                    and start - queue[self._head] > shed_h:
                self._head += 1
                dropped += 1
            if self._head >= len(queue):
                continue
            start = max(free, queue[self._head])
            if start >= t1 - 1e-12:
                break
            # batch = requests already arrived when the replica can start
            n = 0
            while n < max_batch and self._head + n < len(queue) \
                    and queue[self._head + n] <= start + 1e-12:
                n += 1
            batch = queue[self._head:self._head + n]
            self._head += n
            heapq.heappop(heap)
            done = replica.serve_batch(start, n)
            heapq.heappush(heap, (done, replica.soc))
            latencies_ms.extend((done - a) * 3_600_000.0 for a in batch)
        if self._head > 4096 and self._head * 2 > len(queue):
            del queue[:self._head]      # compact the consumed prefix
            self._head = 0
        return latencies_ms, dropped

    # ------------------------------------------------------------------
    def _autoscale(self, stats: WindowStats, hour: float,
                   claimable: "list[int]") -> None:
        check_s = self.check_interval_hours * 3600.0
        per_replica_rps = self.target_utilisation * self.service.peak_rps
        forecast_rps = self.arrivals.count_between(
            hour, hour + self.check_interval_hours) / check_s
        base_need = math.ceil(forecast_rps / per_replica_rps)
        # extra replicas to drain the backlog within one window
        drain_per_replica = self.service.peak_rps * check_s
        backlog_need = math.ceil(stats.queue_depth / drain_per_replica)
        target = max(base_need + backlog_need, self.min_replicas)
        if stats.violation:
            target = max(target, len(self.replicas) + 1)
        if self.max_replicas is not None:
            target = min(target, self.max_replicas)

        current = len(self.replicas)
        if target > current:
            self._calm_windows = 0
            want = target - current
            claims = sorted((s for s in claimable
                             if s not in self.replicas),
                            reverse=True)[:want]
            if claims:
                for soc in claims:
                    claimable.remove(soc)
                self.provision(claims, hour, warm=False)
                self.scale_ups += len(claims)
                tracer = self.telemetry.tracer
                if tracer.enabled:
                    tracer.event("scale", self._sim_s(hour),
                                 name="scale-up", socs=len(claims),
                                 replicas=len(self.replicas))
            self.pending_deficit = want - len(claims)
        elif target < current:
            self.pending_deficit = 0
            self._calm_windows += 1
            if self._calm_windows >= self.scale_down_patience:
                self._release(current - target, hour)
        else:
            self.pending_deficit = 0
            self._calm_windows = 0

    def _release(self, count: int, hour: float) -> None:
        """Release up to ``count`` idle replicas (lowest SoC ids first,
        handing the training-preferred low range back first)."""
        released = []
        for soc in sorted(self.replicas):
            if len(released) >= count:
                break
            replica = self.replicas[soc]
            if replica.free_hour <= hour + 1e-12:    # in-flight batches finish
                released.append(soc)
        for soc in released:
            del self.replicas[soc]
        if released:
            self.scale_downs += len(released)
            self._calm_windows = 0
            tracer = self.telemetry.tracer
            if tracer.enabled:
                tracer.event("scale", self._sim_s(hour), name="scale-down",
                             socs=len(released),
                             replicas=len(self.replicas))

    # ------------------------------------------------------------------
    def _emit_window(self, stats: WindowStats, t0: float, t1: float) -> None:
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        metrics = telemetry.metrics
        if metrics.enabled:
            metrics.counter("serving.requests").inc(stats.arrivals)
            metrics.counter("serving.served").inc(stats.served)
            if stats.dropped:
                metrics.counter("serving.dropped").inc(stats.dropped)
            if stats.violation:
                metrics.counter("serving.slo_violations").inc()
            metrics.gauge("serving.replicas").set(stats.replicas)
            metrics.gauge("serving.queue_depth").set(stats.queue_depth)
        tracer = telemetry.tracer
        if tracer.enabled:
            args = {"arrivals": stats.arrivals, "served": stats.served,
                    "dropped": stats.dropped,
                    "queue_depth": stats.queue_depth,
                    "replicas": stats.replicas, "slo_ms": self.slo_ms,
                    "violation": stats.violation}
            if stats.p50_ms is not None:
                args["p50_ms"] = round(stats.p50_ms, 3)
                args["p99_ms"] = round(stats.p99_ms, 3)
            tracer.span("serve", self._sim_s(t0), (t1 - t0) * 3600.0,
                        name=f"serve window {stats.index}", **args)

    def observe_latencies(self, latencies_ms: "list[float]") -> None:
        """Feed served-request latencies into the registry histogram."""
        metrics = self.telemetry.metrics
        if metrics.enabled and latencies_ms:
            metrics.histogram("serving.latency_ms").observe_many(
                latencies_ms)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The report block (`report.extra["serving"]`) for one run."""
        served_ms = self.telemetry.metrics.histogram("serving.latency_ms") \
            if self.telemetry.metrics.enabled else None
        out = {
            "requests": self.total_requests,
            "served": self.total_served,
            "dropped": self.total_dropped,
            "queued_at_end": len(self._queue) - self._head,
            "windows": len(self.windows),
            "violation_windows": self.violation_windows,
            "slo_ms": self.slo_ms,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "preempted_socs": self.preempted_socs,
            "replica_soc_hours": round(self.replica_soc_hours, 6),
            "max_replicas_seen": max(
                (w.replicas for w in self.windows), default=0),
            "max_p99_ms": max(
                (round(w.p99_ms, 3) for w in self.windows
                 if w.p99_ms is not None), default=None),
            "window_stats": [w.to_dict() for w in self.windows],
        }
        if served_ms is not None and served_ms.count:
            out["latency_ms"] = {
                "p50": round(served_ms.percentile(50), 3),
                "p99": round(served_ms.percentile(99), 3),
                "max": round(served_ms.max, 3),
            }
        return out
