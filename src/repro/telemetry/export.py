"""Trace/metrics exporters.

Three views of one run's telemetry:

- :func:`to_chrome_trace` — a ``chrome://tracing`` / Perfetto-compatible
  JSON object: one *process* per PCB, one *thread* per SoC, plus a
  ``cluster`` process for control-board work (dispatch, recovery,
  epoch markers) and — when records carry a ``job`` label — a ``jobs``
  process with one thread per training job, so concurrent jobs in a
  multi-tenant schedule render on distinguishable rows.  Open the
  written file directly in Perfetto.
- :func:`to_jsonl` — one JSON object per trace record, in emission
  order.  Deterministic byte-for-byte for a fixed seed + fault spec.
- :func:`render_epoch_table` / :func:`render_metrics_table` — the
  human-readable per-epoch and metrics summaries, built on the
  harness's :func:`~repro.harness.reporting.format_table` renderer.
"""

from __future__ import annotations

import gzip
import io
import json

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_jsonl",
           "write_jsonl", "write_trace", "load_trace_records",
           "open_text", "render_epoch_table", "render_metrics_table"]


def open_text(path, mode: str = "r"):
    """Open ``path`` for text I/O, transparently gzipped for ``*.gz``.

    Written gzip members carry ``mtime=0`` and no embedded filename, so
    two identical exports produce byte-identical ``.gz`` files — the
    same determinism contract the plain-text writers honour.
    """
    if not str(path).endswith(".gz"):
        return open(path, mode)
    if "w" in mode:
        raw = gzip.GzipFile(filename="", mode="wb", fileobj=open(path, "wb"),
                            mtime=0)
        return io.TextIOWrapper(raw, encoding="utf-8", newline="\n")
    return io.TextIOWrapper(gzip.GzipFile(filename=str(path), mode="rb"),
                            encoding="utf-8")

#: pid of the control-board/cluster-level process in Chrome traces;
#: PCB ``k`` gets pid ``k + 1``.
_CLUSTER_PID = 0
#: tid for records attributed to a PCB but no specific SoC (NIC lanes)
_NIC_TID = 0
#: pid of the per-job lane process (multi-tenant schedules); chosen far
#: above any realistic PCB count so its sort index puts it last.
_JOBS_PID = 1000


def _pid_tid(record, job_tids: dict) -> tuple[int, int]:
    if record.job is not None and record.pcb is None:
        tid = job_tids.setdefault(record.job, len(job_tids) + 1)
        return _JOBS_PID, tid
    if record.pcb is None:
        return _CLUSTER_PID, 0
    pid = record.pcb + 1
    tid = record.soc + 1 if record.soc is not None else _NIC_TID
    return pid, tid


def to_chrome_trace(tracer) -> dict:
    """Convert a tracer's records to the Chrome trace-event format."""
    events: list[dict] = []
    seen_pids: dict[int, str] = {}
    seen_tids: dict[tuple[int, int], str] = {}
    job_tids: dict[str, int] = {}
    for record in tracer.records:
        pid, tid = _pid_tid(record, job_tids)
        if pid not in seen_pids:
            seen_pids[pid] = ("cluster" if pid == _CLUSTER_PID
                              else "jobs" if pid == _JOBS_PID
                              else f"PCB {pid - 1}")
        if (pid, tid) not in seen_tids:
            if pid == _JOBS_PID:
                name = str(record.job)
            elif pid == _CLUSTER_PID:
                name = "scheduler"
            elif tid == _NIC_TID:
                name = "NIC"
            else:
                name = f"SoC {tid - 1}"
            seen_tids[(pid, tid)] = name
        args = dict(record.args)
        for key in ("lg", "cg", "job"):
            value = getattr(record, key)
            if value is not None:
                args[key] = value
        event = {
            "name": record.name,
            "cat": record.kind,
            "ph": record.ph,
            "ts": round(record.ts_s * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if record.ph == "X":
            event["dur"] = round(record.dur_s * 1e6, 3)
        else:
            event["s"] = "g"        # instants are global-scope markers
        if args:
            event["args"] = args
        events.append(event)

    metadata: list[dict] = []
    for pid, name in sorted(seen_pids.items()):
        metadata.append({"ph": "M", "pid": pid, "name": "process_name",
                         "args": {"name": name}})
        metadata.append({"ph": "M", "pid": pid, "name": "process_sort_index",
                         "args": {"sort_index": pid}})
    for (pid, tid), name in sorted(seen_tids.items()):
        metadata.append({"ph": "M", "pid": pid, "tid": tid,
                         "name": "thread_name", "args": {"name": name}})
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path) -> None:
    with open_text(path, "w") as fh:
        json.dump(to_chrome_trace(tracer), fh, sort_keys=True)
        fh.write("\n")


def to_jsonl(tracer) -> str:
    """One JSON object per record, in emission order."""
    return "\n".join(json.dumps(record.to_dict(), sort_keys=True)
                     for record in tracer.records)


def write_jsonl(tracer, path) -> None:
    with open_text(path, "w") as fh:
        fh.write(to_jsonl(tracer))
        fh.write("\n")


def write_trace(tracer, path, fmt: str = "chrome") -> None:
    """Write ``tracer`` to ``path`` in ``fmt`` ('chrome' or 'jsonl').

    Paths ending in ``.gz`` are gzip-compressed transparently (large
    traced runs shrink by an order of magnitude); the analysis loader
    (:func:`load_trace_records`) reads either form back.
    """
    if fmt == "chrome":
        write_chrome_trace(tracer, path)
    elif fmt == "jsonl":
        write_jsonl(tracer, path)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")


def load_trace_records(path) -> "list":
    """Load the :class:`~repro.telemetry.tracer.TraceRecord` list back
    from a JSONL trace file (plain or ``.gz``).

    The loader is the inverse of :func:`write_jsonl` — records round-trip
    exactly, so re-exporting a loaded trace is byte-identical to the
    original file.  Chrome-format traces are rejected with a pointer at
    ``--trace-format jsonl``: the Chrome view flattens the typed record
    structure the analysis engine needs.
    """
    from .tracer import TraceRecord
    records = []
    with open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({err})") from None
            if lineno == 1 and "traceEvents" in payload:
                raise ValueError(
                    f"{path} is a Chrome-format trace; analysis needs the "
                    "typed JSONL log — re-run with --trace-format jsonl")
            records.append(TraceRecord.from_dict(payload))
    return records


# ----------------------------------------------------------------------
# Human-readable tables
# ----------------------------------------------------------------------
_EPOCH_COLUMNS = [("epoch", "epoch"), ("seconds", "seconds"),
                  ("compute_s", "compute"), ("sync_s", "sync"),
                  ("hidden_s", "hidden"),
                  ("update_s", "update"), ("recovery_s", "recovery"),
                  ("accuracy", "accuracy"), ("alpha", "alpha"),
                  ("retries", "retries")]


def render_epoch_table(epoch_rows) -> str:
    """The per-epoch report: phase breakdown + accuracy + alpha.

    ``epoch_rows`` come from :meth:`Telemetry.record_epoch`; columns
    whose value no row carries are dropped, so strategies that never
    report alpha or recovery get a compact table.
    """
    from ..harness.reporting import format_table
    if not epoch_rows:
        return "(no epochs recorded)"
    columns = [(key, header) for key, header in _EPOCH_COLUMNS
               if any(row.get(key) is not None for row in epoch_rows)]
    headers = [header for _, header in columns]
    rows = [[row.get(key, "") if row.get(key) is not None else ""
             for key, _ in columns] for row in epoch_rows]
    return format_table(headers, rows)


def render_metrics_table(metrics) -> str:
    """Metrics summary table (fallback renderer: ``format_table``)."""
    from ..harness.reporting import format_table
    rows = metrics.collect()
    if not rows:
        return "(no metrics recorded)"
    table = []
    for row in rows:
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        if row["type"] == "histogram" and row.get("count"):
            value = row["mean"]
            detail = (f"n={row['count']} p50={row['p50']:.4g} "
                      f"p90={row['p90']:.4g} max={row['max']:.4g}")
        else:
            value = row.get("value", "")
            detail = ""
        table.append([row["name"], labels, row["type"],
                      value if value is not None else "", detail])
    return format_table(["metric", "labels", "type", "value", "detail"],
                        table)
