"""Single-SoC training — the "Local" reference column of Table 3.

Also the motivation experiment of Figure 4a: one Snapdragon 865
training VGG-11 takes ~29 h on its CPU.
"""

from __future__ import annotations

from ..cluster.topology import ClusterTopology
from ..data.loader import ArrayDataset, DataLoader
from ..nn.optim import SGD
from .base import (CostModel, RunConfig, Strategy, StrategyResult,
                   evaluate_accuracy, flush_graph_stats, fp32_train_step,
                   make_model)

__all__ = ["LocalSingleSoC"]


class LocalSingleSoC(Strategy):
    """Plain SGD on one SoC's CPU (or NPU via :class:`~repro.core`)."""

    name = "local"

    def __init__(self, processor: str = "cpu"):
        if processor not in ("cpu", "npu"):
            raise ValueError("processor must be 'cpu' or 'npu'")
        self.processor = processor

    def train(self, config: RunConfig) -> StrategyResult:
        single = ClusterTopology(
            num_socs=1, socs_per_pcb=config.topology.socs_per_pcb,
            soc=config.topology.soc)
        local_config = RunConfig(**{**config.__dict__, "topology": single})
        cost = CostModel(local_config, telemetry=config.telemetry)
        model = make_model(config)
        optimizer = SGD(model.parameters(), lr=config.lr,
                        momentum=config.momentum,
                        weight_decay=config.weight_decay,
                        flat=model.flatten_parameters())
        if config.graph:
            model.enable_graph_executor()
        loader = DataLoader(
            ArrayDataset(config.task.x_train, config.task.y_train),
            config.batch_size, shuffle=True, seed=config.seed)

        compute_s = cost.compute_seconds(config.sim_global_batch,
                                         self.processor)
        cpu_fraction = 1.0 if self.processor == "cpu" else 0.0
        history: list[float] = []
        state: dict = {}
        extra: dict = {}
        for epoch in range(config.max_epochs):
            for x, y in loader:
                fp32_train_step(model, optimizer, x, y)
            for _ in range(cost.steps_per_epoch):
                cost.charge_step(compute_s, 0.0, 1, cpu_fraction)
            accuracy = evaluate_accuracy(model, config.task.x_test,
                                         config.task.y_test)
            self._epoch_accuracy_bookkeeping(accuracy, epoch, config,
                                             history, state)
        flush_graph_stats(model, cost, extra)
        return self._result(self.name, config, cost, history, state, extra)
