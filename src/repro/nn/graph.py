"""Trace-once/replay-many compiled graph executor for the training step.

The eager engine (:mod:`repro.nn.tensor`) rebuilds the autograd tape,
re-runs a Python DFS for the topological order, and reallocates every
intermediate and gradient array on *every* step — pure interpreter
overhead, since the SoCFlow training step is completely static.  This
module removes that overhead:

``GraphCapture``
    records one eager training step (forward, loss, backward, fused
    optimizer) into an op list.  Capture is observational: the recorded
    step runs the normal eager code path and is bit-identical to an
    uninstrumented step.

``compile_program``
    turns a capture into a ``_Program``: a flat tuple of closures over
    preallocated numpy arrays.  A tensor-lifetime planner packs all
    float32 intermediates and gradients into a single arena buffer
    (first-fit over [first-def, last-use] intervals), an elementwise
    chain fuser rewrites single-consumer elementwise ops to compute in
    place in their producer's buffer, and every kernel is an ``out=``
    ufunc/matmul/einsum call replicating the eager arithmetic
    operation-for-operation — replayed steps are bit-identical to eager
    steps.

``GraphExecutor``
    owns per-input-shape programs for one model and dispatches
    ``step()`` to ``replay`` (zero tape construction, zero allocation in
    the hot loop) or falls back to the eager interpreter on shape
    change, non-intact flat buffers (faults-induced re-grouping rebinds
    parameter storage), or unsupported ops.

Bit-identity ground rules used throughout: ``out=`` ufuncs run the same
inner loops as their allocating forms; ``np.copyto`` casts exactly like
``astype``; ``a[idx] = g`` on a zeroed buffer equals ``np.add.at`` for
duplicate-free basic indices; sums with ``out=`` use the same pairwise
reduction.  Anything that cannot be replicated exactly raises
:class:`GraphUnsupported` at compile time and the executor stays eager.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from . import functional as F
from . import tensor as tensor_mod
from .tensor import Tensor

__all__ = [
    "GraphCapture", "GraphExecutor", "GraphUnsupported",
    "Int8GraphExecutor", "attach_graph_executor",
    "attach_int8_graph_executor", "detach_graph_executor",
    "compile_program",
]


class GraphUnsupported(Exception):
    """The captured step cannot be compiled; the executor stays eager."""


#: ops the compiler knows how to replay bit-identically
_SUPPORTED = frozenset({
    "add", "neg", "mul", "div", "pow", "matmul", "sum", "reshape",
    "transpose", "getitem", "relu", "exp", "sqrt", "tanh", "sigmoid",
    "pad2d", "conv2d", "max_pool2d", "avg_pool2d", "batch_norm",
    "log_softmax", "cross_entropy", "dropout", "ste_quant", "ste_fp16",
})

#: elementwise ops whose output buffer may be the (dead) input buffer
_ELEMENTWISE = frozenset({
    "add", "neg", "mul", "div", "pow", "relu", "exp", "sqrt", "tanh",
    "sigmoid", "dropout", "ste_quant", "ste_fp16",
})


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

class _Src:
    """One op input: either a recorded node or a leaf tensor."""

    __slots__ = ("node", "t", "kind", "val")

    def __init__(self, node=None, t=None, kind="node"):
        self.node = node            # producing _Node, or None for leaves
        self.t = t                  # leaf Tensor (param / const / input)
        self.kind = kind            # "node" | "input" | "param" | "const"
        self.val = None             # compiler-assigned runtime value

    @property
    def requires_grad(self) -> bool:
        if self.node is not None:
            return self.node.rg
        return self.t.requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        if self.node is not None:
            return self.node.shape
        return self.t.data.shape


class _Node:
    """One recorded op application."""

    __slots__ = ("idx", "op", "ctx", "t", "srcs", "val", "aux")

    def __init__(self, idx, op, ctx, t, srcs):
        self.idx = idx
        self.op = op
        self.ctx = ctx or {}
        self.t = t                  # the eager output tensor (kept alive)
        self.srcs = srcs
        self.val = None             # compiler-assigned runtime value
        self.aux = {}               # op-specific saved buffers

    @property
    def rg(self) -> bool:
        return self.t.requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.t.data.shape


class GraphCapture:
    """Records every op of one eager training step via ``Tensor._make``.

    Parameters
    ----------
    x_tensor:
        The input tensor the executor fed to the model (the only leaf
        treated as a per-replay input slot).
    targets:
        The integer target array passed to ``cross_entropy`` (matched by
        identity at compile time; it becomes the second input slot).
    params:
        The model's parameter tensors (``FlatParamBuffer.param_tensors``).
    """

    def __init__(self, x_tensor: Tensor, targets: np.ndarray, params):
        self.x_tensor = x_tensor
        self.targets = targets
        self._param_ids = {id(p) for p in params}
        self.nodes: list[_Node] = []
        self.by_id: dict[int, _Node] = {}
        self._src_by_id: dict[int, _Src] = {}
        self.unsupported: str | None = None

    def record(self, op, out, parents, ctx) -> None:
        if op not in _SUPPORTED:
            self.unsupported = op or "<untagged>"
            return
        srcs = tuple(self._src(p) for p in parents)
        node = _Node(len(self.nodes), op, ctx, out, srcs)
        self.nodes.append(node)
        self.by_id[id(out)] = node

    def _src(self, t: Tensor) -> _Src:
        node = self.by_id.get(id(t))
        if node is not None:
            return _Src(node=node)
        src = self._src_by_id.get(id(t))
        if src is None:
            if t is self.x_tensor:
                kind = "input"
            elif id(t) in self._param_ids:
                kind = "param"
            else:
                kind = "const"
            src = _Src(t=t, kind=kind)
            self._src_by_id[id(t)] = src
        return src

    def leaves(self):
        return self._src_by_id.values()


# ---------------------------------------------------------------------------
# Runtime value model
# ---------------------------------------------------------------------------

class _Buf:
    """A float32 arena-managed buffer with a [start, end] instr lifetime."""

    __slots__ = ("shape", "dtype", "start", "end", "offset", "array", "contig")

    def __init__(self, shape, dtype, start):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.start = start
        self.end = start
        self.offset = -1
        self.array: np.ndarray | None = None
        self.contig = True

    @property
    def nbytes(self) -> int:
        n = self.dtype.itemsize
        for d in self.shape:
            n *= d
        return n


class _View:
    """A bind-time alias of another value (zero-copy at replay)."""

    __slots__ = ("base", "fn", "contig", "arr")

    def __init__(self, base, fn: Callable[[np.ndarray], np.ndarray],
                 contig: bool):
        self.base = base
        self.fn = fn
        self.contig = contig
        self.arr: np.ndarray | None = None


def _root_buf(val):
    while isinstance(val, _View):
        val = val.base
    return val if isinstance(val, _Buf) else None


def _is_contig(val) -> bool:
    if isinstance(val, (_Buf, _View)):
        return val.contig
    if isinstance(val, np.ndarray):
        return val.flags["C_CONTIGUOUS"]
    return False


def _val_shape(val):
    if isinstance(val, _Buf):
        return val.shape
    if isinstance(val, np.ndarray):
        return val.shape
    raise GraphUnsupported("shape of alias value requested")


# ---------------------------------------------------------------------------
# Kernels (closure factories; called at bind time with resolved arrays)
# ---------------------------------------------------------------------------

def _kuf1(uf, a, out):
    def run():
        uf(a, out=out)
    return run


def _kuf2(uf, a, b, out):
    def run():
        uf(a, b, out=out)
    return run


def _kcopy(dst, src):
    def run():
        np.copyto(dst, src)
    return run


def _kiadd(dst, src):
    def run():
        np.add(dst, src, out=dst)
    return run


def _ksum(a, axis, keepdims, out):
    def run():
        np.sum(a, axis=axis, keepdims=keepdims, out=out)
    return run


def _kamax(a, axis, out):
    def run():
        np.max(a, axis=axis, keepdims=True, out=out)
    return run


def _kmean(a, axis, out):
    def run():
        np.mean(a, axis=axis, out=out)
    return run


def _kvar(a, axis, out):
    def run():
        np.var(a, axis=axis, out=out)
    return run


def _kmatmul(a, b, out):
    def run():
        np.matmul(a, b, out=out)
    return run


def _keinsum(spec, a, b, out):
    def run():
        np.einsum(spec, a, b, out=out, optimize=True)
    return run


def _kim2col(a, kernel, stride, out):
    def run():
        F.im2col(a, kernel, stride, out=out)
    return run


def _kcol2im(cols, x_shape, kernel, stride, out):
    def run():
        F.col2im(cols, x_shape, kernel, stride, out=out)
    return run


def _kargmax(a, out):
    def run():
        np.argmax(a, axis=1, out=out)
    return run


def _ktake(cols, arg, out):
    def run():
        np.copyto(out, np.take_along_axis(cols, arg, axis=1))
    return run


def _kput(gcols, arg, g, out_unused=None):
    def run():
        gcols[...] = 0
        np.put_along_axis(gcols, arg, g, axis=1)
    return run


def _kfill(dst, a, index):
    def run():
        dst[index] = a
    return run


def _kfancy_get(out, a, index):
    def run():
        out[...] = a[index]
    return run


def _kscatter_add(full, index, g):
    def run():
        full[...] = 0
        np.add.at(full, index, g)
    return run


def _kste_quant(observer, qmax, a, out, absbuf, tmp64):
    """STE fake-quantise ``a`` into ``out`` with a live observer scale.

    Replays ``observer.observe(a)`` followed by
    ``dequantize(quantize(a, observer.scale, qmax), scale)`` without
    allocating: the peak reduction runs in ``absbuf``, the EMA update
    goes through ``EmaObserver.update`` (same arithmetic as
    ``observe``), and the dequantisation multiply runs in the float64
    scratch ``tmp64`` — the eager path multiplies int32 by a float64
    scale, and a float32 product would double-round.  The int32 round
    trip itself is skippable: post-clip values are integral and within
    ±qmax, which float32 holds exactly.  ``out`` may alias ``a``; the
    observation happens before the first in-place write.
    """
    def run():
        observer.update(float(np.abs(a, out=absbuf).max()))
        scale = observer.scale
        np.divide(a, scale, out=out)
        np.rint(out, out=out)
        np.clip(out, -qmax, qmax, out=out)
        np.copyto(tmp64, out)
        np.multiply(tmp64, scale, out=tmp64)
        np.copyto(out, tmp64)
    return run


def _kste_fp16(a, out, tmp16):
    def run():
        np.copyto(tmp16, a)     # copyto casts exactly like astype
        np.copyto(out, tmp16)
    return run


def _krng(rng, r):
    def run():
        rng.random(out=r)
    return run


def _krunning(stat, delta_tmp, batch_stat, momentum):
    one_minus = 1.0 - momentum

    def run():
        np.multiply(stat, one_minus, out=stat)
        np.multiply(batch_stat, momentum, out=delta_tmp)
        np.add(stat, delta_tmp, out=stat)
    return run


def _kce_loss(lp, rows, y, inv_n, loss):
    def run():
        picked = lp[rows, y]
        loss[...] = -(picked.sum() * inv_n)
    return run


def _kce_grad(lgrad, inv_n, gl, rows, y, soft, tmp):
    def run():
        upstream = (-lgrad) * inv_n
        gl[...] = 0
        gl[rows, y] = upstream
        np.multiply(soft, upstream, out=tmp)
        np.subtract(gl, tmp, out=gl)
    return run


# ---------------------------------------------------------------------------
# Arena packing
# ---------------------------------------------------------------------------

_ALIGN = 64


def _pack_arena(bufs: list[_Buf]) -> int:
    """First-fit interval packing; sets ``buf.offset``, returns total bytes."""
    free: list[tuple[int, int]] = []        # (offset, size), offset-sorted
    active: list[tuple[int, int, int]] = []  # heap of (end, offset, size)
    high_water = 0

    def release(off, size):
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (off, size))
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            off2, size2 = free.pop(lo + 1)
            free[lo] = (free[lo][0], free[lo][1] + size2)
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            off2, size2 = free.pop(lo)
            free[lo - 1] = (free[lo - 1][0], free[lo - 1][1] + size2)

    for buf in sorted(bufs, key=lambda b: (b.start, b.end)):
        while active and active[0][0] < buf.start:
            _, off, size = heapq.heappop(active)
            release(off, size)
        need = -(-buf.nbytes // _ALIGN) * _ALIGN
        offset = None
        for i, (off, size) in enumerate(free):
            if size >= need:
                offset = off
                if size == need:
                    free.pop(i)
                else:
                    free[i] = (off + need, size - need)
                break
        if offset is None:
            offset = high_water
        buf.offset = offset
        high_water = max(high_water, offset + need)
        heapq.heappush(active, (buf.end, offset, need))
    return high_water


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------

class _Compiler:
    def __init__(self, capture: GraphCapture, loss_node: _Node, fuse: bool):
        self.capture = capture
        self.loss_node = loss_node
        self.fuse = fuse
        self._instrs: list[tuple] = []      # (maker, args...)
        self._bufs: list[_Buf] = []
        self._ded_bytes = 0
        self._gslot: dict[int, object] = {}   # id(node|src) -> value
        self._gcount: dict[int, int] = {}
        self._param_grads: list[tuple[Tensor, np.ndarray]] = []
        self._seen_params: set[int] = set()
        self._scratch_cache: dict[tuple, np.ndarray] = {}
        self.fused_elementwise = 0

        x = capture.x_tensor.data
        self.x_buf = np.empty(x.shape, dtype=np.float32)
        y = np.asarray(capture.targets)
        self.y_buf = np.empty(y.shape, dtype=y.dtype)
        self._ded_bytes += self.x_buf.nbytes + self.y_buf.nbytes
        self.loss_buf: np.ndarray | None = None

        for src in capture.leaves():
            if src.kind == "input":
                src.val = self.x_buf
            else:
                src.val = src.t.data
        self._consumers = self._count_consumers()
        self._saved = self._saved_values()

    # -- analysis ------------------------------------------------------
    def _count_consumers(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for node in self.capture.nodes:
            for src in node.srcs:
                if src.node is not None:
                    counts[id(src.node)] = counts.get(id(src.node), 0) + 1
        return counts

    def _saved_values(self) -> set[int]:
        """ids of nodes whose *forward value* some backward kernel reads."""
        saved: set[int] = {id(self.loss_node)}

        def mark(src):
            if src.node is not None:
                saved.add(id(src.node))

        for node in self.capture.nodes:
            if not node.rg:
                continue
            op, s = node.op, node.srcs
            if op in ("mul", "matmul"):
                if s[0].requires_grad:
                    mark(s[1])
                if s[1].requires_grad:
                    mark(s[0])
            elif op == "div":
                if s[0].requires_grad:
                    mark(s[1])
                if s[1].requires_grad:
                    mark(s[0])
                    mark(s[1])
            elif op == "pow":
                mark(s[0])
            elif op in ("exp", "sqrt", "tanh", "sigmoid"):
                saved.add(id(node))
        return saved

    # -- emission helpers ----------------------------------------------
    def _touch(self, val) -> None:
        root = _root_buf(val)
        if root is not None:
            root.end = len(self._instrs)

    def _emit(self, maker, *args) -> None:
        for a in args:
            self._touch(a)
        self._instrs.append((maker,) + args)

    def _buf(self, shape, dtype=np.float32) -> _Buf:
        buf = _Buf(shape, dtype, len(self._instrs))
        self._bufs.append(buf)
        return buf

    def _ded(self, shape, dtype=np.float32, zero=False) -> np.ndarray:
        arr = (np.zeros if zero else np.empty)(shape, dtype=dtype)
        self._ded_bytes += arr.nbytes
        return arr

    def _scratch(self, shape, dtype) -> np.ndarray:
        """A dedicated scratch buffer shared by every kernel needing
        this (shape, dtype) — safe because replay is sequential and no
        kernel's scratch outlives its own closure."""
        key = (tuple(shape), np.dtype(dtype).str)
        arr = self._scratch_cache.get(key)
        if arr is None:
            arr = self._ded(shape, dtype)
            self._scratch_cache[key] = arr
        return arr

    def _value(self, src: _Src):
        if src.node is not None:
            return src.node.val
        return src.val

    # -- gradient accumulation -----------------------------------------
    def _slot(self, tgt):
        """(storage, first_write) for the grad of ``tgt`` or None to skip.

        ``tgt`` is a _Node or a leaf _Src; replicates the eager
        ``_accumulate`` copy-then-add discipline per target.
        """
        if isinstance(tgt, _Src):
            if tgt.node is not None:
                tgt = tgt.node
            else:
                if not tgt.t.requires_grad:
                    return None
                if tgt.kind != "param":
                    raise GraphUnsupported(
                        "gradient for a non-parameter leaf tensor")
                gbuf = tgt.t._grad_buf
                if gbuf is None or gbuf.shape != tgt.t.data.shape:
                    raise GraphUnsupported("parameter lacks a fused grad view")
                key = id(tgt)
                count = self._gcount.get(key, 0)
                self._gcount[key] = count + 1
                if count == 0:
                    if id(tgt.t) not in self._seen_params:
                        self._seen_params.add(id(tgt.t))
                        self._param_grads.append((tgt.t, gbuf))
                    self._gslot[key] = gbuf
                return gbuf, count == 0
        if not tgt.rg:
            return None
        key = id(tgt)
        count = self._gcount.get(key, 0)
        self._gcount[key] = count + 1
        if count == 0:
            slot = self._buf(tgt.shape)
            self._gslot[key] = slot
        return self._gslot[key], count == 0

    def _grad_of(self, node: _Node):
        slot = self._gslot.get(id(node))
        if slot is None:
            raise GraphUnsupported(f"node {node.op} reached with no gradient")
        return slot

    def _acc(self, tgt, val) -> None:
        """Accumulate an already-computed contribution (copy or +=)."""
        s = self._slot(tgt)
        if s is None:
            return
        slot, first = s
        self._emit(_kcopy if first else _kiadd, slot, val)

    def _acc_uf(self, tgt, uf, args, shape) -> None:
        """Accumulate ``uf(*args)`` (result ``shape``), fusing the first
        write directly into the slot when shapes line up."""
        s = self._slot(tgt)
        if s is None:
            return
        slot, first = s
        slot_shape = slot.shape if isinstance(slot, _Buf) else slot.shape
        maker = _kuf1 if len(args) == 1 else _kuf2
        if first and tuple(slot_shape) == tuple(shape):
            self._emit(maker, uf, *args, slot)
        else:
            tmp = self._buf(shape)
            self._emit(maker, uf, *args, tmp)
            self._emit(_kiadd, slot, tmp)

    def _unbroadcast(self, val, vshape, tshape):
        """Compile ``tensor._unbroadcast`` into sum/reshape instructions."""
        vshape, tshape = tuple(vshape), tuple(tshape)
        if vshape == tshape:
            return val
        if len(vshape) < len(tshape):
            raise GraphUnsupported("gradient ndim below target ndim")
        extra = len(vshape) - len(tshape)
        if extra:
            out = self._buf(vshape[extra:])
            self._emit(_ksum, val, tuple(range(extra)), False, out)
            val, vshape = out, vshape[extra:]
        axes = tuple(i for i, n in enumerate(tshape)
                     if n == 1 and vshape[i] != 1)
        if axes:
            kshape = tuple(1 if i in axes else n for i, n in enumerate(vshape))
            out = self._buf(kshape)
            self._emit(_ksum, val, axes, True, out)
            val, vshape = out, kshape
        if vshape != tshape:
            val = _View(val, lambda b: b.reshape(tshape), _is_contig(val))
        return val

    # -- forward emission ----------------------------------------------
    def _forward(self) -> None:
        for node in self.capture.nodes:
            getattr(self, "_fwd_" + node.op)(node)

    def _ew_out(self, node: _Node) -> _Buf:
        """Output buffer for an elementwise node.

        The elementwise-chain fuser: when an input is a single-consumer
        arena buffer of the same shape whose value no backward kernel
        needs, compute in place into it (ufuncs with ``out=`` aliasing a
        same-shape operand are exact), collapsing the chain's
        intermediates into one buffer.
        """
        if self.fuse:
            for src in node.srcs:
                cand = src.node
                if (cand is not None
                        and id(cand) not in self._saved
                        and self._consumers.get(id(cand), 0) == 1
                        and isinstance(cand.val, _Buf)
                        and cand.val.shape == node.shape
                        and cand.val.dtype == np.float32):
                    self.fused_elementwise += 1
                    return cand.val
        return self._buf(node.shape)

    def _reshaped(self, val, old_shape, new_shape):
        """A reshape of ``val``: a bind-time view when contiguous, else a
        materialised per-replay copy (exactly where eager numpy copies)."""
        if _is_contig(val):
            return _View(val, lambda b, s=tuple(new_shape): b.reshape(s), True)
        out = self._buf(new_shape)
        back = _View(out, lambda b, s=tuple(old_shape): b.reshape(s), True)
        self._emit(_kcopy, back, val)
        return out

    def _leaf_array(self, src: _Src) -> np.ndarray:
        v = self._value(src)
        if not isinstance(v, np.ndarray) or not v.flags["C_CONTIGUOUS"]:
            raise GraphUnsupported(f"{src.kind} operand is not a contiguous "
                                   "leaf array")
        return v

    def _fwd_add(self, node):
        a, b = (self._value(s) for s in node.srcs)
        out = self._ew_out(node)
        self._emit(_kuf2, np.add, a, b, out)
        node.val = out

    def _fwd_neg(self, node):
        out = self._ew_out(node)
        self._emit(_kuf1, np.negative, self._value(node.srcs[0]), out)
        node.val = out

    def _fwd_mul(self, node):
        a, b = (self._value(s) for s in node.srcs)
        out = self._ew_out(node)
        self._emit(_kuf2, np.multiply, a, b, out)
        node.val = out

    def _fwd_div(self, node):
        a, b = (self._value(s) for s in node.srcs)
        out = self._ew_out(node)
        self._emit(_kuf2, np.divide, a, b, out)
        node.val = out

    def _fwd_pow(self, node):
        out = self._ew_out(node)
        self._emit(_kuf2, np.power, self._value(node.srcs[0]),
                   node.ctx["exponent"], out)
        node.val = out

    def _fwd_matmul(self, node):
        a, b = (self._value(s) for s in node.srcs)
        out = self._buf(node.shape)
        self._emit(_kmatmul, a, b, out)
        node.val = out

    def _fwd_sum(self, node):
        out = self._buf(node.shape)
        self._emit(_ksum, self._value(node.srcs[0]), node.ctx["axis"],
                   node.ctx["keepdims"], out)
        node.val = out

    def _fwd_reshape(self, node):
        src = node.srcs[0]
        node.val = self._reshaped(self._value(src), src.shape, node.shape)

    def _fwd_transpose(self, node):
        axes = tuple(node.ctx["axes"])
        node.val = _View(self._value(node.srcs[0]),
                         lambda b, ax=axes: b.transpose(ax), False)

    def _fwd_getitem(self, node):
        index = node.ctx["index"]
        a = self._value(node.srcs[0])
        if _basic_index(index):
            node.val = _View(a, lambda b, i=index: b[i], False)
        else:
            out = self._buf(node.shape)
            self._emit(_kfancy_get, out, a, index)
            node.val = out

    def _fwd_relu(self, node):
        a = self._value(node.srcs[0])
        mask = self._ded(node.shape, np.bool_)
        out = self._ew_out(node)
        self._emit(_kuf2, np.greater, a, 0, mask)
        self._emit(_kuf2, np.multiply, a, mask, out)
        node.aux["mask"] = mask
        node.val = out

    def _fwd_exp(self, node):
        out = self._ew_out(node)
        self._emit(_kuf1, np.exp, self._value(node.srcs[0]), out)
        node.val = out

    def _fwd_sqrt(self, node):
        out = self._ew_out(node)
        self._emit(_kuf1, np.sqrt, self._value(node.srcs[0]), out)
        node.val = out

    def _fwd_tanh(self, node):
        out = self._ew_out(node)
        self._emit(_kuf1, np.tanh, self._value(node.srcs[0]), out)
        node.val = out

    def _fwd_sigmoid(self, node):
        a = self._value(node.srcs[0])
        out = self._ew_out(node)
        self._emit(_kuf1, np.negative, a, out)
        self._emit(_kuf1, np.exp, out, out)
        self._emit(_kuf2, np.add, out, 1.0, out)
        self._emit(_kuf2, np.divide, 1.0, out, out)
        node.val = out

    def _fwd_ste_quant(self, node):
        observer = node.ctx.get("observer")
        if observer is None:
            # A bare ste_quantize call has no observer to re-derive the
            # scale from at replay time; the step stays eager.
            raise GraphUnsupported("ste_quant without an observer scale")
        a = self._value(node.srcs[0])
        out = self._ew_out(node)
        self._emit(_kste_quant, observer, node.ctx["qmax"], a, out,
                   self._scratch(node.shape, np.float32),
                   self._scratch(node.shape, np.float64))
        node.val = out

    def _fwd_ste_fp16(self, node):
        a = self._value(node.srcs[0])
        out = self._ew_out(node)
        self._emit(_kste_fp16, a, out,
                   self._scratch(node.shape, np.float16))
        node.val = out

    def _fwd_pad2d(self, node):
        p = node.ctx["padding"]
        out = self._ded(node.shape, np.float32, zero=True)
        inner = out[..., p:-p, p:-p]
        self._emit(_kcopy, inner, self._value(node.srcs[0]))
        node.val = out

    def _fwd_dropout(self, node):
        p = node.ctx["p"]
        rng = node.ctx["rng"]
        a = self._value(node.srcs[0])
        r = self._ded(node.shape, np.float64)
        mbool = self._ded(node.shape, np.bool_)
        mask = self._buf(node.shape)
        self._emit(_krng, rng, r)
        self._emit(_kuf2, np.greater_equal, r, p, mbool)
        self._emit(_kcopy, mask, mbool)
        self._emit(_kuf2, np.divide, mask, 1.0 - p, mask)
        out = self._ew_out(node)
        self._emit(_kuf2, np.multiply, a, mask, out)
        node.aux["mask"] = mask
        node.val = out

    def _fwd_conv2d(self, node):
        x_src, w_src = node.srcs
        xv = self._value(x_src)
        wv = self._leaf_array(w_src)
        kernel = node.ctx["kernel"]
        stride = node.ctx["stride"]
        groups = node.ctx["groups"]
        n, c, h, w = x_src.shape
        out_c = node.shape[1]
        length = node.shape[2] * node.shape[3]
        cols = self._buf((n, c * kernel * kernel, length))
        self._emit(_kim2col, xv, kernel, stride, cols)
        aux = node.aux
        aux.update(n=n, c=c, out_c=out_c, length=length, kernel=kernel,
                   stride=stride, groups=groups, cols=cols,
                   x_shape=tuple(x_src.shape))
        if groups == 1:
            w_mat = wv.reshape(out_c, -1)
            out3 = self._buf((n, out_c, length))
            self._emit(_kmatmul, w_mat[None, :, :], cols, out3)
            aux["w_mat"] = w_mat
            node.val = _View(out3,
                             lambda b, s=node.shape: b.reshape(s), True)
        else:
            gi = c // groups
            go = out_c // groups
            cols4 = _View(cols,
                          lambda b, s=(n, groups, gi * kernel * kernel,
                                       length): b.reshape(s), True)
            w3 = wv.reshape(groups, go, -1)
            out4 = self._buf((n, groups, go, length))
            self._emit(_keinsum, "gok,ngkl->ngol", w3, cols4, out4)
            aux.update(gi=gi, go=go, cols4=cols4, w3=w3)
            node.val = _View(out4,
                             lambda b, s=node.shape: b.reshape(s), True)

    def _fwd_max_pool2d(self, node):
        kernel = node.ctx["kernel"]
        stride = node.ctx["stride"]
        x_src = node.srcs[0]
        n, c, h, w = x_src.shape
        length = node.shape[2] * node.shape[3]
        xr = self._reshaped(self._value(x_src), x_src.shape, (n * c, 1, h, w))
        cols = self._buf((n * c, kernel * kernel, length))
        self._emit(_kim2col, xr, kernel, stride, cols)
        arg = self._ded((n * c, length), np.intp)
        self._emit(_kargmax, cols, arg)
        argv = arg[:, None, :]
        out = self._buf(node.shape)
        outv = _View(out, lambda b, s=(n * c, 1, length): b.reshape(s), True)
        self._emit(_ktake, cols, argv, outv)
        node.aux.update(kernel=kernel, stride=stride, n=n, c=c, h=h, w=w,
                        length=length, argv=argv)
        node.val = out

    def _fwd_avg_pool2d(self, node):
        kernel = node.ctx["kernel"]
        stride = node.ctx["stride"]
        x_src = node.srcs[0]
        n, c, h, w = x_src.shape
        length = node.shape[2] * node.shape[3]
        xr = self._reshaped(self._value(x_src), x_src.shape, (n * c, 1, h, w))
        cols = self._buf((n * c, kernel * kernel, length))
        self._emit(_kim2col, xr, kernel, stride, cols)
        out = self._buf(node.shape)
        outv = _View(out, lambda b, s=(n * c, length): b.reshape(s), True)
        self._emit(_kmean, cols, 1, outv)
        node.aux.update(kernel=kernel, stride=stride, n=n, c=c, h=h, w=w,
                        length=length)
        node.val = out

    def _fwd_batch_norm(self, node):
        if not node.ctx["training"]:
            raise GraphUnsupported("batch_norm captured in eval mode")
        x_src, w_src, b_src = node.srcs
        xv = self._value(x_src)
        wv = self._leaf_array(w_src)
        bv = self._leaf_array(b_src)
        ndim = len(x_src.shape)
        axes = (0,) if ndim == 2 else (0, 2, 3)
        ch = x_src.shape[1]
        rshape = (1, ch) if ndim == 2 else (1, ch, 1, 1)
        rm = node.ctx["running_mean"]
        rv = node.ctx["running_var"]
        momentum = node.ctx["momentum"]
        eps = node.ctx["eps"]

        meanb = self._buf((ch,))
        self._emit(_kmean, xv, axes, meanb)
        varb = self._buf((ch,))
        self._emit(_kvar, xv, axes, varb)
        tmpc = self._buf((ch,))
        self._emit(_krunning, rm, tmpc, meanb, momentum)
        self._emit(_krunning, rv, tmpc, varb, momentum)
        invstd = self._buf((ch,))
        self._emit(_kuf2, np.add, varb, eps, invstd)
        self._emit(_kuf1, np.sqrt, invstd, invstd)
        self._emit(_kuf2, np.divide, 1.0, invstd, invstd)
        mean_r = _View(meanb, lambda b, s=rshape: b.reshape(s), True)
        invstd_r = _View(invstd, lambda b, s=rshape: b.reshape(s), True)
        xhat = self._buf(node.shape)
        self._emit(_kuf2, np.subtract, xv, mean_r, xhat)
        self._emit(_kuf2, np.multiply, xhat, invstd_r, xhat)
        w_r = wv.reshape(rshape)
        b_r = bv.reshape(rshape)
        out = self._buf(node.shape)
        self._emit(_kuf2, np.multiply, xhat, w_r, out)
        self._emit(_kuf2, np.add, out, b_r, out)
        count = int(np.prod(x_src.shape)) // x_src.shape[1 if ndim > 1 else 0]
        node.aux.update(xhat=xhat, invstd_r=invstd_r, w_r=w_r, axes=axes,
                        count=count,
                        kshape=tuple(1 if i in axes else d
                                     for i, d in enumerate(node.shape)))
        node.val = out

    def _fwd_log_softmax(self, node):
        axis = node.ctx["axis"]
        xv = self._value(node.srcs[0])
        kshape = list(node.shape)
        kshape[axis] = 1
        kshape = tuple(kshape)
        mx = self._buf(kshape)
        self._emit(_kamax, xv, axis, mx)
        sh = self._buf(node.shape)
        self._emit(_kuf2, np.subtract, xv, mx, sh)
        soft = self._buf(node.shape)
        self._emit(_kuf1, np.exp, sh, soft)
        sb = self._buf(kshape)
        self._emit(_ksum, soft, axis, True, sb)
        self._emit(_kuf1, np.log, sb, sb)
        out = self._buf(node.shape)
        self._emit(_kuf2, np.subtract, sh, sb, out)
        self._emit(_kuf1, np.exp, out, soft)
        node.aux.update(soft=soft, axis=axis, kshape=kshape)
        node.val = out

    def _fwd_cross_entropy(self, node):
        if node.ctx["targets"] is not self.capture.targets:
            raise GraphUnsupported("cross_entropy targets are not the step's "
                                   "target batch")
        logits_src = node.srcs[0]
        if len(logits_src.shape) != 2:
            raise GraphUnsupported("cross_entropy needs 2-d logits")
        lv = self._value(logits_src)
        n, num_classes = logits_src.shape
        rows = np.arange(n)
        mx = self._buf((n, 1))
        self._emit(_kamax, lv, -1, mx)
        sh = self._buf((n, num_classes))
        self._emit(_kuf2, np.subtract, lv, mx, sh)
        soft = self._buf((n, num_classes))
        self._emit(_kuf1, np.exp, sh, soft)
        sb = self._buf((n, 1))
        self._emit(_ksum, soft, -1, True, sb)
        self._emit(_kuf1, np.log, sb, sb)
        lp = self._buf((n, num_classes))
        self._emit(_kuf2, np.subtract, sh, sb, lp)
        self._emit(_kuf1, np.exp, lp, soft)
        loss = self._ded((), np.float32)
        inv_n = np.float32(1.0 / float(n))
        self._emit(_kce_loss, lp, rows, self.y_buf, inv_n, loss)
        node.aux.update(soft=soft, rows=rows, inv_n=inv_n, n=n,
                        num_classes=num_classes)
        node.val = loss

    # -- backward emission ---------------------------------------------
    def _backward_order(self):
        order = []
        visited: set[int] = set()
        stack: list[tuple[object, bool]] = [(self.loss_node, False)]
        while stack:
            unit, processed = stack.pop()
            if processed:
                order.append(unit)
                continue
            if id(unit) in visited:
                continue
            visited.add(id(unit))
            stack.append((unit, True))
            if isinstance(unit, _Node) and unit.rg:
                for src in unit.srcs:
                    child = src.node if src.node is not None else src
                    if id(child) not in visited:
                        stack.append((child, False))
        return order

    def _backward(self) -> None:
        ones = np.ones((), dtype=np.float32)
        self._ded_bytes += ones.nbytes
        self._gslot[id(self.loss_node)] = ones
        self._gcount[id(self.loss_node)] = 1
        for unit in reversed(self._backward_order()):
            if not isinstance(unit, _Node) or not unit.rg:
                continue
            getattr(self, "_bwd_" + unit.op)(unit, self._grad_of(unit))

    def _acc_sum(self, tgt, val, axes, keepdims, shape) -> None:
        s = self._slot(tgt)
        if s is None:
            return
        slot, first = s
        if first and tuple(slot.shape) == tuple(shape):
            self._emit(_ksum, val, axes, keepdims, slot)
        else:
            tmp = self._buf(shape)
            self._emit(_ksum, val, axes, keepdims, tmp)
            self._emit(_kiadd, slot, tmp)

    def _acc_mm(self, tgt, a, b, shape) -> None:
        s = self._slot(tgt)
        if s is None:
            return
        slot, first = s
        if first and tuple(slot.shape) == tuple(shape):
            self._emit(_kmatmul, a, b, slot)
        else:
            tmp = self._buf(shape)
            self._emit(_kmatmul, a, b, tmp)
            self._emit(_kiadd, slot, tmp)

    def _bwd_add(self, node, g):
        for src in node.srcs:
            if src.requires_grad:
                self._acc(src, self._unbroadcast(g, node.shape, src.shape))

    def _bwd_neg(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            self._acc_uf(src, np.negative, (g,), node.shape)

    def _contrib_mul(self, tgt, g, other, gshape) -> None:
        if tuple(tgt.shape) == tuple(gshape):
            self._acc_uf(tgt, np.multiply, (g, other), gshape)
        else:
            tmp = self._buf(gshape)
            self._emit(_kuf2, np.multiply, g, other, tmp)
            self._acc(tgt, self._unbroadcast(tmp, gshape, tgt.shape))

    def _bwd_mul(self, node, g):
        s0, s1 = node.srcs
        if s0.requires_grad:
            self._contrib_mul(s0, g, self._value(s1), node.shape)
        if s1.requires_grad:
            self._contrib_mul(s1, g, self._value(s0), node.shape)

    def _bwd_div(self, node, g):
        s0, s1 = node.srcs
        if s0.requires_grad:
            v1 = self._value(s1)
            if tuple(s0.shape) == tuple(node.shape):
                self._acc_uf(s0, np.divide, (g, v1), node.shape)
            else:
                tmp = self._buf(node.shape)
                self._emit(_kuf2, np.divide, g, v1, tmp)
                self._acc(s0, self._unbroadcast(tmp, node.shape, s0.shape))
        if s1.requires_grad:
            t = self._buf(node.shape)
            self._emit(_kuf1, np.negative, g, t)
            self._emit(_kuf2, np.multiply, t, self._value(s0), t)
            t2 = self._buf(s1.shape)
            self._emit(_kuf2, np.power, self._value(s1), 2, t2)
            self._emit(_kuf2, np.divide, t, t2, t)
            self._acc(s1, self._unbroadcast(t, node.shape, s1.shape))

    def _bwd_pow(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        e = node.ctx["exponent"]
        t = self._buf(node.shape)
        self._emit(_kuf2, np.multiply, g, e, t)
        t2 = self._buf(node.shape)
        self._emit(_kuf2, np.power, self._value(src), e - 1, t2)
        self._emit(_kuf2, np.multiply, t, t2, t)
        self._acc(src, t)

    def _bwd_matmul(self, node, g):
        s0, s1 = node.srcs
        if len(s0.shape) < 2 or len(s1.shape) < 2:
            raise GraphUnsupported("matmul backward needs >=2-d operands")
        if s0.requires_grad:
            sw = _View(self._value(s1),
                       lambda b: np.swapaxes(b, -1, -2), False)
            pshape = _matmul_shape(tuple(node.shape), _swap_shape(s1.shape))
            if pshape == tuple(s0.shape):
                self._acc_mm(s0, g, sw, pshape)
            else:
                tmp = self._buf(pshape)
                self._emit(_kmatmul, g, sw, tmp)
                self._acc(s0, self._unbroadcast(tmp, pshape, s0.shape))
        if s1.requires_grad:
            sw = _View(self._value(s0),
                       lambda b: np.swapaxes(b, -1, -2), False)
            pshape = _matmul_shape(_swap_shape(s0.shape), tuple(node.shape))
            if pshape == tuple(s1.shape):
                self._acc_mm(s1, sw, g, pshape)
            else:
                tmp = self._buf(pshape)
                self._emit(_kmatmul, sw, g, tmp)
                self._acc(s1, self._unbroadcast(tmp, pshape, s1.shape))

    def _bwd_sum(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        axis = node.ctx["axis"]
        keepdims = node.ctx["keepdims"]
        gv = g
        if axis is not None and not keepdims:
            gv = _View(g, lambda b, ax=axis: np.expand_dims(b, ax),
                       _is_contig(g))
        self._acc(src, gv)

    def _bwd_reshape(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            gv = _View(g, lambda b, s=tuple(src.shape): b.reshape(s), True)
            self._acc(src, gv)

    def _bwd_transpose(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            inverse = node.ctx["inverse"]
            gv = _View(g, lambda b, ax=inverse: b.transpose(ax), False)
            self._acc(src, gv)

    def _bwd_getitem(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        index = node.ctx["index"]
        full = self._ded(src.shape, np.float32, zero=True)
        if _basic_index(index):
            # static single-write region: assignment into the once-zeroed
            # buffer equals np.add.at on fresh zeros
            self._emit(_kfill, full, g, index)
        else:
            self._emit(_kscatter_add, full, index, g)
        self._acc(src, full)

    def _bwd_relu(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            self._acc_uf(src, np.multiply, (g, node.aux["mask"]), node.shape)

    def _bwd_exp(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            self._acc_uf(src, np.multiply, (g, node.val), node.shape)

    def _bwd_sqrt(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        t = self._buf(node.shape)
        self._emit(_kuf2, np.multiply, g, 0.5, t)
        self._emit(_kuf2, np.divide, t, node.val, t)
        self._acc(src, t)

    def _bwd_tanh(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        t = self._buf(node.shape)
        self._emit(_kuf2, np.power, node.val, 2, t)
        self._emit(_kuf2, np.subtract, 1.0, t, t)
        self._emit(_kuf2, np.multiply, g, t, t)
        self._acc(src, t)

    def _bwd_sigmoid(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        t1 = self._buf(node.shape)
        self._emit(_kuf2, np.multiply, g, node.val, t1)
        t2 = self._buf(node.shape)
        self._emit(_kuf2, np.subtract, 1.0, node.val, t2)
        self._emit(_kuf2, np.multiply, t1, t2, t1)
        self._acc(src, t1)

    def _bwd_ste_quant(self, node, g):
        # Straight-through estimator: the gradient passes unchanged.
        src = node.srcs[0]
        if src.requires_grad:
            self._acc(src, g)

    def _bwd_ste_fp16(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            self._acc(src, g)

    def _bwd_pad2d(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            p = node.ctx["padding"]
            gv = _View(g, lambda b, q=p: b[..., q:-q, q:-q], False)
            self._acc(src, gv)

    def _bwd_dropout(self, node, g):
        src = node.srcs[0]
        if src.requires_grad:
            self._acc_uf(src, np.multiply, (g, node.aux["mask"]), node.shape)

    def _bwd_conv2d(self, node, g):
        x_src, w_src = node.srcs
        aux = node.aux
        n = aux["n"]
        length = aux["length"]
        cols = aux["cols"]
        if aux["groups"] == 1:
            gmat = _View(g, lambda b, s=(n, aux["out_c"], length):
                         b.reshape(s), True)
            if w_src.requires_grad:
                s = self._slot(w_src)
                if s is not None:
                    slot, first = s
                    w2 = slot.reshape(aux["out_c"], -1)
                    if first:
                        self._emit(_keinsum, "nol,nkl->ok", gmat, cols, w2)
                    else:
                        tmp = self._buf(w2.shape)
                        self._emit(_keinsum, "nol,nkl->ok", gmat, cols, tmp)
                        self._emit(_kiadd, w2, tmp)
            if x_src.requires_grad:
                gcols = self._buf(cols.shape)
                w_t3 = aux["w_mat"].T[None, :, :]
                self._emit(_kmatmul, w_t3, gmat, gcols)
                gx = self._buf(x_src.shape)
                self._emit(_kcol2im, gcols, aux["x_shape"], aux["kernel"],
                           aux["stride"], gx)
                self._acc(x_src, gx)
        else:
            groups = aux["groups"]
            go = aux["go"]
            gik2 = aux["gi"] * aux["kernel"] * aux["kernel"]
            gmat4 = _View(g, lambda b, s=(n, groups, go, length):
                          b.reshape(s), True)
            cols4 = aux["cols4"]
            if w_src.requires_grad:
                s = self._slot(w_src)
                if s is not None:
                    slot, first = s
                    w3view = slot.reshape(groups, go, -1)
                    if first:
                        self._emit(_keinsum, "ngol,ngkl->gok", gmat4, cols4,
                                   w3view)
                    else:
                        tmp = self._buf(w3view.shape)
                        self._emit(_keinsum, "ngol,ngkl->gok", gmat4, cols4,
                                   tmp)
                        self._emit(_kiadd, w3view, tmp)
            if x_src.requires_grad:
                gcols4 = self._buf((n, groups, gik2, length))
                self._emit(_keinsum, "gok,ngol->ngkl", aux["w3"], gmat4,
                           gcols4)
                gflat = _View(gcols4, lambda b, s=(n, cols.shape[1], length):
                              b.reshape(s), True)
                gx = self._buf(x_src.shape)
                self._emit(_kcol2im, gflat, aux["x_shape"], aux["kernel"],
                           aux["stride"], gx)
                self._acc(x_src, gx)

    def _bwd_max_pool2d(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        aux = node.aux
        n, c, h, w = aux["n"], aux["c"], aux["h"], aux["w"]
        k = aux["kernel"]
        length = aux["length"]
        gcols = self._buf((n * c, k * k, length))
        gv = _View(g, lambda b, s=(n * c, 1, length): b.reshape(s), True)
        self._emit(_kput, gcols, aux["argv"], gv)
        gx = self._buf((n * c, 1, h, w))
        self._emit(_kcol2im, gcols, (n * c, 1, h, w), k, aux["stride"], gx)
        gxr = _View(gx, lambda b, s=tuple(src.shape): b.reshape(s), True)
        self._acc(src, gxr)

    def _bwd_avg_pool2d(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        aux = node.aux
        n, c, h, w = aux["n"], aux["c"], aux["h"], aux["w"]
        k = aux["kernel"]
        length = aux["length"]
        scale = 1.0 / (k * k)
        gcols = self._buf((n * c, k * k, length))
        gv = _View(g, lambda b, s=(n * c, 1, length): b.reshape(s), True)
        self._emit(_kuf2, np.multiply, gv, scale, gcols)
        gx = self._buf((n * c, 1, h, w))
        self._emit(_kcol2im, gcols, (n * c, 1, h, w), k, aux["stride"], gx)
        gxr = _View(gx, lambda b, s=tuple(src.shape): b.reshape(s), True)
        self._acc(src, gxr)

    def _bwd_batch_norm(self, node, g):
        x_src, w_src, b_src = node.srcs
        aux = node.aux
        axes = aux["axes"]
        xhat = aux["xhat"]
        kshape = aux["kshape"]
        ch = node.shape[1]
        if b_src.requires_grad:
            self._acc_sum(b_src, g, axes, False, (ch,))
        if w_src.requires_grad:
            tb = self._buf(node.shape)
            self._emit(_kuf2, np.multiply, g, xhat, tb)
            self._acc_sum(w_src, tb, axes, False, (ch,))
        if x_src.requires_grad:
            count = aux["count"]
            gx = self._buf(node.shape)
            self._emit(_kuf2, np.multiply, g, aux["w_r"], gx)
            gsum = self._buf(kshape)
            self._emit(_ksum, gx, axes, True, gsum)
            tb2 = self._buf(node.shape)
            self._emit(_kuf2, np.multiply, gx, xhat, tb2)
            gdot = self._buf(kshape)
            self._emit(_ksum, tb2, axes, True, gdot)
            self._emit(_kuf2, np.divide, gsum, count, gsum)
            self._emit(_kuf2, np.subtract, gx, gsum, gx)
            # eager computes ``x_hat * grad_dot / count`` which associates
            # left-to-right as (x_hat * grad_dot) / count; dividing
            # grad_dot first only matches bitwise when count is a power
            # of two, so replicate the exact association.
            self._emit(_kuf2, np.multiply, xhat, gdot, tb2)
            self._emit(_kuf2, np.divide, tb2, count, tb2)
            self._emit(_kuf2, np.subtract, gx, tb2, gx)
            self._emit(_kuf2, np.multiply, gx, aux["invstd_r"], gx)
            self._acc(x_src, gx)

    def _bwd_log_softmax(self, node, g):
        src = node.srcs[0]
        if not src.requires_grad:
            return
        aux = node.aux
        gs = self._buf(aux["kshape"])
        self._emit(_ksum, g, aux["axis"], True, gs)
        tb = self._buf(node.shape)
        self._emit(_kuf2, np.multiply, aux["soft"], gs, tb)
        self._emit(_kuf2, np.subtract, g, tb, tb)
        self._acc(src, tb)

    def _bwd_cross_entropy(self, node, g):
        logits_src = node.srcs[0]
        if not logits_src.requires_grad:
            return
        aux = node.aux
        shape = (aux["n"], aux["num_classes"])
        s = self._slot(logits_src)
        if s is None:
            return
        slot, first = s
        gl = slot if first else self._buf(shape)
        tmp = self._buf(shape)
        self._emit(_kce_grad, g, aux["inv_n"], gl, aux["rows"], self.y_buf,
                   aux["soft"], tmp)
        if not first:
            self._emit(_kiadd, slot, gl)

    # -- bind ----------------------------------------------------------
    def build(self) -> "_Program":
        self._forward()
        self._backward()
        arena_bytes = _pack_arena(self._bufs)
        arena = np.empty(max(arena_bytes // 4, 1), dtype=np.float32)
        for buf in self._bufs:
            n = 1
            for d in buf.shape:
                n *= d
            start = buf.offset // 4
            buf.array = arena[start:start + n].reshape(buf.shape)
        closures = tuple(entry[0](*[_resolve(a) for a in entry[1:]])
                         for entry in self._instrs)
        loss_arr = _resolve(self.loss_node.val)
        if not isinstance(loss_arr, np.ndarray) or loss_arr.size != 1:
            raise GraphUnsupported("loss is not a scalar buffer")
        naive = sum(-(-b.nbytes // _ALIGN) * _ALIGN for b in self._bufs)
        return _Program(
            closures=closures, arena=arena, x_buf=self.x_buf,
            y_buf=self.y_buf, loss=loss_arr, param_grads=self._param_grads,
            stats={
                "nodes": len(self.capture.nodes),
                "instrs": len(closures),
                "arena_bytes": arena_bytes,
                "naive_bytes": naive,
                "dedicated_bytes": self._ded_bytes,
                "fused_elementwise": self.fused_elementwise,
            })


def _swap_shape(shape) -> tuple[int, ...]:
    shape = tuple(shape)
    return shape[:-2] + (shape[-1], shape[-2])


def _matmul_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    if len(a) < 2 or len(b) < 2:
        raise GraphUnsupported("matmul shape inference needs >=2-d")
    return tuple(np.broadcast_shapes(a[:-2], b[:-2])) + (a[-2], b[-1])


def _basic_index(index) -> bool:
    items = index if isinstance(index, tuple) else (index,)
    return all(
        item is None or item is Ellipsis
        or isinstance(item, (int, np.integer, slice))
        for item in items)


def _resolve(v):
    if isinstance(v, _Buf):
        return v.array
    if isinstance(v, _View):
        if v.arr is None:
            v.arr = v.fn(_resolve(v.base))
        return v.arr
    return v


# ---------------------------------------------------------------------------
# Program + executor
# ---------------------------------------------------------------------------

class _Program:
    """A bound, replayable training step."""

    __slots__ = ("_closures", "_arena", "_x_buf", "_y_buf", "_loss",
                 "_param_grads", "stats")

    def __init__(self, closures, arena, x_buf, y_buf, loss, param_grads,
                 stats):
        self._closures = closures
        self._arena = arena
        self._x_buf = x_buf
        self._y_buf = y_buf
        self._loss = loss
        self._param_grads = tuple(param_grads)
        self.stats = stats

    def replay(self, x, y, optimizer, model) -> float:
        model.train()
        np.copyto(self._x_buf, x)
        np.copyto(self._y_buf, y)
        for run in self._closures:
            run()
        for param, gbuf in self._param_grads:
            param.grad = gbuf
        optimizer.step()
        return float(self._loss)


def compile_program(capture: GraphCapture, loss: Tensor,
                    fuse: bool = True) -> _Program:
    """Compile a :class:`GraphCapture` into a replayable ``_Program``.

    Raises :class:`GraphUnsupported` when the step cannot be replayed
    bit-identically.
    """
    if capture.unsupported is not None:
        raise GraphUnsupported(f"unsupported op: {capture.unsupported}")
    loss_node = capture.by_id.get(id(loss))
    if loss_node is None:
        raise GraphUnsupported("loss tensor was not produced by the capture")
    return _Compiler(capture, loss_node, fuse).build()


def _eager_step(model, optimizer, x, y) -> float:
    """The eager interpreter step (mirrors ``fp32_train_step``)."""
    model.train()
    optimizer.zero_grad()
    logits = model(Tensor(x))
    loss = F.cross_entropy(logits, y)
    loss.backward()
    optimizer.step()
    return loss.item()


_MISSING = object()


class GraphExecutor:
    """Trace-once/replay-many dispatcher for one model's training step.

    Programs are keyed by input shape/dtype; per-step validity is the
    flat buffer's intactness (faults-induced re-grouping or per-key
    state loads rebind parameter storage, which invalidates every bound
    view — all programs are dropped and the step falls back to eager).
    """

    def __init__(self, model, max_programs: int = 8, fuse: bool = True):
        flat = model.flatten_parameters()
        if flat is None:
            raise GraphUnsupported("model has no fused flat parameter buffer")
        self.model = model
        self.flat = flat
        self.max_programs = max_programs
        self.fuse = fuse
        self.stats = {"captures": 0, "replays": 0, "eager_steps": 0,
                      "fallbacks": 0}
        self._programs: dict[tuple, _Program | None] = {}

    def step(self, optimizer, x, y) -> float:
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y)
        key = (x.shape, y.shape, y.dtype.str)
        prog = self._programs.get(key, _MISSING)
        if prog is _MISSING:
            if not self.flat.is_intact():
                self.stats["fallbacks"] += 1
                return _eager_step(self.model, optimizer, x, y)
            if len(self._programs) >= self.max_programs:
                self.stats["eager_steps"] += 1
                return _eager_step(self.model, optimizer, x, y)
            return self._capture_step(key, optimizer, x, y)
        if prog is None:
            self.stats["eager_steps"] += 1
            return _eager_step(self.model, optimizer, x, y)
        if not self.flat.is_intact():
            # parameter storage was rebound under us: every bound view in
            # every program is stale, not just this shape's
            self._programs.clear()
            self.stats["fallbacks"] += 1
            return _eager_step(self.model, optimizer, x, y)
        self.stats["replays"] += 1
        return prog.replay(x, y, optimizer, self.model)

    def _capture_step(self, key, optimizer, x, y) -> float:
        x_t = Tensor(x)
        capture = GraphCapture(x_t, y, self.flat.param_tensors)
        tensor_mod._CAPTURE = capture
        try:
            self.model.train()
            optimizer.zero_grad()
            logits = self.model(x_t)
            loss = F.cross_entropy(logits, y)
            loss.backward()
            optimizer.step()
        finally:
            tensor_mod._CAPTURE = None
        loss_val = loss.item()
        try:
            prog = compile_program(capture, loss, fuse=self.fuse)
        except GraphUnsupported:
            prog = None
        self._programs[key] = prog
        if prog is None:
            self.stats["fallbacks"] += 1
        else:
            self.stats["captures"] += 1
        return loss_val

    def snapshot(self) -> dict[str, int]:
        return dict(self.stats)

    def program_stats(self) -> list[dict]:
        return [p.stats for p in self._programs.values() if p is not None]


def attach_graph_executor(model, max_programs: int = 8,
                          fuse: bool = True) -> GraphExecutor | None:
    """Attach a :class:`GraphExecutor` to ``model`` (idempotent).

    ``fp32_train_step`` dispatches to it when present.  Returns ``None``
    (leaving the model eager) when the model cannot flatten.
    """
    executor = getattr(model, "_graph_exec", None)
    if executor is not None:
        return executor
    try:
        executor = GraphExecutor(model, max_programs=max_programs, fuse=fuse)
    except GraphUnsupported:
        return None
    model._graph_exec = executor
    return executor


def detach_graph_executor(model) -> None:
    if getattr(model, "_graph_exec", None) is not None:
        model._graph_exec = None


# ---------------------------------------------------------------------------
# INT8 training-step programs (the Int8Trainer / NPU hot path)
# ---------------------------------------------------------------------------

def _make_input_stage(x_buf, observer, config):
    """Closure quantising one raw input batch into the core program's
    input buffer, replicating ``Int8Trainer._quantize_input`` exactly.

    ``observer`` is the trainer's live input :class:`EmaObserver` (or
    ``None`` when activations are not quantised): its EMA advances on
    every replay and its scale is re-read, so scale drift is program
    *input*, not program *structure*.
    """
    if observer is None:
        def stage(x):
            np.copyto(x_buf, x)
        return stage
    absbuf = np.empty(x_buf.shape, dtype=np.float32)
    if config.float16:
        h16 = np.empty(x_buf.shape, dtype=np.float16)

        def stage(x):
            observer.update(float(np.abs(x, out=absbuf).max()))
            np.copyto(h16, x)
            np.copyto(x_buf, h16)
        return stage
    qmax = config.qmax
    tmp64 = np.empty(x_buf.shape, dtype=np.float64)

    def stage(x):
        observer.update(float(np.abs(x, out=absbuf).max()))
        scale = observer.scale
        np.divide(x, scale, out=x_buf)
        np.rint(x_buf, out=x_buf)
        np.clip(x_buf, -qmax, qmax, out=x_buf)
        np.copyto(tmp64, x_buf)
        np.multiply(tmp64, scale, out=tmp64)
        np.copyto(x_buf, tmp64)
    return stage


def _make_clip(flat_grads, layout, max_grad_norm):
    """Fused global-norm gradient clip over the flat gradient buffer.

    Bit-identical to ``Int8Trainer._clip_gradients``: one float64
    pairwise ``np.sum`` per parameter segment, accumulated in parameter
    order (float addition order matters), then a single in-place
    multiply of the whole buffer — elementwise identical to the eager
    per-view loop because every parameter's gradient view tiles it.
    """
    n = layout.num_params
    g64 = np.empty(int(max(layout.sizes[:n])), dtype=np.float64)
    segs = tuple(
        (flat_grads[off:off + size], g64[:size])
        for off, size in zip(layout.offsets[:n], layout.sizes[:n]))

    def run():
        total = 0.0
        for g32, gsq in segs:
            np.copyto(gsq, g32)             # astype-exact float64 widen
            np.square(gsq, out=gsq)         # ndarray ** 2 is np.square
            total += float(np.sum(gsq))
        norm = np.sqrt(total)
        if norm > max_grad_norm:
            np.multiply(flat_grads, max_grad_norm / norm, out=flat_grads)
    return run


class _Int8Program:
    """A bound, replayable INT8 training step.

    Wraps a core autograd :class:`_Program` (fake-quantised forward
    with STE hooks, loss, backward) with the preallocated quantisation
    stages ``Int8Trainer.train_step`` runs around it:

    1. master-weight snapshot + in-place segment fake-quantisation of
       the flat parameter buffer (scales are data-dependent and
       recomputed every replay),
    2. input observation + fake-quantisation straight into the core
       program's input buffer,
    3. the captured forward/backward closures,
    4. master restore, fused global-norm clip, and in-place
       stochastically-rounded gradient quantisation that advances the
       trainer's RNG stream exactly like the eager
       ``fake_quantize_segments`` call (one ``rng.random(out=)`` draw).
    """

    __slots__ = ("_core", "_flat_params", "_flat_grads", "_masters",
                 "_weight_quant", "_input_stage", "_clip", "_grad_quant",
                 "_stochastic", "stats")

    def __init__(self, core, flat_params, flat_grads, weight_quant,
                 input_stage, clip, grad_quant, stochastic):
        self._core = core
        self._flat_params = flat_params
        self._flat_grads = flat_grads
        self._masters = np.empty_like(flat_params)
        self._weight_quant = weight_quant
        self._input_stage = input_stage
        self._clip = clip
        self._grad_quant = grad_quant
        self._stochastic = stochastic
        self.stats = core.stats

    def replay(self, trainer, x, y) -> float:
        core = self._core
        trainer.model.train()
        np.copyto(self._masters, self._flat_params)
        if self._weight_quant is not None:
            self._weight_quant(self._flat_params)
        self._input_stage(x)
        np.copyto(core._y_buf, y)
        for run in core._closures:
            run()
        np.copyto(self._flat_params, self._masters)
        if self._clip is not None:
            self._clip()
        if self._grad_quant is not None:
            self._grad_quant(self._flat_grads,
                             rng=trainer.rng if self._stochastic else None)
        for param, gbuf in core._param_grads:
            param.grad = gbuf
        trainer.optimizer.step()
        return float(core._loss)


class Int8GraphExecutor:
    """Trace-once/replay-many dispatcher for one ``Int8Trainer``.

    Mirrors :class:`GraphExecutor` (shape-keyed programs, permanently
    eager keys on cache overflow, drop-everything on flat-storage
    rebinding) and adds the INT8-specific fallback edge: a quantiser /
    observer reconfiguration (``attach_activation_quant`` re-run, a
    changed ``QuantConfig`` or ``max_grad_norm``) invalidates every
    program, because the bound closures hold the observer objects.

    Unlike the FP32 executor it is attachable even when the model
    cannot flatten: every step then falls back with the ``fallbacks``
    counter ticking, so ``graph.int8_fallbacks`` always has a value to
    report instead of the flag being silently dropped.
    """

    def __init__(self, trainer, max_programs: int = 8, fuse: bool = True):
        self.trainer = trainer
        self.max_programs = max_programs
        self.fuse = fuse
        self.stats = {"captures": 0, "replays": 0, "eager_steps": 0,
                      "fallbacks": 0}
        self._programs: dict[tuple, _Int8Program | None] = {}
        self._sig = None

    def _signature(self):
        t = self.trainer
        return (id(t._input_observer),
                tuple(id(o) for o in t._activation_observers()),
                t.config, t.max_grad_norm)

    def step(self, x, y) -> float:
        t = self.trainer
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y)
        key = (x.shape, y.shape, y.dtype.str)
        flat = t._flat()
        prog = self._programs.get(key, _MISSING)
        if prog is _MISSING:
            if flat is None:
                self.stats["fallbacks"] += 1
                return t._eager_step(x, y)
            if len(self._programs) >= self.max_programs:
                self.stats["eager_steps"] += 1
                return t._eager_step(x, y)
            return self._capture_step(key, flat, x, y)
        if prog is None:
            self.stats["eager_steps"] += 1
            return t._eager_step(x, y)
        if flat is None or self._signature() != self._sig:
            # Parameter storage was rebound or the quantisers were
            # reconfigured under us: every bound view and observer
            # closure is stale, not just this shape's.
            self._programs.clear()
            self._sig = None
            self.stats["fallbacks"] += 1
            return t._eager_step(x, y)
        self.stats["replays"] += 1
        return prog.replay(t, x, y)

    def _capture_step(self, key, flat, x, y) -> float:
        t = self.trainer
        t.model.train()
        t.optimizer.zero_grad()
        masters = t._quantized_weights()
        x_t = Tensor(t._quantize_input(x))
        capture = GraphCapture(x_t, y, flat.param_tensors)
        tensor_mod._CAPTURE = capture
        try:
            logits = t.model(x_t)
            loss = F.cross_entropy(logits, y)
            loss.backward()
        finally:
            tensor_mod._CAPTURE = None
        loss_val = t._finish_step(loss, masters)
        try:
            prog = self._compile(capture, loss, flat)
        except GraphUnsupported:
            prog = None
        self._programs[key] = prog
        if prog is None:
            self.stats["fallbacks"] += 1
        else:
            self.stats["captures"] += 1
            self._sig = self._signature()
        return loss_val

    def _compile(self, capture, loss, flat) -> _Int8Program:
        from ..quant.int8 import SegmentQuantizer
        t = self.trainer
        config = t.config
        core = compile_program(capture, loss, fuse=self.fuse)
        layout = flat.layout
        if len(core._param_grads) != layout.num_params:
            # The eager step clips/quantises exactly the parameters that
            # received gradients; the fused stages assume all of them.
            raise GraphUnsupported("not every parameter received a gradient")
        starts, sizes = t._param_segments(flat)
        weight_quant = (SegmentQuantizer(starts, sizes, config)
                        if config.quantize_weights else None)
        grad_quant = (SegmentQuantizer(starts, sizes, config,
                                       stochastic=True)
                      if config.quantize_gradients else None)
        observer = (t._input_observer if config.quantize_activations
                    else None)
        input_stage = _make_input_stage(core._x_buf, observer, config)
        clip = (_make_clip(flat.grads, layout, t.max_grad_norm)
                if t.max_grad_norm is not None else None)
        return _Int8Program(
            core, flat.params, flat.grads, weight_quant, input_stage,
            clip, grad_quant, stochastic=config.stochastic_rounding)

    def snapshot(self) -> dict[str, int]:
        return dict(self.stats)

    def program_stats(self) -> list[dict]:
        return [p.stats for p in self._programs.values() if p is not None]


def attach_int8_graph_executor(trainer, max_programs: int = 8,
                               fuse: bool = True) -> Int8GraphExecutor:
    """Attach an :class:`Int8GraphExecutor` to an ``Int8Trainer``
    (idempotent).  Always succeeds — a trainer whose model cannot
    flatten keeps the executor in permanent-fallback mode so the
    ``graph.int8_fallbacks`` counter is still surfaced."""
    executor = getattr(trainer, "_graph_exec", None)
    if executor is not None:
        return executor
    executor = Int8GraphExecutor(trainer, max_programs=max_programs,
                                 fuse=fuse)
    trainer._graph_exec = executor
    return executor
