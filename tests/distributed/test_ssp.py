"""Stale-synchronous parallel extension baseline."""

from dataclasses import replace

import pytest

from repro.distributed import StaleSynchronous, build_strategy


class TestConstruction:
    def test_registry_entry(self):
        strategy = build_strategy("ssp")
        assert isinstance(strategy, StaleSynchronous)

    def test_invalid_staleness(self):
        with pytest.raises(ValueError):
            StaleSynchronous(staleness=0)


class TestTraining:
    def test_learns_above_chance(self, quick_config):
        config = replace(quick_config, max_epochs=3)
        result = StaleSynchronous(staleness=4).train(config)
        assert result.best_accuracy > 1.0 / quick_config.task.num_classes
        assert result.extra["staleness"] == 4

    def test_more_staleness_less_sync_time(self, quick_config):
        config = replace(quick_config, max_epochs=1)
        tight = StaleSynchronous(staleness=1).train(config)
        loose = StaleSynchronous(staleness=16).train(config)
        assert loose.breakdown["sync"] < tight.breakdown["sync"]
        assert loose.sim_time_s < tight.sim_time_s

    def test_interpolates_between_ps_and_fedavg(self, quick_config):
        """staleness=1 syncs like PS every step; large staleness
        approaches FedAvg's per-epoch communication volume."""
        config = replace(quick_config, max_epochs=1)
        ps = build_strategy("ps").train(config)
        fed = build_strategy("fedavg").train(config)
        mid = StaleSynchronous(staleness=8).train(config)
        assert fed.breakdown["sync"] < mid.breakdown["sync"] < \
            ps.breakdown["sync"]

    def test_deterministic(self, quick_config):
        config = replace(quick_config, max_epochs=2)
        a = StaleSynchronous(staleness=4).train(config)
        b = StaleSynchronous(staleness=4).train(config)
        assert a.accuracy_history == b.accuracy_history
