"""Named dataset specs mirroring the paper's Table 2 workloads.

Every entry generates a synthetic task whose *shape* (channels, image
size, class count, default sizes) matches the real dataset it stands in
for.  ``scale`` shrinks sample counts proportionally so the harness can
run quick or full configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .synthetic import SyntheticImageTask, make_classification_images

__all__ = ["DatasetSpec", "DATASET_REGISTRY", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one stand-in dataset."""

    name: str
    num_classes: int
    channels: int
    image_size: int
    train_size: int
    test_size: int
    difficulty: float
    stands_in_for: str


DATASET_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("cifar10", 10, 3, 32, 50_000, 10_000, 0.55,
                    "CIFAR-10 (Krizhevsky)"),
        DatasetSpec("emnist", 47, 1, 28, 112_800, 18_800, 0.30,
                    "EMNIST balanced (Cohen et al.)"),
        DatasetSpec("fmnist", 10, 1, 28, 60_000, 10_000, 0.40,
                    "Fashion-MNIST (Xiao et al.)"),
        DatasetSpec("celeba", 2, 3, 32, 162_770, 19_962, 0.30,
                    "CelebA binary attribute (Liu et al.)"),
        DatasetSpec("cinic10", 10, 3, 32, 90_000, 90_000, 0.60,
                    "CINIC-10 (Darlow et al.)"),
    ]
}


def load_dataset(name: str, scale: float = 1.0, image_size: int | None = None,
                 seed: int = 0) -> SyntheticImageTask:
    """Build the named synthetic dataset.

    Parameters
    ----------
    scale:
        Fraction of the real dataset's sample count to generate; the
        harness uses small scales so pure-numpy training runs complete
        in seconds.
    image_size:
        Override the spec's image side (the reduced harness uses 16).
    """
    try:
        spec = DATASET_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_REGISTRY))
        raise ValueError(f"unknown dataset {name!r}; known: {known}") from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    train_size = max(spec.num_classes * 4, int(spec.train_size * scale))
    test_size = max(spec.num_classes * 4, int(spec.test_size * scale))
    return make_classification_images(
        num_classes=spec.num_classes,
        train_size=train_size,
        test_size=test_size,
        channels=spec.channels,
        image_size=image_size or spec.image_size,
        difficulty=spec.difficulty,
        seed=seed,
        name=name,
    )
