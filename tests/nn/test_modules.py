"""Module system: registration, modes, state dicts."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d,
                      Module, ReLU, Sequential, Tensor)


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, rng, padding=1),
        BatchNorm2d(4),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(4 * 4 * 4, 5, rng),
    )


class TestRegistration:
    def test_named_parameters_paths(self):
        net = small_net()
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "5.bias" in names

    def test_named_buffers(self):
        net = small_net()
        buffers = dict(net.named_buffers())
        assert "1.running_mean" in buffers
        assert buffers["1.running_var"].shape == (4,)

    def test_num_parameters_positive(self):
        assert small_net().num_parameters() > 0

    def test_parameters_require_grad(self):
        assert all(p.requires_grad for p in small_net().parameters())

    def test_modules_iterates_tree(self):
        net = small_net()
        kinds = {type(m).__name__ for m in net.modules()}
        assert {"Sequential", "Conv2d", "BatchNorm2d", "Linear"} <= kinds


class TestModes:
    def test_train_eval_propagate(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears(self):
        net = small_net()
        out = net(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip_restores_output(self):
        net_a = small_net(seed=0)
        net_b = small_net(seed=99)
        x = Tensor(np.random.default_rng(5).standard_normal((2, 3, 8, 8)))
        net_b.load_state_dict(net_a.state_dict())
        net_a.eval()
        net_b.eval()
        np.testing.assert_allclose(net_a(x).numpy(), net_b(x).numpy(),
                                   rtol=1e-6)

    def test_state_dict_copies_not_views(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"][...] = 0.0
        assert not np.allclose(net._modules["0"].weight.data, 0.0)

    def test_unexpected_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state["nonsense"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state.popitem()
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)


class TestForwardShapes:
    def test_sequential_forward(self):
        net = small_net()
        out = net(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 5)

    def test_sequential_iter(self):
        net = small_net()
        assert len(list(net)) == 6

    def test_output_quant_hook_applied(self):
        calls = []

        def hook(t):
            calls.append(t.shape)
            return t

        rng = np.random.default_rng(0)
        layer = Conv2d(1, 2, 3, rng, padding=1)
        layer.output_quant = hook
        layer(Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32)))
        assert calls == [(1, 2, 4, 4)]
