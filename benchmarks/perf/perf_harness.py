"""Host wall-clock performance harness (``BENCH_perf.json``).

Every other number this repo reports is *simulated* time from the
calibrated :class:`~repro.cluster.clock.PhaseClock`; this harness is
the opposite: it measures the **host** wall-clock cost of the real
numpy data plane, so data-plane optimisations (fused flat buffers,
workspace reuse, the scatter-free col2im) are visible and regressions
are catchable in CI.

Sections
--------
- ``conv``: forward and forward+backward of a representative conv
  stack (the VGG11 trunk at quick scale).
- ``aggregation``: ``average_states`` over 8 model replicas — the
  fused whole-model path (shared :class:`~repro.nn.flat.FlatState`
  layout, float32 sum-then-scale) against the pre-fusion per-key
  float64 reference loop — the microbenchmark the CI regression gate
  watches.
- ``bucketed_aggregation``: the overlap data plane's per-bucket
  averaging against the whole-model fused path — same kernel, same
  bytes, sliced at bucket boundaries — with a bit-equality assert at
  every geometry.
- ``step_time``: the end-to-end training step (forward, loss,
  backward, fused SGD) on the eager tape interpreter against the
  trace-once/replay-many graph executor, per registry model, with a
  bit-equality assert before timing — the second microbenchmark the
  CI regression gate watches.
- ``int8_step_time``: the same protocol for the full INT8 training
  step (``Int8Trainer.train_step``: fake-quantised weights/activations,
  STE hooks, clip, stochastically-rounded gradient quantisation,
  master-weight update) — the third gated microbenchmark.
- ``epoch``: one end-to-end SoCFlow epoch (real math + simulated
  clock) at quick scale, sequential and with ``--workers 2``.

Usage::

    PYTHONPATH=src python benchmarks/perf/perf_harness.py \
        --out BENCH_perf.json [--mode smoke|full]

The committed ``baseline.json`` stores the gated speedups measured at
authoring time; ``test_perf_smoke.py`` fails when a measured speedup
drops below 75% of its baseline.  Regenerate the baseline with
``--update-baseline`` (plus ``--mode full``) instead of hand-editing —
see DESIGN.md's baseline-regeneration workflow.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.comm.primitives import average_states
from repro.nn.models.registry import build_model
from repro.nn import functional as F
from repro.nn.tensor import Tensor

#: replicas averaged in the aggregation benchmark (paper: 8 LGs)
NUM_REPLICAS = 8


def _time(fn, repeats: int, warmup: int = 1) -> dict:
    """Median/min wall seconds of ``fn()`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return {
        "median_s": samples[len(samples) // 2],
        "min_s": samples[0],
        "max_s": samples[-1],
        "repeats": repeats,
    }


# ----------------------------------------------------------------------
def bench_conv(repeats: int, batch: int = 32) -> dict:
    """Forward and forward+backward of the quick-scale VGG11 trunk."""
    model = build_model("vgg11", num_classes=10, in_channels=3,
                        image_size=32, width=0.25, seed=0)
    model.flatten_parameters()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch, 3, 32, 32)).astype(np.float32)
    y = rng.integers(0, 10, size=batch)

    def forward():
        model.train()
        return model(Tensor(x))

    def forward_backward():
        model.train()
        for p in model.parameters():
            p.zero_grad()
        loss = F.cross_entropy(model(Tensor(x)), y)
        loss.backward()
        return loss

    return {
        "batch": batch,
        "forward": _time(forward, repeats),
        "forward_backward": _time(forward_backward, repeats),
    }


# ----------------------------------------------------------------------
def _replica_states(num: int):
    """``num`` flat snapshots of one model, plus per-key dict copies."""
    model = build_model("vgg11", num_classes=10, in_channels=3,
                        image_size=32, width=0.25, seed=0)
    model.flatten_parameters()
    rng = np.random.default_rng(1)
    flat_states = []
    for _ in range(num):
        state = model.state_dict()
        state.flat += rng.standard_normal(
            state.flat.shape).astype(np.float32) * 0.01
        flat_states.append(state)
    perkey_states = [OrderedDict((k, v.copy()) for k, v in s.items())
                     for s in flat_states]
    return flat_states, perkey_states


def _perkey_reference_average(states):
    """The pre-fusion ``average_states``: per-key float64 accumulation.

    This is the data plane the repo shipped with (and what an unfused
    reproduction naturally writes): walk the ``OrderedDict`` key by
    key, accumulate each key in a fresh float64 buffer, cast back.
    The benchmark keeps it alive as the baseline the fused float32
    whole-model path is measured against.
    """
    keys = list(states[0].keys())
    out = OrderedDict()
    for key in keys:
        acc = np.zeros_like(np.asarray(states[0][key], dtype=np.float64))
        for state in states:
            acc += (1.0 / len(states)) * state[key]
        out[key] = acc.astype(states[0][key].dtype)
    return out


def bench_aggregation(repeats: int) -> dict:
    """Fused vs per-key ``average_states`` over NUM_REPLICAS replicas.

    Three timings: ``fused`` (production whole-model float32 path),
    ``per_key_fallback`` (production dict fallback — bit-identical to
    fused by construction), and ``per_key`` (the pre-fusion float64
    reference loop).  The headline ``speedup`` — what the CI gate
    watches — is reference / fused.
    """
    flat_states, perkey_states = _replica_states(NUM_REPLICAS)
    fused = _time(lambda: average_states(flat_states), repeats)
    fallback = _time(lambda: average_states(perkey_states), repeats)
    perkey = _time(lambda: _perkey_reference_average(perkey_states), repeats)
    # sanity: production fused and per-key paths must produce the same
    # bits; the float64 reference must agree to float32 rounding.
    out_fused = average_states(flat_states)
    out_fallback = average_states(perkey_states)
    out_reference = _perkey_reference_average(perkey_states)
    for key in out_fallback:
        assert np.array_equal(out_fused[key], out_fallback[key]), key
        np.testing.assert_allclose(out_fused[key], out_reference[key],
                                   rtol=1e-5, atol=1e-6, err_msg=key)
    return {
        "replicas": NUM_REPLICAS,
        "model_floats": int(flat_states[0].flat.size),
        "fused": fused,
        "per_key_fallback": fallback,
        "per_key": perkey,
        "speedup": perkey["median_s"] / fused["median_s"],
    }


def bench_bucketed_aggregation(repeats: int) -> dict:
    """Per-bucket fused averaging vs the whole-model fused path.

    The comm/compute-overlap data plane re-slices the same flat storage
    at bucket boundaries; this section measures what that slicing costs
    on the host (it should be noise: same kernel, same bytes) and
    asserts the outputs stay bit-identical at every bucket geometry.
    """
    from repro.comm.buckets import BucketPlan, bucketed_average_states

    flat_states, _ = _replica_states(NUM_REPLICAS)
    layout = flat_states[0].layout
    whole = average_states(flat_states)
    real_bytes = 4.0 * layout.param_total
    out: dict = {"replicas": NUM_REPLICAS}
    for name, plan in (
            ("one_bucket", BucketPlan.from_layout(layout)),
            ("buckets8", BucketPlan.from_layout(
                layout, threshold_bytes=real_bytes / 8)),
            ("per_tensor", BucketPlan.from_layout(layout, max_ops=1))):
        merged = bucketed_average_states(flat_states, plan)
        assert np.array_equal(whole.flat, merged.flat), name
        timing = _time(lambda: bucketed_average_states(flat_states, plan),
                       repeats)
        timing["num_buckets"] = plan.num_buckets
        out[name] = timing
    out["overhead_vs_whole"] = (out["per_tensor"]["median_s"]
                                / max(out["one_bucket"]["median_s"], 1e-12))
    return out


# ----------------------------------------------------------------------
#: step-time benchmark geometries — quick-scale shapes where the
#: interpreter overhead the graph executor removes is visible (larger
#: images drown the step in BLAS time and both paths converge).
STEP_TIME_SPECS = (
    ("lenet5", {"in_channels": 1, "width": 0.25}, 4),
    ("resnet18", {"in_channels": 3, "width": 0.25}, 8),
    ("vit_tiny", {"in_channels": 3, "width": 0.5}, 8),
)
STEP_TIME_IMAGE = 16


def bench_step_time(repeats: int) -> dict:
    """End-to-end training step, eager vs compiled replay, per model.

    For each geometry two identical models train on the same batch: one
    on the eager tape interpreter, one through the trace-once/replay-many
    graph executor.  Before timing, three verification steps run on both
    and the resulting weights are asserted **bit-identical** — the
    speedup below is only meaningful because the replayed step computes
    the exact same bits.  ``speedup`` is eager / replay median; the CI
    gate holds lenet5 and vit_tiny above their floors.
    """
    import repro.core  # noqa: F401 -- resolves the core<->distributed cycle
    from repro.distributed.base import fp32_train_step
    from repro.nn.optim import SGD

    out: dict = {"image_size": STEP_TIME_IMAGE}
    for name, kwargs, batch in STEP_TIME_SPECS:
        kwargs = dict(kwargs, num_classes=10, image_size=STEP_TIME_IMAGE)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(
            (batch, kwargs["in_channels"], STEP_TIME_IMAGE,
             STEP_TIME_IMAGE)).astype(np.float32)
        y = rng.integers(0, 10, size=batch)

        def make(graph: bool):
            model = build_model(name, seed=3, **kwargs)
            optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9,
                            weight_decay=1e-4,
                            flat=model.flatten_parameters())
            if graph:
                assert model.enable_graph_executor() is not None, name
            return model, optimizer

        eager_model, eager_opt = make(False)
        graph_model, graph_opt = make(True)
        for _ in range(3):
            eager_loss = fp32_train_step(eager_model, eager_opt, x, y)
            graph_loss = fp32_train_step(graph_model, graph_opt, x, y)
            assert eager_loss == graph_loss, name
        eager_state = eager_model.state_dict()
        graph_state = graph_model.state_dict()
        for key in eager_state:
            assert np.array_equal(eager_state[key], graph_state[key]), \
                (name, key)

        eager = _time(
            lambda: fp32_train_step(eager_model, eager_opt, x, y), repeats,
            warmup=5)
        replay = _time(
            lambda: fp32_train_step(graph_model, graph_opt, x, y), repeats,
            warmup=5)
        executor = graph_model._graph_exec
        program = executor.program_stats()[0]
        out[name] = {
            "batch": batch,
            "eager": eager,
            "replay": replay,
            "speedup": eager["median_s"] / replay["median_s"],
            "program": program,
        }
    return out


# ----------------------------------------------------------------------
def bench_int8_step_time(repeats: int) -> dict:
    """End-to-end *INT8* training step, eager vs compiled replay.

    Same protocol as :func:`bench_step_time`, but the unit under test is
    the whole ``Int8Trainer.train_step`` — fake-quantised weights and
    activations, STE hooks, grad-norm clip, stochastically-rounded
    gradient quantisation and the FP32 master-weight update.  Before
    timing, three verification steps assert the replayed trainer's
    weights, RNG stream and observer EMAs are **bit-identical** to the
    eager twin's.  The CI gate holds lenet5 and vit_tiny above their
    floors (resnet18 is reported but BLAS-bound).
    """
    import repro.core  # noqa: F401 -- resolves the core<->distributed cycle
    from repro.quant.int8 import QuantConfig
    from repro.quant.trainer import Int8Trainer

    out: dict = {"image_size": STEP_TIME_IMAGE}
    for name, kwargs, batch in STEP_TIME_SPECS:
        kwargs = dict(kwargs, num_classes=10, image_size=STEP_TIME_IMAGE)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(
            (batch, kwargs["in_channels"], STEP_TIME_IMAGE,
             STEP_TIME_IMAGE)).astype(np.float32)
        y = rng.integers(0, 10, size=batch)

        def make(graph: bool):
            trainer = Int8Trainer(build_model(name, seed=3, **kwargs),
                                  lr=0.05, config=QuantConfig(),
                                  momentum=0.9, weight_decay=1e-4, seed=11)
            if graph:
                trainer.enable_graph_executor()
            return trainer

        eager, graphed = make(False), make(True)
        for _ in range(3):
            assert eager.train_step(x, y) == graphed.train_step(x, y), name
        eager_state = eager.model.state_dict()
        graph_state = graphed.model.state_dict()
        for key in eager_state:
            assert np.array_equal(eager_state[key], graph_state[key]), \
                (name, key)
        assert (eager.rng.bit_generator.state
                == graphed.rng.bit_generator.state), name
        assert graphed.graph_stats()["fallbacks"] == 0, name

        eager_t = _time(lambda: eager.train_step(x, y), repeats, warmup=5)
        replay_t = _time(lambda: graphed.train_step(x, y), repeats,
                         warmup=5)
        program = graphed._graph_exec.program_stats()[0]
        out[name] = {
            "batch": batch,
            "eager": eager_t,
            "replay": replay_t,
            "speedup": eager_t["median_s"] / replay_t["median_s"],
            "program": program,
        }
    return out


# ----------------------------------------------------------------------
def bench_epoch(repeats: int, workers: int = 1, epochs: int = 1) -> dict:
    """End-to-end SoCFlow wall time at quick scale (host seconds)."""
    from repro.core import SoCFlow, SoCFlowOptions
    from repro.harness import make_run_config

    config = make_run_config("vgg11", "quick", num_socs=16, num_groups=4,
                             max_epochs=epochs, workers=workers)

    def run():
        return SoCFlow(SoCFlowOptions()).train(config)

    timing = _time(run, repeats, warmup=0)
    timing.update(epochs=epochs, workers=workers, num_groups=4, num_socs=16)
    return timing


# ----------------------------------------------------------------------
def run_harness(mode: str = "smoke") -> dict:
    repeats = {"smoke": 3, "full": 10}[mode]
    report = {
        "mode": mode,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "conv": bench_conv(repeats),
        "aggregation": bench_aggregation(max(repeats, 20)),
        "bucketed_aggregation": bench_bucketed_aggregation(max(repeats, 20)),
        "step_time": bench_step_time(max(repeats, 15)),
        "int8_step_time": bench_int8_step_time(max(repeats, 15)),
        "epoch": {
            "sequential": bench_epoch(1 if mode == "smoke" else repeats),
            "workers2": bench_epoch(1 if mode == "smoke" else repeats,
                                    workers=2),
        },
    }
    return report


#: the committed CI-gate baseline next to this file
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


def update_baseline(report: dict, path=BASELINE_PATH) -> dict:
    """Rewrite ``baseline.json`` in place from a fresh report.

    Only the quantities the CI gates read are refreshed (plus the raw
    aggregation medians kept for context); the explanatory ``comment``
    survives.  Run with ``--mode full`` on the reference runner — see
    DESIGN.md's baseline-regeneration workflow.
    """
    with open(path) as fh:
        baseline = json.load(fh)
    agg = report["aggregation"]
    baseline["aggregation"] = {
        "speedup": round(agg["speedup"], 2),
        "fused_median_s": round(agg["fused"]["median_s"], 5),
        "per_key_median_s": round(agg["per_key"]["median_s"], 5),
    }
    baseline["bucketed_aggregation"] = {
        "overhead_vs_whole": round(
            report["bucketed_aggregation"]["overhead_vs_whole"], 2),
    }
    for section in ("step_time", "int8_step_time"):
        baseline[section] = {
            model: {"speedup": round(report[section][model]["speedup"], 2)}
            for model in ("lenet5", "vit_tiny")}
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--mode", default="smoke", choices=("smoke", "full"))
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed baseline.json from this run's "
             "measurements (use --mode full on the reference runner)")
    args = parser.parse_args(argv)
    report = run_harness(args.mode)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    agg = report["aggregation"]
    print(f"conv fwd       {report['conv']['forward']['median_s']*1e3:8.2f} ms")
    print(f"conv fwd+bwd   "
          f"{report['conv']['forward_backward']['median_s']*1e3:8.2f} ms")
    print(f"agg fused      {agg['fused']['median_s']*1e6:8.1f} us")
    print(f"agg per-key    {agg['per_key']['median_s']*1e6:8.1f} us")
    print(f"agg speedup    {agg['speedup']:8.2f}x")
    bucketed = report["bucketed_aggregation"]
    print(f"agg bucketed   "
          f"{bucketed['buckets8']['median_s']*1e6:8.1f} us "
          f"({bucketed['buckets8']['num_buckets']} buckets)")
    for section, tag in (("step_time", "step"), ("int8_step_time", "int8")):
        for name, _, _ in STEP_TIME_SPECS:
            timing = report[section][name]
            print(f"{tag} {name:10s} eager "
                  f"{timing['eager']['median_s']*1e3:7.2f} ms  replay "
                  f"{timing['replay']['median_s']*1e3:7.2f} ms  "
                  f"{timing['speedup']:5.2f}x")
    print(f"epoch seq      "
          f"{report['epoch']['sequential']['median_s']:8.2f} s")
    print(f"epoch w=2      {report['epoch']['workers2']['median_s']:8.2f} s")
    print(f"wrote {args.out}")
    if args.update_baseline:
        update_baseline(report)
        print(f"rewrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
