"""Shared fixtures: a tiny synthetic task and quick run configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterTopology
from repro.data import make_classification_images
from repro.distributed import RunConfig


@pytest.fixture(scope="session")
def tiny_task():
    """A 600-sample 6-class task that trains in a couple of seconds."""
    return make_classification_images(
        num_classes=6, train_size=600, test_size=240, channels=3,
        image_size=12, difficulty=0.4, seed=0)


@pytest.fixture(scope="session")
def mnist_like_task():
    """Single-channel 28x28-style task (LeNet input shape)."""
    return make_classification_images(
        num_classes=10, train_size=400, test_size=160, channels=1,
        image_size=20, difficulty=0.35, seed=1)


@pytest.fixture()
def quick_config(tiny_task):
    """A RunConfig small enough for per-test training runs."""
    return RunConfig(
        task=tiny_task, model_name="vgg11", width=0.15, batch_size=16,
        lr=0.05, momentum=0.9, max_epochs=2, seed=0,
        topology=ClusterTopology(num_socs=32),
        sim_samples_per_epoch=50_000, sim_global_batch=64, num_groups=8)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
