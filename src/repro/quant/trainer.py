"""The INT8 training loop wrapper (simulated NPU execution).

:class:`Int8Trainer` drives a model exactly like FP32 SGD but forces
the quantisation error sources of integer training:

- the *forward/backward pass* runs on weights snapped to the INT8 grid
  and on INT8-quantised inputs,
- *gradients* are quantised (stochastically rounded, as NITI does)
  before the update,
- FP32 master weights absorb the updates, exactly like integer training
  schemes keep higher-precision accumulators so that sub-grid updates
  are not erased.

This reproduces the error-accumulation behaviour the paper measures
(Figure 4c: 5.94–8.25% accuracy drop at 32 SoCs) without integer-only
kernels, which are irrelevant to the learning dynamics.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from ..nn import functional as F
from .int8 import QuantConfig, fake_quantize
from .observer import EmaObserver

__all__ = ["Int8Trainer"]


class Int8Trainer:
    """Run SGD steps with INT8 fake-quantised weights/activations/grads."""

    def __init__(self, model: Module, lr: float, config: QuantConfig,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 seed: int = 0, max_grad_norm: float | None = 2.0):
        self.model = model
        self.config = config
        self.max_grad_norm = max_grad_norm
        self.optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                             weight_decay=weight_decay)
        self.rng = np.random.default_rng(seed)
        self._input_observer = EmaObserver(config.qmax)
        if config.quantize_activations:
            from .ste import attach_activation_quant
            attach_activation_quant(model, config)

    # ------------------------------------------------------------------
    def _quantized_weights(self) -> list[np.ndarray]:
        """Snap weights onto the INT8 grid, returning the FP32 masters."""
        masters: list[np.ndarray] = []
        for param in self.model.parameters():
            masters.append(param.data)
            if self.config.quantize_weights:
                param.data = fake_quantize(param.data, self.config)
        return masters

    def _restore_weights(self, masters: list[np.ndarray]) -> None:
        for param, master in zip(self.model.parameters(), masters):
            param.data = master

    def _quantize_input(self, x: np.ndarray) -> np.ndarray:
        if not self.config.quantize_activations:
            return x
        self._input_observer.observe(x)
        return fake_quantize(x, self.config,
                             scale=self._input_observer.scale)

    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One SGD step on the INT8 path; returns the batch loss."""
        self.model.train()
        self.optimizer.zero_grad()
        masters = self._quantized_weights()
        x = Tensor(self._quantize_input(np.asarray(inputs, dtype=np.float32)))
        logits = self.model(x)
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        self._restore_weights(masters)
        if self.max_grad_norm is not None:
            self._clip_gradients()
        if self.config.quantize_gradients:
            rng = self.rng if self.config.stochastic_rounding else None
            for param in self.model.parameters():
                if param.grad is not None:
                    param.grad = fake_quantize(param.grad, self.config,
                                               rng=rng)
        self.optimizer.step()
        return loss.item()

    def _clip_gradients(self) -> None:
        """Global-norm gradient clipping: integer-training schemes bound
        the gradient scale so quantisation noise cannot self-amplify."""
        total = 0.0
        grads = [p.grad for p in self.model.parameters() if p.grad is not None]
        for grad in grads:
            total += float(np.sum(grad.astype(np.float64) ** 2))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm:
            scale = self.max_grad_norm / norm
            for grad in grads:
                grad *= scale

    def predict_logits(self, inputs: np.ndarray) -> np.ndarray:
        """Inference logits through the quantised model."""
        self.model.eval()
        masters = self._quantized_weights()
        try:
            with no_grad():
                x = Tensor(self._quantize_input(
                    np.asarray(inputs, dtype=np.float32)))
                return self.model(x).data
        finally:
            self._restore_weights(masters)

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value
