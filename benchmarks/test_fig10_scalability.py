"""Figure 10: time to reach the target accuracy vs SoC count.

The target is 95% of the reference SSGD run's best accuracy (the paper
uses 99% relative convergence accuracy; quick-scale runs are noisier,
so the band is wider).  SoCFlow must keep shrinking its time as SoCs
are added, while RING barely improves — the core scalability claim.
"""

from conftest import print_block

from repro.harness import format_table

SOC_COUNTS = [8, 16, 32]
METHODS_FIG10 = ["ps", "ring", "hipress", "fedavg", "socflow"]


def test_fig10_time_to_accuracy_vs_socs(benchmark, suite):
    def compute():
        reference = suite.run("vgg11", "ring", num_socs=32, max_epochs=4)
        target = 0.95 * reference.best_accuracy
        table = {}
        for socs in SOC_COUNTS:
            row = {}
            for method in METHODS_FIG10:
                result = suite.run("vgg11", method, num_socs=socs,
                                   max_epochs=4)
                reached = [i for i, acc in
                           enumerate(result.accuracy_history, start=1)
                           if acc >= target]
                epochs = reached[0] if reached else result.epochs_run
                row[method] = (result.sim_time_hours
                               * epochs / result.epochs_run)
            table[socs] = row
        return target, table

    target, table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [[socs, *(round(table[socs][m], 3) for m in METHODS_FIG10)]
            for socs in SOC_COUNTS]
    print_block(
        f"Figure 10: hours to reach {100 * target:.1f}% accuracy (VGG-11)",
        format_table(["socs", *METHODS_FIG10], rows))

    # SoCFlow is the fastest DML method at every scale, the fastest
    # overall at the headline 32-SoC scale, and improves with more SoCs
    for socs in SOC_COUNTS:
        dml = {m: table[socs][m] for m in ("ps", "ring", "hipress")}
        assert table[socs]["socflow"] < min(dml.values()), socs
    assert table[32]["socflow"] == min(table[32].values())
    assert table[32]["socflow"] < table[8]["socflow"]

    # the gap to RING widens with scale (the paper's 2.6x-larger-at-32
    # observation, directionally)
    gap8 = table[8]["ring"] / table[8]["socflow"]
    gap32 = table[32]["ring"] / table[32]["socflow"]
    print_block("RING/SoCFlow gap", format_table(
        ["socs", "factor"], [[8, round(gap8, 1)], [32, round(gap32, 1)]]))
    assert gap32 > gap8 * 0.8  # never collapses; normally grows
