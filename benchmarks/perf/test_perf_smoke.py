"""Perf smoke test: produce ``BENCH_perf.json`` and gate regressions.

Runs the host wall-clock harness (``perf_harness.py``) in smoke mode,
writes the report to ``$BENCH_PERF_OUT`` (default ``BENCH_perf.json``
in the current directory — CI uploads it as a workflow artifact), and
fails when a gated microbenchmark regresses more than 25% relative to
the committed ``baseline.json``: the fused-vs-per-key aggregation
speedup, the per-tensor bucketed-averaging overhead, and the compiled
(graph-executor) FP32 and INT8 training-step speedups on lenet5 and
vit_tiny.  Regenerate the baseline with the harness's
``--update-baseline`` flag, never by hand (see DESIGN.md).

Wall-clock assertions on shared CI runners are noisy, so the gate
retries once with more repeats before declaring a regression; the
measured margin (~4.3x fused speedup against a 2x floor and a 3.2x
baseline gate) leaves plenty of headroom.

Not part of the tier-1 suite (``testpaths = ["tests"]``); CI runs it
explicitly with ``python -m pytest benchmarks/perf -q``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from perf_harness import (bench_aggregation, bench_bucketed_aggregation,
                          bench_int8_step_time, bench_step_time,
                          run_harness, update_baseline)

_HERE = Path(__file__).resolve().parent


@pytest.fixture(scope="module")
def report() -> dict:
    report = run_harness("smoke")
    out = Path(os.environ.get("BENCH_PERF_OUT", "BENCH_perf.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


@pytest.fixture(scope="module")
def baseline() -> dict:
    with open(_HERE / "baseline.json") as fh:
        return json.load(fh)


def test_report_has_all_sections(report):
    assert set(report) >= {"mode", "host", "conv", "aggregation",
                           "bucketed_aggregation", "step_time",
                           "int8_step_time", "epoch"}
    for section in ("forward", "forward_backward"):
        assert report["conv"][section]["median_s"] > 0
    for model in ("lenet5", "resnet18", "vit_tiny"):
        assert report["step_time"][model]["eager"]["median_s"] > 0
        assert report["step_time"][model]["replay"]["median_s"] > 0
        assert report["int8_step_time"][model]["eager"]["median_s"] > 0
        assert report["int8_step_time"][model]["replay"]["median_s"] > 0
    for path in ("fused", "per_key", "per_key_fallback"):
        assert report["aggregation"][path]["median_s"] > 0
    for variant in ("sequential", "workers2"):
        assert report["epoch"][variant]["median_s"] > 0


def test_bucketed_aggregation_geometries(report):
    """The per-bucket merge ran (bit-equality asserted inside the
    harness) and its geometries are what the overlap plan produces."""
    bucketed = report["bucketed_aggregation"]
    assert bucketed["one_bucket"]["num_buckets"] == 1
    assert bucketed["buckets8"]["num_buckets"] > 1
    assert bucketed["per_tensor"]["num_buckets"] > \
        bucketed["buckets8"]["num_buckets"]
    for name in ("one_bucket", "buckets8", "per_tensor"):
        assert bucketed[name]["median_s"] > 0


def test_fused_aggregation_meets_absolute_target(report):
    """Acceptance criterion: fused >= 2x over the per-key reference."""
    speedup = report["aggregation"]["speedup"]
    if speedup < 2.0:                                   # noisy runner: retry
        speedup = bench_aggregation(repeats=50)["speedup"]
    assert speedup >= 2.0, (
        f"fused aggregation only {speedup:.2f}x over the per-key "
        f"reference (need >= 2x)")


def test_fused_aggregation_not_regressed_vs_baseline(report, baseline):
    """CI gate: fail on a >25% relative regression vs the committed
    baseline speedup."""
    floor = 0.75 * baseline["aggregation"]["speedup"]
    speedup = report["aggregation"]["speedup"]
    if speedup < floor:                                 # noisy runner: retry
        speedup = bench_aggregation(repeats=50)["speedup"]
    assert speedup >= floor, (
        f"fused aggregation speedup {speedup:.2f}x fell below 75% of the "
        f"committed baseline ({baseline['aggregation']['speedup']:.2f}x; "
        f"gate at {floor:.2f}x) — the fused data plane regressed")


def test_bucketed_overhead_not_regressed(report, baseline):
    """CI gate: slicing the flat average at bucket boundaries must stay
    cheap — same kernel, same bytes, only per-bucket launches added.

    The ceiling is generous (max of 2x absolute and 1.6x the committed
    ~1.24x baseline) because the per-tensor extreme measures launch
    overhead of sub-microsecond slices on a shared runner.
    """
    ceiling = max(2.0,
                  1.6 * baseline["bucketed_aggregation"]["overhead_vs_whole"])
    overhead = report["bucketed_aggregation"]["overhead_vs_whole"]
    if overhead > ceiling:                              # noisy runner: retry
        overhead = bench_bucketed_aggregation(
            repeats=50)["overhead_vs_whole"]
    assert overhead <= ceiling, (
        f"per-tensor bucketed averaging costs {overhead:.2f}x the "
        f"whole-model fused path (ceiling {ceiling:.2f}x) — bucket "
        f"slicing got expensive")


# -- graph executor (trace-once/replay-many) gates ----------------------
#: models whose compiled-step speedup the CI gate enforces (resnet18 is
#: reported but not gated: its step is BLAS-bound, so removing the
#: interpreter moves it less)
_GATED_STEP_MODELS = ("lenet5", "vit_tiny")


def test_compiled_step_meets_absolute_target(report):
    """Acceptance criterion: replaying the compiled step is >= 1.3x
    faster than the eager tape interpreter on a CNN and the ViT (the
    harness asserts bit-identical weights before timing)."""
    retried = None
    for model in _GATED_STEP_MODELS:
        speedup = report["step_time"][model]["speedup"]
        if speedup < 1.3:                               # noisy runner: retry
            retried = retried or bench_step_time(repeats=40)
            speedup = retried[model]["speedup"]
        assert speedup >= 1.3, (
            f"compiled {model} step only {speedup:.2f}x over eager "
            f"(need >= 1.3x)")


def test_compiled_step_not_regressed_vs_baseline(report, baseline):
    """CI gate: fail on a >25% relative regression of the compiled-step
    speedup vs the committed baseline."""
    retried = None
    for model in _GATED_STEP_MODELS:
        floor = 0.75 * baseline["step_time"][model]["speedup"]
        speedup = report["step_time"][model]["speedup"]
        if speedup < floor:                             # noisy runner: retry
            retried = retried or bench_step_time(repeats=40)
            speedup = retried[model]["speedup"]
        assert speedup >= floor, (
            f"compiled {model} step speedup {speedup:.2f}x fell below 75% "
            f"of the committed baseline "
            f"({baseline['step_time'][model]['speedup']:.2f}x; gate at "
            f"{floor:.2f}x) — the graph executor regressed")


def test_compiled_step_arena_smaller_than_naive(report):
    """The lifetime planner must actually pack: the arena has to be
    smaller than giving every intermediate a dedicated buffer."""
    for section in ("step_time", "int8_step_time"):
        for model in ("lenet5", "resnet18", "vit_tiny"):
            program = report[section][model]["program"]
            assert program["arena_bytes"] < program["naive_bytes"], \
                (section, model)


def test_compiled_int8_step_meets_absolute_target(report):
    """Acceptance criterion: replaying the compiled INT8 step — quant
    stages and stochastic rounding included — is >= 1.3x faster than
    the eager INT8 step on a CNN and the ViT (the harness asserts
    bit-identical weights, RNG stream and observers before timing)."""
    retried = None
    for model in _GATED_STEP_MODELS:
        speedup = report["int8_step_time"][model]["speedup"]
        if speedup < 1.3:                               # noisy runner: retry
            retried = retried or bench_int8_step_time(repeats=40)
            speedup = retried[model]["speedup"]
        assert speedup >= 1.3, (
            f"compiled INT8 {model} step only {speedup:.2f}x over eager "
            f"(need >= 1.3x)")


def test_compiled_int8_step_not_regressed_vs_baseline(report, baseline):
    """CI gate: fail on a >25% relative regression of the compiled INT8
    step speedup vs the committed baseline."""
    retried = None
    for model in _GATED_STEP_MODELS:
        floor = 0.75 * baseline["int8_step_time"][model]["speedup"]
        speedup = report["int8_step_time"][model]["speedup"]
        if speedup < floor:                             # noisy runner: retry
            retried = retried or bench_int8_step_time(repeats=40)
            speedup = retried[model]["speedup"]
        assert speedup >= floor, (
            f"compiled INT8 {model} step speedup {speedup:.2f}x fell below "
            f"75% of the committed baseline "
            f"({baseline['int8_step_time'][model]['speedup']:.2f}x; gate "
            f"at {floor:.2f}x) — the INT8 graph executor regressed")


def test_update_baseline_rewrites_gated_quantities(report, baseline,
                                                  tmp_path):
    """``--update-baseline`` refreshes exactly the gated numbers and
    keeps the explanatory comment — no more hand-edited baselines."""
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    rewritten = update_baseline(report, path=path)
    on_disk = json.loads(path.read_text())
    assert on_disk == rewritten
    assert on_disk["comment"] == baseline["comment"]
    assert set(on_disk) == {"comment", "aggregation",
                            "bucketed_aggregation", "step_time",
                            "int8_step_time"}
    for section in ("step_time", "int8_step_time"):
        for model in _GATED_STEP_MODELS:
            assert on_disk[section][model]["speedup"] == pytest.approx(
                report[section][model]["speedup"], abs=0.005)
