"""Optimisers and learning-rate schedules.

SoCFlow trains with standard SGD on the CPU path (the paper, §3.2) and
the INT8 path re-uses the same update rule on a quantised grid, so SGD
with momentum / weight decay covers every experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["SGD", "Adam", "StepLR", "CosineAnnealingLR", "ConstantLR"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: Sequence[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False, flat=None):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)
        self._flat = None
        self._flat_velocity: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._scratch2: np.ndarray | None = None
        if flat is not None:
            self.bind_flat(flat)

    def bind_flat(self, flat) -> bool:
        """Bind a :class:`~repro.nn.flat.FlatParamBuffer` for fused
        in-place updates.

        When every optimised parameter is (in order) a tensor of
        ``flat``, ``step`` collapses to a handful of whole-model array
        ops with no per-step temporaries — bit-identical to the
        per-parameter loop, which remains as the fallback whenever a
        gradient is missing or was rebound away from the fused buffer.
        Returns True when the binding took effect.
        """
        if len(self.params) != len(flat.param_tensors):
            return False
        for mine, theirs in zip(self.params, flat.param_tensors):
            if mine is not theirs:
                return False
        self._flat = flat
        if self.momentum:
            self._flat_velocity = np.zeros(flat.layout.param_total,
                                           dtype=np.float32)
            # The slow path mutates these views, so both paths always
            # share one coherent velocity state.
            self._velocity = flat.layout.param_views(self._flat_velocity)
        return True

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        flat = self._flat
        if flat is not None and flat.is_intact() and flat.grads_ready():
            self._fused_step(flat)
            return
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                velocity = self._velocity[i]
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad

    def _fused_step(self, flat) -> None:
        """Whole-model update on the fused buffers.

        Runs the exact elementwise operations of the per-parameter loop
        over the concatenated storage (scalar factors stay weak-typed
        float32 under NEP 50), so results match bit for bit.
        """
        grads = flat.grads
        params = flat.params
        if self._scratch is None:
            self._scratch = np.empty_like(grads)
        scratch = self._scratch
        eff = grads
        if self.weight_decay:
            np.multiply(params, self.weight_decay, out=scratch)
            scratch += grads
            eff = scratch
        if self.momentum:
            velocity = self._flat_velocity
            velocity *= self.momentum
            velocity += eff
            if self.nesterov:
                if eff is scratch:
                    if self._scratch2 is None:
                        self._scratch2 = np.empty_like(grads)
                    out = self._scratch2
                else:
                    out = scratch
                np.multiply(velocity, self.momentum, out=out)
                out += eff
                eff = out
            else:
                eff = velocity
        target = eff if (eff is scratch or eff is self._scratch2) else scratch
        np.multiply(eff, self.lr, out=target)
        params -= target

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        if self._flat_velocity is not None:
            for view, value in zip(self._velocity, state["velocity"]):
                view[...] = 0.0 if value is None else value
        else:
            self._velocity = [None if v is None else v.copy()
                              for v in state["velocity"]]


class Adam:
    """Adam (Kingma & Ba) — used by the Transformer extension (§5).

    The paper's CNN experiments all use SGD; newer NPUs make training
    Transformers on SoC-Clusters plausible, and those need Adam.
    """

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must lie in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step
        bias2 = 1.0 - beta2 ** self._step
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            m, v = self._m[i], self._v[i]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _Scheduler:
    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    def get_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    def __init__(self, optimizer: SGD, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress))
