"""INT8 graph executor: bit-identity and determinism edges.

The compiled INT8 step must be indistinguishable from the eager
``Int8Trainer.train_step`` — not approximately, but bit for bit,
*including* the stochastic-rounding RNG stream (the single
``rng.random(out=)`` draw advances PCG64 exactly like the eager call)
and the EMA observer trajectories (observer scales are program inputs,
re-read every replay).  On top of the steady state, the fallback edges
must degrade to eager without corrupting anything:

- checkpoint/preempt/resume (the ``jobs`` warm-restart path restores
  ``runtime_state`` into a fresh process's trainer, graph executor and
  all),
- ``reform_groups`` fault recovery (surviving warm trainers are reused
  and reloaded; replayed steps must still match eager),
- parameter-storage rebinding (non-intact flat buffer → drop programs),
- quantiser/observer reconfiguration (stale observer closures → drop
  programs).
"""

import numpy as np
import pytest

from repro.cluster import ClusterTopology
from repro.distributed import RunConfig
from repro.nn.models import LeNet5
from repro.quant import Int8Trainer, QuantConfig


def tiny_model(seed=0):
    return LeNet5(num_classes=4, in_channels=1, image_size=12, width=0.3,
                  seed=seed)


def make_trainer(config=None, graph=False, seed=7):
    trainer = Int8Trainer(tiny_model(), lr=0.05,
                          config=config or QuantConfig(),
                          momentum=0.9, seed=seed)
    if graph:
        trainer.enable_graph_executor()
    return trainer


def batches(n, rng_seed=5, batch=8):
    rng = np.random.default_rng(rng_seed)
    return [(rng.standard_normal((batch, 1, 12, 12)).astype(np.float32),
             rng.integers(0, 4, size=batch)) for _ in range(n)]


def assert_trainers_identical(a: Int8Trainer, b: Int8Trainer):
    __tracer__ = "hide"
    sa, sb = a.model.state_dict(), b.model.state_dict()
    assert list(sa) == list(sb)
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), key
    assert a.rng.bit_generator.state == b.rng.bit_generator.state
    assert a._input_observer._ema == b._input_observer._ema
    for oa, ob in zip(a._activation_observers(), b._activation_observers()):
        assert oa._ema == ob._ema


CONFIGS = {
    "int8": QuantConfig(),
    "int8_rint": QuantConfig(stochastic_rounding=False),
    "int4": QuantConfig(bits=4),
    "fp16": QuantConfig(float16=True),
    "weights_only": QuantConfig(quantize_activations=False,
                                quantize_gradients=False),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_replay_bit_identical_to_eager(name):
    config = CONFIGS[name]
    eager, graphed = make_trainer(config), make_trainer(config, graph=True)
    for x, y in batches(6):
        assert eager.train_step(x, y) == graphed.train_step(x, y)
    assert_trainers_identical(eager, graphed)
    stats = graphed.graph_stats()
    assert stats["captures"] == 1
    assert stats["replays"] == 5
    assert stats["fallbacks"] == 0


def test_rng_stream_consumed_identically_midstream():
    """The stochastic-rounding draw inside a replay must leave the
    generator exactly where the eager draw would — checked after every
    single step, not just at the end."""
    eager, graphed = make_trainer(), make_trainer(graph=True)
    for x, y in batches(4):
        eager.train_step(x, y)
        graphed.train_step(x, y)
        assert (eager.rng.bit_generator.state
                == graphed.rng.bit_generator.state)


def test_checkpoint_preempt_resume_is_deterministic():
    """Warm restart: a graphed trainer checkpointed mid-run and resumed
    in a fresh trainer (new arenas, new programs — only
    ``runtime_state`` survives, as in a jobs preemption) must finish
    bit-identically to an uninterrupted eager run."""
    steps = batches(8)
    eager = make_trainer()
    for x, y in steps:
        eager.train_step(x, y)

    first = make_trainer(graph=True)
    for x, y in steps[:4]:
        first.train_step(x, y)
    checkpoint = first.runtime_state()

    resumed = make_trainer(graph=True, seed=999)   # seed must not matter
    resumed.load_runtime_state(checkpoint)
    for x, y in steps[4:]:
        resumed.train_step(x, y)
    assert_trainers_identical(eager, resumed)
    stats = resumed.graph_stats()
    assert stats["replays"] > 0


def test_resume_into_warm_graphed_trainer_keeps_programs_valid():
    """``load_runtime_state`` mutates the RNG and observers *in place*,
    so a warm trainer's captured programs stay bound to live objects —
    no fallback, still bit-identical."""
    steps = batches(8)
    eager = make_trainer()
    for x, y in steps:
        eager.train_step(x, y)

    graphed = make_trainer(graph=True)
    for x, y in steps[:4]:
        graphed.train_step(x, y)
    checkpoint = graphed.runtime_state()
    # ... the job is preempted and later resumed on the same warm
    # trainer (the reform_groups survivor path).
    graphed.load_runtime_state(checkpoint)
    for x, y in steps[4:]:
        graphed.train_step(x, y)
    assert_trainers_identical(eager, graphed)
    stats = graphed.graph_stats()
    assert stats["fallbacks"] == 0
    assert stats["captures"] == 1


def test_reform_groups_recovery_is_deterministic():
    """Fault recovery reuses surviving warm GroupMixedTrainers and
    reloads the rollback state into every member; with ``--graph`` the
    survivors' compiled programs must produce the same post-recovery
    trajectory as eager trainers."""
    from repro.core.mixed_precision import GroupMixedTrainer
    from repro.core.socflow import reform_groups
    from repro.data import make_classification_images
    from repro.quant.mixed import MixedPrecisionController

    task = make_classification_images(
        num_classes=4, train_size=96, test_size=32, channels=1,
        image_size=12, difficulty=0.4, seed=3)

    def build(graph):
        config = RunConfig(
            task=task, model_name="lenet5", width=0.3, batch_size=16,
            lr=0.05, momentum=0.9, max_epochs=1, seed=0, graph=graph,
            topology=ClusterTopology(num_socs=8),
            sim_samples_per_epoch=1000, sim_global_batch=32, num_groups=2)
        controller = MixedPrecisionController(1.0, 0.5)
        groups = [GroupMixedTrainer(config, controller, QuantConfig(),
                                    seed_offset=g) for g in range(2)]
        return config, controller, groups

    steps = [(task.x_train[i * 16:(i + 1) * 16],
              task.y_train[i * 16:(i + 1) * 16]) for i in range(6)]

    results = {}
    for graph in (False, True):
        config, controller, groups = build(graph)
        for x, y in steps[:2]:
            for group in groups:
                group.train_batch(x, y)
        rollback = groups[0].state_dict()
        # One group dies; recovery reforms down to a single warm
        # survivor, then back up to two (rebuilding the dead member).
        groups = reform_groups(config, controller, QuantConfig(),
                               groups[:1], 2, rollback)
        for x, y in steps[2:]:
            for group in groups:
                group.train_batch(x, y)
        results[graph] = groups

    for eager_group, graphed_group in zip(results[False], results[True]):
        sa, sb = eager_group.state_dict(), graphed_group.state_dict()
        for key in sa:
            assert np.array_equal(sa[key], sb[key]), key
        assert (eager_group.int8.rng.bit_generator.state
                == graphed_group.int8.rng.bit_generator.state)
    stats = results[True][0].graph_stats()
    assert stats["int8"]["replays"] > 0


def test_storage_rebinding_falls_back_then_recaptures():
    """Rebinding one parameter's storage (what re-grouping does to dead
    members) breaks the flat buffer; the executor must fall back to
    eager — bit-identically — and never replay a stale program."""
    eager, graphed = make_trainer(), make_trainer(graph=True)
    steps = batches(6)
    for x, y in steps[:3]:
        assert eager.train_step(x, y) == graphed.train_step(x, y)

    for trainer in (eager, graphed):
        param = trainer.model.parameters()[0]
        param.data = param.data.copy()   # storage rebound, values equal
    for x, y in steps[3:]:
        assert eager.train_step(x, y) == graphed.train_step(x, y)
    assert_trainers_identical(eager, graphed)
    stats = graphed.graph_stats()
    assert stats["fallbacks"] >= 1
    assert stats["replays"] >= 2


def test_observer_reconfiguration_invalidates_programs():
    """Re-running ``attach_activation_quant`` swaps in fresh observers;
    captured programs hold the old ones and must be dropped, after
    which capture succeeds again against the new observers."""
    from repro.quant.ste import attach_activation_quant

    eager, graphed = make_trainer(), make_trainer(graph=True)
    steps = batches(6)
    for x, y in steps[:3]:
        assert eager.train_step(x, y) == graphed.train_step(x, y)

    for trainer in (eager, graphed):
        attach_activation_quant(trainer.model, trainer.config)
    for x, y in steps[3:]:
        assert eager.train_step(x, y) == graphed.train_step(x, y)
    assert_trainers_identical(eager, graphed)
    stats = graphed.graph_stats()
    assert stats["fallbacks"] >= 1
    assert stats["captures"] == 2        # recaptured against new observers


def test_group_mixed_trainer_attaches_int8_executor(quick_config):
    """``config.graph`` must reach the INT8 replica, not just FP32."""
    import dataclasses

    from repro.core.mixed_precision import GroupMixedTrainer
    from repro.quant.mixed import MixedPrecisionController

    config = dataclasses.replace(quick_config, graph=True)
    group = GroupMixedTrainer(config, MixedPrecisionController(1.0, 0.5),
                              QuantConfig())
    assert group.fp32._graph_exec is not None
    assert group.int8._graph_exec is not None
    stats = group.graph_stats()
    assert set(stats) == {"fp32", "int8"}

    eager_group = GroupMixedTrainer(quick_config,
                                    MixedPrecisionController(1.0, 0.5),
                                    QuantConfig())
    assert eager_group.graph_stats() is None
