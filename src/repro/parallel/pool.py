"""Process-pool execution of logical-group epochs.

Within one epoch, SoCFlow's logical groups are embarrassingly parallel:
each :class:`~repro.core.mixed_precision.GroupMixedTrainer` steps on
its own data shard and only the epoch-end leader ring couples them.
:class:`LgExecutor` exploits this by running each group's epoch in a
worker process and loading the mutated runtime state back, so the
parallel schedule is *group-major* where the sequential loop is
*step-major* — an equivalent reordering of independent work that keeps
every result bit-identical.

Transport: the large state (the model's fused flat buffer and the
optimiser's flat velocity, see :class:`~repro.nn.flat.FlatParamBuffer`)
moves through POSIX shared memory — one persistent segment per group,
written in place by both sides — while the small state (RNG streams,
EMA observers, learning rates) rides the task pickle.  Models that
cannot flatten fall back to pickling the whole
``GroupMixedTrainer.runtime_state()``.

Workers keep a replica cache keyed by ``seed_offset``: the model is
built once per (worker, group) and every epoch only overwrites its
state, so steady-state per-epoch overhead is the state copy itself.

Worker-side telemetry: each task runs against a private
:class:`~repro.telemetry.MetricsRegistry` and returns its counter
totals; the executor replays them into the main registry.  Counters
recorded inside ``train_batch`` are integer-valued (sample counts,
merge counts), so replaying per-group sums instead of interleaved
per-step increments produces the exact same float totals — and
``MetricsRegistry.collect()`` sorts series by name, so creation order
never leaks into the exported JSONL either.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:                                     # pragma: no cover
    _shared_memory = None

from ..core.mixed_precision import GroupMixedTrainer
from ..quant.mixed import MixedPrecisionController
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..telemetry.metrics import MetricsRegistry

__all__ = ["LgExecutor"]


# ----------------------------------------------------------------------
# Runtime-state packing: (small picklable dict, list of float32 arrays)
# ----------------------------------------------------------------------
def _flat_mode_ok(trainer: GroupMixedTrainer) -> bool:
    """True when every big array of ``trainer`` lives in a fused buffer."""
    flat = trainer.fp32._flat
    if flat is None or not flat.is_intact():
        return False
    if trainer.fp32_opt.momentum and trainer.fp32_opt._flat_velocity is None:
        return False
    if trainer.int8 is not None:
        int8_flat = trainer.int8.model._flat
        if int8_flat is None or not int8_flat.is_intact():
            return False
        opt = trainer.int8.optimizer
        if opt.momentum and opt._flat_velocity is None:
            return False
    return True


def _pack_group(trainer: GroupMixedTrainer, force_pickle: bool = False):
    """Split a group's runtime state into (small dict, flat arrays).

    Flat mode externalises the contiguous buffers (model flats and
    optimiser velocities) so they can travel through shared memory;
    everything RNG/EMA-sized stays in the dict.  ``force_pickle`` makes
    a worker answer in the same mode the main process asked in.
    """
    if force_pickle or not _flat_mode_ok(trainer):
        return {"mode": "pickle", "state": trainer.runtime_state()}, []
    arrays = [trainer.fp32._flat.data]
    small = {
        "mode": "flat",
        "fp32_vel": trainer.fp32_opt._flat_velocity is not None,
        "fp32_lr": trainer.fp32_opt.lr,
        "fp32_rngs": GroupMixedTrainer._module_rng_states(trainer.fp32),
        "int8": None,
    }
    if small["fp32_vel"]:
        arrays.append(trainer.fp32_opt._flat_velocity)
    int8 = trainer.int8
    if int8 is not None:
        small["int8"] = {
            "vel": int8.optimizer._flat_velocity is not None,
            "lr": int8.optimizer.lr,
            "rng": int8.rng.bit_generator.state,
            "input_ema": int8._input_observer._ema,
            "activation_emas": [o._ema for o in int8._activation_observers()],
            "rngs": GroupMixedTrainer._module_rng_states(int8.model),
        }
        arrays.append(int8.model._flat.data)
        if small["int8"]["vel"]:
            arrays.append(int8.optimizer._flat_velocity)
    return small, arrays


def _apply_group(trainer: GroupMixedTrainer, small: dict, arrays) -> None:
    """Inverse of :func:`_pack_group`: copy the state into ``trainer``."""
    if small["mode"] == "pickle":
        trainer.load_runtime_state(small["state"])
        return
    if not _flat_mode_ok(trainer):
        raise RuntimeError("flat-mode state for an unflattened trainer")
    arrays = list(arrays)
    trainer.fp32._flat.data[...] = arrays.pop(0)
    if small["fp32_vel"]:
        trainer.fp32_opt._flat_velocity[...] = arrays.pop(0)
    trainer.fp32_opt.lr = small["fp32_lr"]
    GroupMixedTrainer._load_module_rng_states(trainer.fp32,
                                              small["fp32_rngs"])
    int8_small = small["int8"]
    if trainer.int8 is not None and int8_small is not None:
        int8 = trainer.int8
        int8.model._flat.data[...] = arrays.pop(0)
        if int8_small["vel"]:
            int8.optimizer._flat_velocity[...] = arrays.pop(0)
        int8.optimizer.lr = int8_small["lr"]
        int8.rng.bit_generator.state = int8_small["rng"]
        int8._input_observer._ema = int8_small["input_ema"]
        for observer, ema in zip(int8._activation_observers(),
                                 int8_small["activation_emas"]):
            observer._ema = ema
        GroupMixedTrainer._load_module_rng_states(int8.model,
                                                  int8_small["rngs"])


def _segments(buf, sizes):
    """Consecutive float32 views over a shared-memory buffer."""
    views, offset = [], 0
    for n in sizes:
        views.append(np.ndarray((n,), dtype=np.float32, buffer=buf,
                                offset=offset * 4))
        offset += n
    return views


def _counter_deltas(registry: MetricsRegistry) -> list:
    """Extract (name, labels, total) for every series of a worker-local
    registry.  Only counters may appear: anything order- or
    distribution-sensitive (gauges, histograms) cannot be replayed
    without changing the export, so its appearance is a hard error."""
    deltas = []
    for (name, labels), metric in registry._metrics.items():
        if metric.kind != "counter":
            raise TypeError(
                f"worker recorded non-counter metric {name!r} ({metric.kind});"
                " only counters can merge across processes")
        deltas.append((name, labels, metric.value))
    return deltas


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _init_worker(config, quant, mixed, int8_only, t_cpu, t_npu,
                 metrics_enabled) -> None:
    _WORKER.update(config=config, quant=quant, mixed=mixed,
                   int8_only=int8_only, t_cpu=t_cpu, t_npu=t_npu,
                   metrics=metrics_enabled, replicas={})


def _replica(seed_offset: int) -> GroupMixedTrainer:
    trainer = _WORKER["replicas"].get(seed_offset)
    if trainer is None:
        controller = MixedPrecisionController(_WORKER["t_cpu"],
                                              _WORKER["t_npu"])
        trainer = GroupMixedTrainer(_WORKER["config"], controller,
                                    _WORKER["quant"],
                                    seed_offset=seed_offset,
                                    mixed=_WORKER["mixed"])
        if _WORKER["int8_only"]:
            from ..core.socflow import _int8_only_step
            trainer.train_batch = _int8_only_step(trainer)  # type: ignore
        _WORKER["replicas"][seed_offset] = trainer
    return trainer


def _run_task(task):
    """Run one group's whole epoch inside a worker process."""
    (seed_offset, small, payload, shm_name, sizes, idx, steps,
     group_batch, alpha) = task
    trainer = _replica(seed_offset)
    trainer.controller.alpha = alpha
    registry = None
    if _WORKER["metrics"]:
        registry = MetricsRegistry()
        trainer.telemetry = Telemetry(metrics=registry)
    else:
        trainer.telemetry = NULL_TELEMETRY
    shm = views = None
    try:
        if shm_name is not None:
            # Attaching by name does not register with the resource
            # tracker (only create=True does), so the parent stays the
            # sole owner of the unlink.
            shm = _shared_memory.SharedMemory(name=shm_name)
            views = _segments(shm.buf, sizes)
            _apply_group(trainer, small, views)
        else:
            _apply_group(trainer, small, payload or [])
        data = _WORKER["config"].task
        for step in range(steps):
            sl = idx[step * group_batch:(step + 1) * group_batch]
            trainer.train_batch(data.x_train[sl], data.y_train[sl])
        small_out, arrays_out = _pack_group(
            trainer, force_pickle=small["mode"] == "pickle")
        if shm is not None:
            for view, array in zip(views, arrays_out):
                view[...] = array
            payload_out = None
        else:
            payload_out = [a.copy() for a in arrays_out]
        deltas = _counter_deltas(registry) if registry is not None else []
        return small_out, payload_out, deltas
    finally:
        if shm is not None:
            views = None        # drop buffer exports before close()
            shm.close()


# ----------------------------------------------------------------------
# Main side
# ----------------------------------------------------------------------
class LgExecutor:
    """Persistent worker pool running logical-group epochs in parallel.

    Falls back to reporting ``parallel == False`` (callers then keep
    the sequential loop) when fewer than two workers are requested or
    the platform lacks fork-style multiprocessing.
    """

    def __init__(self, config, quant, mixed: bool, int8_only: bool,
                 t_cpu: float, t_npu: float, telemetry=None,
                 workers: int = 1, use_shm: bool = True):
        self.workers = max(1, int(workers))
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._pool = None
        self._slots: dict[int, object] = {}
        self._use_shm = bool(use_shm) and _shared_memory is not None
        if self.workers > 1:
            shipped = replace(config, telemetry=None)
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:                          # pragma: no cover
                return
            if self._use_shm:
                # Start the resource tracker *before* forking so every
                # worker inherits it: a worker that lazily spawned its
                # own tracker would try to clean up (unlink) segments
                # the parent still owns when the pool shuts down.
                try:
                    from multiprocessing import resource_tracker
                    resource_tracker.ensure_running()
                except Exception:                       # pragma: no cover
                    pass
            self._pool = ctx.Pool(
                self.workers, initializer=_init_worker,
                initargs=(shipped, quant, mixed, int8_only, t_cpu, t_npu,
                          self._telemetry.metrics.enabled))

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    # ------------------------------------------------------------------
    def _slot(self, index: int, nfloats: int):
        slot = self._slots.get(index)
        if slot is not None and slot.size >= nfloats * 4:
            return slot
        if slot is not None:
            slot.close()
            slot.unlink()
        slot = _shared_memory.SharedMemory(create=True,
                                           size=max(4, nfloats * 4))
        self._slots[index] = slot
        return slot

    def run_epoch(self, groups, shards, steps: int, group_batch: int) -> None:
        """Run one epoch of every group concurrently, in place.

        Equivalent to the sequential step-major loop because groups
        share no mutable state within an epoch: the alpha/beta
        controller is read-only between sync points and each group's
        shard indices are fixed up front.
        """
        tasks = []
        for g, (trainer, shard) in enumerate(zip(groups, shards)):
            small, arrays = _pack_group(trainer)
            sizes = [int(a.size) for a in arrays]
            shm_name = payload = None
            if self._use_shm and arrays:
                try:
                    slot = self._slot(g, sum(sizes))
                except OSError:                         # pragma: no cover
                    self._use_shm = False
            if self._use_shm and arrays:
                views = _segments(slot.buf, sizes)
                for view, array in zip(views, arrays):
                    view[...] = array
                views = None
                shm_name = slot.name
            elif arrays:
                payload = [a.copy() for a in arrays]
            tasks.append((g, small, payload, shm_name, sizes,
                          np.ascontiguousarray(shard), steps, group_batch,
                          trainer.controller.alpha))
        results = self._pool.map(_run_task, tasks, chunksize=1)
        metrics = self._telemetry.metrics
        for task, trainer, result in zip(tasks, groups, results):
            small_out, payload_out, deltas = result
            if task[3] is not None and payload_out is None:
                views = _segments(self._slots[task[0]].buf, task[4])
                _apply_group(trainer, small_out, views)
                views = None
            else:
                _apply_group(trainer, small_out, payload_out or [])
            if metrics.enabled:
                for name, labels, value in deltas:
                    metrics.counter(name, **dict(labels)).inc(value)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        for slot in self._slots.values():
            try:
                slot.close()
                slot.unlink()
            except Exception:                           # pragma: no cover
                pass
        self._slots.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
