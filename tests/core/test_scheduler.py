"""Global scheduler: events, rebalancing, checkpoint costs."""

import pytest

from repro.cluster import ClusterTopology, NetworkFabric
from repro.core import GlobalScheduler, PreemptionEvent, UnderclockEvent


def scheduler(rebalance=True, events=()):
    return GlobalScheduler(ClusterTopology(num_socs=20),
                           rebalance=rebalance, events=list(events))


class TestEvents:
    def test_preemptions_filtered_by_epoch(self):
        sched = scheduler(events=[PreemptionEvent(epoch=2),
                                  PreemptionEvent(epoch=5, num_groups=2)])
        assert len(sched.preemptions_at(2)) == 1
        assert sched.preemptions_at(3) == []
        assert sched.preemptions_at(5)[0].num_groups == 2

    def test_underclock_validation(self):
        with pytest.raises(ValueError):
            UnderclockEvent(epoch=0, soc=1, factor=0.0)
        with pytest.raises(ValueError):
            UnderclockEvent(epoch=0, soc=1, factor=1.5)


class TestUnderclocking:
    def test_no_events_no_slowdown(self):
        assert scheduler().group_slowdown([0, 1, 2]) == 1.0

    def test_rebalanced_slowdown_is_harmonic(self):
        sched = scheduler(events=[UnderclockEvent(0, soc=0, factor=0.5)])
        sched.apply_underclocks(0)
        # factors [0.5, 1, 1, 1] -> 4 / 3.5
        assert sched.group_slowdown([0, 1, 2, 3]) == pytest.approx(4 / 3.5)

    def test_straggler_without_rebalancing(self):
        sched = scheduler(rebalance=False,
                          events=[UnderclockEvent(0, soc=0, factor=0.5)])
        sched.apply_underclocks(0)
        assert sched.group_slowdown([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_rebalancing_always_at_least_as_fast(self):
        events = [UnderclockEvent(0, soc=0, factor=0.25)]
        with_rb = scheduler(rebalance=True, events=list(events))
        without = scheduler(rebalance=False, events=list(events))
        with_rb.apply_underclocks(0)
        without.apply_underclocks(0)
        group = [0, 1, 2, 3, 4]
        assert with_rb.group_slowdown(group) <= without.group_slowdown(group)

    def test_event_applies_only_from_its_epoch(self):
        sched = scheduler(events=[UnderclockEvent(3, soc=0, factor=0.5)])
        sched.apply_underclocks(1)
        assert sched.group_slowdown([0, 1]) == 1.0
        sched.apply_underclocks(3)
        assert sched.group_slowdown([0, 1]) > 1.0


class TestCosts:
    def test_checkpoint_time_scales_with_model(self):
        small = GlobalScheduler.checkpoint_seconds(1e6)
        large = GlobalScheduler.checkpoint_seconds(1e8)
        assert large == pytest.approx(100 * small)

    def test_dispatch_covers_all_socs(self):
        sched = scheduler()
        fabric = NetworkFabric(sched.topology)
        t = sched.dispatch_seconds(fabric, model_bytes=1e7,
                                   data_bytes_per_soc=1e7)
        assert t > 0
