"""Physical topology geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterTopology


class TestLayout:
    def test_default_is_paper_server(self):
        topo = ClusterTopology()
        assert topo.num_socs == 60
        assert topo.socs_per_pcb == 5
        assert topo.num_pcbs == 12

    def test_pcb_of(self):
        topo = ClusterTopology(num_socs=12, socs_per_pcb=5)
        assert topo.pcb_of(0) == 0
        assert topo.pcb_of(4) == 0
        assert topo.pcb_of(5) == 1
        assert topo.pcb_of(11) == 2

    def test_partial_last_pcb(self):
        topo = ClusterTopology(num_socs=12, socs_per_pcb=5)
        assert topo.num_pcbs == 3
        assert topo.socs_on_pcb(2) == [10, 11]

    def test_same_pcb(self):
        topo = ClusterTopology(num_socs=10, socs_per_pcb=5)
        assert topo.same_pcb(0, 4)
        assert not topo.same_pcb(4, 5)

    def test_crossings(self):
        topo = ClusterTopology(num_socs=15, socs_per_pcb=5)
        assert topo.crossings([0, 1, 2]) == 0
        assert topo.crossings([4, 5]) == 1
        assert topo.crossings([0, 5, 10]) == 2

    def test_out_of_range_validation(self):
        topo = ClusterTopology(num_socs=10, socs_per_pcb=5)
        with pytest.raises(ValueError):
            topo.pcb_of(10)
        with pytest.raises(ValueError):
            topo.socs_on_pcb(2)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_socs=0)


class TestRestricted:
    def test_restricted_keeps_pcb_structure(self):
        topo = ClusterTopology(num_socs=60).restricted(32)
        assert topo.num_socs == 32
        assert topo.socs_per_pcb == 5
        assert topo.num_pcbs == 7

    def test_restricted_too_large_raises(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_socs=10).restricted(20)

    @given(st.integers(1, 60))
    @settings(max_examples=30, deadline=None)
    def test_every_soc_belongs_to_exactly_one_pcb(self, num_socs):
        topo = ClusterTopology(num_socs=num_socs)
        members = [s for p in range(topo.num_pcbs)
                   for s in topo.socs_on_pcb(p)]
        assert sorted(members) == list(range(num_socs))
