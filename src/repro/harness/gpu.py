"""Datacenter-GPU cost model for the Figure 11 comparison.

Small CIFAR-scale models badly under-utilise a V100/A100 (the paper's
§4.4 point 2): kernel launch overhead and low occupancy cap the
effective throughput far below peak.  The per-model efficiency factors
below encode that; they are calibrated so the SoCFlow-vs-V100 speedup
lands in the paper's 0.80–2.79x band.
"""

from __future__ import annotations

from ..cluster.spec import GPU_REGISTRY, model_profile

__all__ = ["GPU_EFFICIENCY", "gpu_training_time_s", "gpu_energy_kj"]

#: fraction of peak FLOP/s a small model actually sustains in training
GPU_EFFICIENCY: dict[str, float] = {
    "lenet5": 0.003,
    "vgg11": 0.033,
    "resnet18": 0.015,
    "resnet50": 0.060,
    "mobilenet_v1": 0.010,
}

#: fixed per-step overhead (kernel launches, host sync), seconds
_STEP_OVERHEAD_S = 0.004


def gpu_training_time_s(gpu_name: str, model_name: str, epochs: int,
                        samples_per_epoch: int, batch_size: int = 64) -> float:
    """End-to-end GPU training time for the same epoch budget."""
    if epochs <= 0 or samples_per_epoch <= 0 or batch_size <= 0:
        raise ValueError("epochs, samples and batch must be positive")
    gpu = GPU_REGISTRY[gpu_name]
    profile = model_profile(model_name)
    efficiency = GPU_EFFICIENCY[model_name]
    t_sample = profile.flops_per_sample / (gpu.flops * efficiency)
    steps = epochs * (samples_per_epoch / batch_size)
    return epochs * samples_per_epoch * t_sample + steps * _STEP_OVERHEAD_S


def gpu_energy_kj(gpu_name: str, seconds: float) -> float:
    """Energy at the GPU's training draw (board power)."""
    if seconds < 0:
        raise ValueError("negative duration")
    return GPU_REGISTRY[gpu_name].busy_watts * seconds / 1e3
