"""Non-IID data partitioning (Dirichlet label skew).

The paper evaluates its FL baselines in the IID setting (§4.1); the
standard federated-learning stress test skews each client's label
distribution with a Dirichlet prior.  ``alpha -> inf`` recovers IID;
small ``alpha`` gives near-single-class clients.  This powers the
non-IID extension experiments (EXPERIMENTS.md, extensions section).
"""

from __future__ import annotations

import numpy as np

from .loader import ArrayDataset

__all__ = ["dirichlet_partition", "label_distribution", "skewness"]


def dirichlet_partition(x: np.ndarray, y: np.ndarray, num_parts: int,
                        alpha: float = 0.5,
                        seed: int = 0) -> list[ArrayDataset]:
    """Split by per-class Dirichlet proportions (Hsu et al., 2019).

    Every sample is assigned to exactly one part; empty parts are
    backfilled with one sample from the largest part so every client
    can train.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    part_indices: list[list[int]] = [[] for _ in range(num_parts)]
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        proportions = rng.dirichlet([alpha] * num_parts)
        cuts = (np.cumsum(proportions) * len(members)).astype(int)[:-1]
        for part, chunk in enumerate(np.split(members, cuts)):
            part_indices[part].extend(chunk.tolist())

    largest = max(range(num_parts), key=lambda p: len(part_indices[p]))
    for part in range(num_parts):
        if not part_indices[part]:
            part_indices[part].append(part_indices[largest].pop())

    datasets = []
    for indices in part_indices:
        order = np.asarray(sorted(indices))
        datasets.append(ArrayDataset(x[order], y[order]))
    return datasets


def label_distribution(dataset: ArrayDataset,
                       num_classes: int) -> np.ndarray:
    """Normalised label histogram of one shard."""
    counts = np.bincount(dataset.y, minlength=num_classes).astype(float)
    total = counts.sum()
    return counts / total if total else counts


def skewness(parts: list[ArrayDataset], num_classes: int) -> float:
    """Mean total-variation distance of shard label distributions from
    the global one; 0 = perfectly IID, ->1 = single-class clients."""
    all_y = np.concatenate([p.y for p in parts])
    global_dist = np.bincount(all_y, minlength=num_classes) / len(all_y)
    distances = [0.5 * np.abs(label_distribution(p, num_classes)
                              - global_dist).sum() for p in parts]
    return float(np.mean(distances))
