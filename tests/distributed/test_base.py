"""Shared strategy machinery: cost model, evaluation, config."""

import numpy as np
import pytest

from repro.distributed import CostModel, RunConfig, evaluate_accuracy, make_model
from repro.distributed.base import fp32_train_step
from repro.nn.optim import SGD


class TestCostModel:
    def test_steps_per_epoch(self, quick_config):
        cost = CostModel(quick_config)
        assert cost.steps_per_epoch == -(-50_000 // 64)

    def test_compute_seconds_uses_measured_latency(self, quick_config):
        cost = CostModel(quick_config)
        # vgg11 pinned at 140 ms/sample on the SD865 CPU
        assert cost.compute_seconds(10, "cpu") == pytest.approx(1.4)
        assert cost.compute_seconds(10, "npu") == pytest.approx(0.36)

    def test_unmeasured_model_extrapolates_from_flops(self, quick_config):
        from dataclasses import replace
        config = replace(quick_config, model_name="lenet5")
        cost = CostModel(config)
        soc = config.topology.soc
        expected = 1.3e7 / soc.cpu.flops
        assert cost.compute_seconds(1, "cpu") == pytest.approx(expected)

    def test_grad_bytes_fp32(self, quick_config):
        cost = CostModel(quick_config)
        assert cost.grad_bytes == 4 * 9_228_362

    def test_update_seconds_memory_bound(self, quick_config):
        cost = CostModel(quick_config)
        soc = quick_config.topology.soc
        assert cost.update_seconds() == pytest.approx(
            16 * 9_228_362 / soc.mem_bps)

    def test_charge_step_overlap_hides_sync(self, quick_config):
        cost = CostModel(quick_config)
        cost.charge_step(compute_s=10.0, sync_s=1.0, num_socs=4)
        # 0.3 * 10 = 3 > 1 -> sync fully hidden from the wall clock
        assert cost.clock.phase_totals["compute"] == 10.0
        wall_sync = cost.clock.now - 10.0 - cost.update_seconds()
        assert wall_sync == pytest.approx(0.0, abs=1e-9)
        # but still attributed as busy network time
        assert cost.clock.phase_totals["sync"] == pytest.approx(1.0)


class TestEvaluation:
    def test_perfect_and_zero_accuracy(self, tiny_task, quick_config):
        model = make_model(quick_config)
        acc = evaluate_accuracy(model, tiny_task.x_test, tiny_task.y_test)
        assert 0.0 <= acc <= 1.0

    def test_training_step_reduces_loss(self, tiny_task, quick_config):
        model = make_model(quick_config)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        x, y = tiny_task.x_train[:32], tiny_task.y_train[:32]
        first = fp32_train_step(model, opt, x, y)
        for _ in range(10):
            last = fp32_train_step(model, opt, x, y)
        assert last < first


class TestRunConfig:
    def test_model_kwargs_reflect_task(self, quick_config):
        kwargs = quick_config.model_kwargs()
        assert kwargs["num_classes"] == quick_config.task.num_classes
        assert kwargs["in_channels"] == quick_config.task.input_shape[0]

    def test_seed_offset_changes_init(self, quick_config):
        a = make_model(quick_config, seed_offset=0)
        b = make_model(quick_config, seed_offset=1)
        assert not np.allclose(a.parameters()[0].data,
                               b.parameters()[0].data)

    def test_init_state_loaded(self, quick_config):
        from dataclasses import replace
        donor = make_model(quick_config, seed_offset=3)
        config = replace(quick_config, init_state=donor.state_dict())
        clone = make_model(config)
        np.testing.assert_array_equal(clone.parameters()[0].data,
                                      donor.parameters()[0].data)

    def test_freeze_without_support_raises(self, quick_config):
        from dataclasses import replace
        config = replace(quick_config, freeze_backbone=True)
        with pytest.raises(ValueError, match="freez"):
            make_model(config)
