"""Cluster-wide telemetry: tracing, metrics and exporters.

- :mod:`tracer` — typed spans/events on the simulated clock with
  SoC/PCB/LG/CG attribution (:class:`Tracer`), and the zero-overhead
  :class:`NullTracer` default.
- :mod:`metrics` — :class:`MetricsRegistry` of labeled counters,
  gauges and histograms with percentile summaries.
- :mod:`context` — the :class:`Telemetry` bundle threaded through
  ``RunConfig`` into every layer of the simulator.
- :mod:`export` — Chrome-trace JSON (one process per PCB, one thread
  per SoC), JSONL event logs (plain or ``.gz``) with a loader, and the
  per-epoch/metrics tables.
- :mod:`analysis` — the trace diagnosis engine: per-epoch critical
  paths, straggler/bottleneck attribution, run-vs-run diffing and
  health monitors (DESIGN.md "Observability").
"""

from .analysis import (Anomaly, HealthMonitor, TraceDiff, TraceReport,
                       analyze_records, analyze_trace, diff_reports,
                       render_diff, render_report)
from .context import NULL_TELEMETRY, Telemetry
from .export import (load_trace_records, open_text, render_epoch_table,
                     render_metrics_table, to_chrome_trace, to_jsonl,
                     write_chrome_trace, write_jsonl, write_trace)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NullMetricsRegistry)
from .tracer import SPAN_KINDS, NullTracer, TraceRecord, Tracer

__all__ = [
    "Telemetry", "NULL_TELEMETRY",
    "Tracer", "NullTracer", "TraceRecord", "SPAN_KINDS",
    "MetricsRegistry", "NullMetricsRegistry", "Counter", "Gauge",
    "Histogram",
    "to_chrome_trace", "to_jsonl", "write_chrome_trace", "write_jsonl",
    "write_trace", "load_trace_records", "open_text",
    "render_epoch_table", "render_metrics_table",
    "TraceReport", "TraceDiff", "Anomaly", "HealthMonitor",
    "analyze_records", "analyze_trace", "diff_reports",
    "render_report", "render_diff",
]
