"""Metrics registry: labeled counters, gauges and histograms.

The registry is the scalar/series side of the telemetry subsystem:
bytes over each PCB NIC, retry counts, per-phase seconds, alpha/beta
per epoch, straggler slowdowns.  Metrics are identified by a name plus
a sorted label set, so ``registry.counter("nic.bytes", pcb=3)`` is one
series and ``pcb=4`` another.

Everything is deterministic: histograms keep their raw observations in
arrival order and percentiles use nearest-rank interpolation over a
sorted copy, so two identical runs export identical summaries.  The
:class:`NullMetricsRegistry` default makes every instrument a shared
no-op, keeping the untraced hot path free of bookkeeping.
"""

from __future__ import annotations

import json

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetricsRegistry"]


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def summary(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-set value, with the full series kept for per-epoch reports."""

    kind = "gauge"

    def __init__(self):
        self.value: float | None = None
        self.series: list[float] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        self.series.append(self.value)

    def summary(self) -> dict:
        return {"value": self.value, "observations": len(self.series)}


class Histogram:
    """Raw-observation histogram with percentile summaries."""

    kind = "histogram"

    def __init__(self):
        self.observations: list[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(float(value))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.observations:
            raise ValueError("empty histogram has no percentiles")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.observations)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> dict:
        if not self.observations:
            return {"count": 0}
        return {
            "count": len(self.observations),
            "sum": sum(self.observations),
            "min": min(self.observations),
            "mean": sum(self.observations) / len(self.observations),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.observations),
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    kind = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Accepts every call, records nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> list[dict]:
        return []


class MetricsRegistry:
    """Get-or-create registry keyed by (name, sorted labels)."""

    enabled = True

    def __init__(self):
        self._metrics: dict[tuple, object] = {}

    def _get(self, factory, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(f"metric {name!r}{labels} already registered "
                            f"as {type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """All series as dict rows, sorted by (name, labels)."""
        rows = []
        for (name, labels), metric in sorted(self._metrics.items()):
            rows.append({"name": name, "labels": dict(labels),
                         "type": metric.kind, **metric.summary()})
        return rows

    def to_jsonl(self) -> str:
        """One JSON object per series; byte-stable across identical runs."""
        return "\n".join(json.dumps(row, sort_keys=True)
                         for row in self.collect())

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
            fh.write("\n")
