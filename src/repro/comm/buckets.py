"""Bucketed gradient fusion: DynaComm-style comm/compute overlap.

Whole-model synchronisation serialises after compute: backward must
finish before the first byte hits the wire.  Real training stacks
(Horovod, DDP, libai's ``nccl_fusion_threshold_mb`` /
``nccl_fusion_max_ops``) instead fuse gradients into *buckets* as
backward emits them — last layer first — and start each bucket's
collective while earlier layers are still computing.  This module
brings that scheduling dimension to the reproduction:

:class:`GradientBucket` / :class:`BucketPlan`
    A partition of the parameter region of one
    :class:`~repro.nn.flat.FlatLayout` into contiguous segments, built
    in backward-emission order (reverse parameter order).  The plan is
    the single source of truth for *both* sides of the hybrid-fidelity
    contract: the cost model prices one collective per bucket (sized at
    paper scale), and the host data plane aggregates per bucket over
    the same flat segments.

:func:`bucketed_average_states`
    Per-bucket fused averaging over :class:`~repro.nn.flat.FlatState`
    snapshots.  Bit-identical to the whole-model fused path by
    construction: both funnel every element through
    :func:`~repro.comm.primitives._average_arrays_f32`, whose result is
    independent of how the storage is segmented.

The timeline semantics (when a bucket may start its collective) live
with the network model in :func:`repro.cluster.network.overlap_timeline`;
this module only decides *what* the buckets are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nn.flat import FlatLayout, FlatState, common_flat_layout

__all__ = ["GradientBucket", "BucketPlan", "BACKWARD_START_FRACTION",
           "bucketed_average_states"]

#: fraction of a step's compute window spent in forward: gradients only
#: start appearing once backward begins, i.e. after this share of the
#: window (forward ~ 1/3 of fwd+bwd at the usual 1:2 FLOP ratio).
BACKWARD_START_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class GradientBucket:
    """One fused gradient segment, contiguous in the flat param region.

    ``index`` counts in *emission order*: bucket 0 holds the last
    parameters of the layout (the first gradients backward produces).
    ``start``/``stop`` are element offsets into the flat array.
    """

    index: int
    start: int
    stop: int
    num_tensors: int

    def __post_init__(self):
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bucket [{self.start}, {self.stop}) is empty "
                             "or inverted")
        if self.num_tensors < 1:
            raise ValueError("bucket must fuse at least one tensor")

    @property
    def num_elements(self) -> int:
        return self.stop - self.start


class BucketPlan:
    """A partition of a layout's parameter region into gradient buckets.

    Buckets are stored in emission order (descending offsets).  The
    constructor enforces the conservation invariant the whole subsystem
    rests on: the buckets tile ``[0, param_total)`` exactly — no gap,
    no overlap — so the sum of per-bucket bytes always equals the
    whole-model bytes, at any payload scale.
    """

    def __init__(self, layout: FlatLayout, buckets: Sequence[GradientBucket]):
        self.layout = layout
        self.buckets = tuple(buckets)
        self.param_total = layout.param_total
        self.num_ops = layout.num_params
        cursor = self.param_total
        total_tensors = 0
        for bucket in self.buckets:
            if bucket.stop != cursor:
                raise AssertionError(
                    f"bucket {bucket.index} ends at {bucket.stop}, expected "
                    f"{cursor}: buckets must tile the param region")
            cursor = bucket.start
            total_tensors += bucket.num_tensors
        if self.buckets and cursor != 0:
            raise AssertionError(
                f"buckets stop at offset {cursor}, not 0: param region "
                "not fully covered")
        if self.buckets and total_tensors != self.num_ops:
            raise AssertionError(
                f"buckets fuse {total_tensors} tensors, layout has "
                f"{self.num_ops}")

    # ------------------------------------------------------------------
    @classmethod
    def from_layout(cls, layout: FlatLayout,
                    threshold_bytes: float | None = None,
                    max_ops: int | None = None,
                    total_bytes: float | None = None) -> "BucketPlan":
        """Greedy fusion in reverse parameter order (libai's knobs).

        A bucket closes once its accumulated payload reaches
        ``threshold_bytes`` or it holds ``max_ops`` tensors, whichever
        comes first; unset knobs don't constrain.  ``total_bytes``
        rescales the layout to the *simulated* payload so the MB knob
        means paper-scale megabytes even though the real (reduced-width)
        model is far smaller.
        """
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive")
        if max_ops is not None and max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        n = layout.num_params
        if total_bytes is None:
            total_bytes = 4.0 * layout.param_total
        bytes_per_element = (total_bytes / layout.param_total
                             if layout.param_total else 0.0)
        buckets: list[GradientBucket] = []
        stop = layout.offsets[n]
        acc_elements = 0
        acc_ops = 0
        for i in range(n - 1, -1, -1):
            acc_elements += layout.sizes[i]
            acc_ops += 1
            full = ((threshold_bytes is not None
                     and acc_elements * bytes_per_element >= threshold_bytes)
                    or (max_ops is not None and acc_ops >= max_ops))
            if full:
                start = layout.offsets[i]
                buckets.append(GradientBucket(len(buckets), start, stop,
                                              acc_ops))
                stop = start
                acc_elements = 0
                acc_ops = 0
        if acc_ops:
            buckets.append(GradientBucket(len(buckets), 0, stop, acc_ops))
        return cls(layout, buckets)

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def sim_bytes(self, total_bytes: float) -> list[float]:
        """Each bucket's share of a ``total_bytes`` payload.

        Proportional to element count, so the split is exact at any
        payload scale (FP32 paper-scale gradients, INT8, compressed
        wire formats alike).
        """
        # a whole-region bucket returns total_bytes verbatim so the
        # 1-bucket plan prices bit-identically to the unbucketed path
        return [total_bytes if bucket.num_elements == self.param_total
                else total_bytes * bucket.num_elements / self.param_total
                for bucket in self.buckets]

    def sim_tensors(self, total_tensors: float) -> list[float]:
        """Each bucket's share of the profile's collective-startup
        tensor count (fractional: startup cost is linear in it)."""
        return [float(total_tensors) if bucket.num_tensors == self.num_ops
                else total_tensors * bucket.num_tensors / self.num_ops
                for bucket in self.buckets]

    def ready_fractions(self) -> list[float]:
        """Fraction of the compute window at which each bucket's last
        gradient exists.

        Backward starts after :data:`BACKWARD_START_FRACTION` of the
        window and walks the parameters in reverse at a rate
        proportional to their size; bucket *i* is ready once every
        parameter at-or-after its ``start`` offset has been processed.
        The final bucket (the model's first layers) is ready exactly at
        1.0 — a single whole-model bucket therefore overlaps nothing,
        which is what makes one-bucket plans degrade to the sequential
        cost by construction.
        """
        out = []
        for bucket in self.buckets:
            if bucket.start == 0:
                # exact 1.0, immune to float residue in the blend below:
                # the closing bucket must never appear to finish early
                out.append(1.0)
                continue
            done = (self.param_total - bucket.start) / self.param_total
            out.append(BACKWARD_START_FRACTION
                       + (1.0 - BACKWARD_START_FRACTION) * done)
        return out

    def segments(self, include_buffers: bool = True
                 ) -> list[tuple[int, int]]:
        """``(start, stop)`` element ranges in storage order.

        Covers the full layout when ``include_buffers`` (the trailing
        non-parameter region becomes one extra segment) so a per-segment
        pass touches every element exactly once.
        """
        out = sorted((b.start, b.stop) for b in self.buckets)
        if include_buffers and self.layout.total > self.param_total:
            out.append((self.param_total, self.layout.total))
        return out


def bucketed_average_states(states: Sequence[dict],
                            plan: BucketPlan | None,
                            metrics=None) -> "dict":
    """Uniform average, fused per bucket over the shared flat storage.

    Falls back to :func:`~repro.comm.primitives.average_states` when the
    states don't share ``plan``'s layout (or there is no plan).  The
    bucketed result is bit-identical to the whole-model fused path: the
    same elementwise kernel runs over the same storage, merely sliced at
    bucket boundaries, and every element's value is independent of the
    slicing.
    """
    from .primitives import _average_arrays_f32, average_states
    if not states:
        raise ValueError("need at least one state")
    layout = common_flat_layout(states)
    if plan is None or layout is None or plan.layout is not layout:
        return average_states(states, metrics=metrics)
    scales = [np.float32(1.0 / len(states))] * len(states)
    out = np.empty(layout.total, dtype=np.float32)
    flats = [state.flat for state in states]
    for start, stop in plan.segments(include_buffers=True):
        _average_arrays_f32([flat[start:stop] for flat in flats], scales,
                            out=out[start:stop])
    result = FlatState(layout, out)
    if metrics is not None and metrics.enabled:
        metrics.counter("comm.merges").inc()
        metrics.counter("comm.merged_bytes").inc(
            result.flat.nbytes * len(states))
    return result
