"""Metrics registry: instruments, labels, deterministic export."""

import json

import pytest

from repro.telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                             NullMetricsRegistry)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_keeps_series(self):
        g = Gauge()
        g.set(1.0)
        g.set(0.5)
        assert g.value == 0.5
        assert g.series == [1.0, 0.5]
        assert g.summary() == {"value": 0.5, "observations": 2}


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0

    def test_summary_fields(self):
        h = Histogram()
        h.observe(2.0)
        h.observe(4.0)
        summary = h.summary()
        assert summary["count"] == 2
        assert summary["mean"] == 3.0
        assert summary["min"] == 2.0 and summary["max"] == 4.0

    def test_empty_histogram(self):
        assert Histogram().summary() == {"count": 0}
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("nic.bytes", pcb=3)
        b = reg.counter("nic.bytes", pcb=3)
        c = reg.counter("nic.bytes", pcb=4)
        assert a is b and a is not c
        assert len(reg) == 2

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_collect_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(1)
        reg.gauge("a.first", pcb=1).set(0.5)
        rows = reg.collect()
        assert [r["name"] for r in rows] == ["a.first", "z.last"]
        assert rows[0]["labels"] == {"pcb": 1}
        assert rows[0]["type"] == "gauge"
        assert rows[1]["type"] == "counter"

    def test_jsonl_is_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.histogram("epoch.seconds").observe(1.5)
            reg.counter("retries", pcb=0).inc(3)
            return reg
        assert build().to_jsonl() == build().to_jsonl()
        for line in build().to_jsonl().splitlines():
            json.loads(line)

    def test_write_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("retries").inc()
        path = tmp_path / "metrics.jsonl"
        reg.write_jsonl(path)
        assert json.loads(path.read_text())["name"] == "retries"


class TestNullRegistry:
    def test_all_instruments_are_noop(self):
        reg = NullMetricsRegistry()
        assert reg.enabled is False
        reg.counter("a").inc(5)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(2)
        assert reg.collect() == []
