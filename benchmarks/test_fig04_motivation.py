"""Figure 4: the motivation measurements (§2.3).

(a) end-to-end single-SoC training time, CPU-FP32 vs NPU-INT8;
(b) communication latency of Ring-AllReduce / Parameter-Server as the
    SoC count grows;
(c) convergence accuracy of FP32 vs INT8 training at 32 SoCs.
"""

import pytest
from conftest import print_block

from repro.cluster import ClusterTopology, NetworkFabric
from repro.cluster.spec import model_profile
from repro.harness import format_series, format_table

#: Figure-4a convergence budget backing the spec calibration (epochs x
#: CIFAR-10 samples).
EPOCH_BUDGET = 15
SAMPLES = 50_000


def test_fig04a_single_soc_training_time(benchmark):
    def compute():
        rows = []
        for model in ("vgg11", "resnet18"):
            profile = model_profile(model)
            cpu_h = EPOCH_BUDGET * SAMPLES * profile.t_cpu_sample_s / 3600
            npu_h = EPOCH_BUDGET * SAMPLES * profile.t_npu_sample_s / 3600
            rows.append([model, round(cpu_h, 1), round(npu_h, 1)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block("Figure 4a: single-SoC training time (hours)",
                format_table(["model", "CPU-FP32", "NPU-INT8"], rows))

    vgg_cpu, vgg_npu = rows[0][1], rows[0][2]
    r18_cpu, r18_npu = rows[1][1], rows[1][2]
    # paper: 29.1 h / ~7.5 h (VGG-11), 233 h / ~36 h (ResNet-18)
    assert 20 <= vgg_cpu <= 40
    assert 5 <= vgg_npu <= 12
    assert 180 <= r18_cpu <= 280
    assert 25 <= r18_npu <= 50


def test_fig04b_communication_latency(benchmark):
    def compute():
        series = {}
        for model in ("vgg11", "resnet18"):
            payload = model_profile(model).payload_bytes()
            ring, ps = [], []
            socs_axis = [4, 8, 12, 16, 20, 24, 28, 32]
            for n in socs_axis:
                fabric = NetworkFabric(ClusterTopology(num_socs=n))
                members = list(range(n))
                ring.append(1e3 * fabric.ring_allreduce_time(members,
                                                             payload))
                ps.append(1e3 * fabric.parameter_server_time(members,
                                                             payload))
            series[model] = (socs_axis, ring, ps)
        return series

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    for model, (socs, ring, ps) in series.items():
        print_block(
            f"Figure 4b: sync latency (ms), {model}",
            format_table(["socs", "ring_ms", "ps_ms"],
                         [[n, round(r), round(p)]
                          for n, r, p in zip(socs, ring, ps)]))

    socs, ring, ps = series["vgg11"]
    # paper: intra-PCB ring 540 ms, 32-SoC PS 20593 ms for VGG-11
    assert 350 <= ring[0] <= 950
    assert 14_000 <= ps[-1] <= 26_000
    # both grow with the SoC count; PS much steeper
    assert ring[-1] > ring[0] and ps[-1] > ps[0]
    assert ps[-1] / ring[-1] > 5


def test_fig04c_int8_accuracy_degradation(benchmark, suite):
    def compute():
        fp32 = suite.run("vgg11", "socflow", max_epochs=5,
                         precision="fp32", mixed=False)
        int8 = suite.run("vgg11", "socflow", max_epochs=5,
                         precision="int8")
        return fp32, int8

    fp32, int8 = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block("Figure 4c: convergence accuracy (%), 32 SoCs",
                format_table(
                    ["model", "CPU-FP32", "NPU-INT8", "degradation"],
                    [["vgg11", round(100 * fp32.best_accuracy, 1),
                      round(100 * int8.best_accuracy, 1),
                      round(100 * (fp32.best_accuracy
                                   - int8.best_accuracy), 1)]]))
    # INT8 must not beat FP32 by a meaningful margin (paper: it loses
    # 5.9-8.3%; our milder fake-quant shows a smaller but >= 0-ish gap)
    assert int8.best_accuracy <= fp32.best_accuracy + 0.05
