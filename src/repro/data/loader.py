"""Batching, shuffling and cross-worker sharding utilities.

SoCFlow is data-parallel: the global scheduler dispatches a partial
dataset to each SoC (§3, "each SoC loads only a partial dataset").
:func:`shard` and :func:`iid_partition` implement the IID splits the
paper's experiments use, and cross-group shuffling (§3.1) is one call
to :meth:`DataLoader.reshuffle`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "shard", "iid_partition"]


class ArrayDataset:
    """A (features, labels) pair with length checking."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} features vs "
                             f"{len(y)} labels")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        return self.x[index], self.y[index]


class DataLoader:
    """Iterate mini-batches with optional per-epoch shuffling."""

    def __init__(self, dataset: ArrayDataset, batch_size: int,
                 shuffle: bool = True, drop_last: bool = False,
                 seed: int = 0):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]

    def reshuffle(self, seed: int) -> None:
        """Re-seed the shuffle order (used for cross-group reshuffling)."""
        self._rng = np.random.default_rng(seed)


def shard(x: np.ndarray, y: np.ndarray, num_shards: int,
          shard_index: int) -> ArrayDataset:
    """Strided shard ``shard_index`` of ``num_shards`` (IID by position)."""
    if not 0 <= shard_index < num_shards:
        raise ValueError(f"shard_index {shard_index} out of range "
                         f"[0, {num_shards})")
    return ArrayDataset(x[shard_index::num_shards], y[shard_index::num_shards])


def iid_partition(x: np.ndarray, y: np.ndarray, num_parts: int,
                  seed: int = 0) -> list[ArrayDataset]:
    """Random equal-size IID partition into ``num_parts`` datasets."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    parts = np.array_split(order, num_parts)
    return [ArrayDataset(x[idx], y[idx]) for idx in parts]
