"""Initializer statistics and validation."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 128), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 128)
        assert np.abs(w).max() <= bound + 1e-6

    def test_normal_std(self):
        rng = np.random.default_rng(1)
        w = init.kaiming_normal((256, 512), rng)
        assert w.std() == pytest.approx(math.sqrt(2.0 / 512), rel=0.05)

    def test_conv_fan_in(self):
        rng = np.random.default_rng(2)
        w = init.kaiming_normal((32, 16, 3, 3), rng)
        assert w.std() == pytest.approx(math.sqrt(2.0 / (16 * 9)), rel=0.05)


class TestXavier:
    def test_uniform_bound(self):
        rng = np.random.default_rng(3)
        w = init.xavier_uniform((100, 200), rng)
        bound = math.sqrt(6.0 / 300)
        assert np.abs(w).max() <= bound + 1e-6
        assert w.mean() == pytest.approx(0.0, abs=0.01)


class TestMisc:
    def test_zeros_ones_dtype(self):
        assert init.zeros((3,)).dtype == np.float32
        assert init.ones((3,)).sum() == 3.0

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform((3,), np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        a = init.kaiming_uniform((8, 8), np.random.default_rng(7))
        b = init.kaiming_uniform((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
