"""Runtime processor profiling (§3.2's beta measurement, done for real).

The paper profiles the CPU-to-NPU performance gap "before the training
task begins" and the FP32/INT8 logit agreement "prior to each training
epoch".  :class:`ProcessorProfiler` times actual training steps of both
paths on this machine and derives the same quantities, so the
mixed-precision controller can run from measured numbers instead of
spec-sheet constants — and so the simulated SoC can be given any real
measured ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..distributed.base import RunConfig, make_model
from ..nn.optim import SGD
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..quant.int8 import QuantConfig
from ..quant.trainer import Int8Trainer

__all__ = ["ProfileResult", "ProcessorProfiler"]


@dataclass(frozen=True)
class ProfileResult:
    """Measured per-sample training latencies and the derived beta."""

    t_cpu_sample_s: float
    t_npu_sample_s: float

    @property
    def beta(self) -> float:
        """NPU share of compute power (Eq. 6 semantics)."""
        return self.t_cpu_sample_s / (self.t_cpu_sample_s
                                      + self.t_npu_sample_s)

    @property
    def npu_speedup(self) -> float:
        return self.t_cpu_sample_s / self.t_npu_sample_s


class ProcessorProfiler:
    """Times real FP32 and fake-quant INT8 steps on the host machine.

    On the real SoC-Cluster the two paths run on different silicon; on
    this host both run on the CPU, so the measured INT8 path is *slower*
    (extra quantisation work), and ``npu_speedup_assumption`` rescales
    it to the configured NPU's relative throughput.  With the default
    ``None`` the raw measured ratio is reported — useful for regression
    tests of the profiling machinery itself.
    """

    def __init__(self, config: RunConfig, batch_size: int = 16,
                 warmup_steps: int = 1, timed_steps: int = 3,
                 npu_speedup_assumption: float | None = None):
        if timed_steps < 1:
            raise ValueError("timed_steps must be >= 1")
        self.config = config
        self.batch_size = batch_size
        self.warmup_steps = warmup_steps
        self.timed_steps = timed_steps
        self.npu_speedup_assumption = npu_speedup_assumption

    # ------------------------------------------------------------------
    def _batch(self) -> tuple[np.ndarray, np.ndarray]:
        task = self.config.task
        return (task.x_train[:self.batch_size],
                task.y_train[:self.batch_size])

    def _time_fp32(self) -> float:
        model = make_model(self.config)
        optimizer = SGD(model.parameters(), lr=self.config.lr)
        x, y = self._batch()

        def step() -> None:
            model.train()
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()

        return self._time_steps(step)

    def _time_int8(self) -> float:
        trainer = Int8Trainer(make_model(self.config), lr=self.config.lr,
                              config=QuantConfig(), seed=0)
        x, y = self._batch()
        return self._time_steps(lambda: trainer.train_step(x, y))

    def _time_steps(self, step) -> float:
        for _ in range(self.warmup_steps):
            step()
        start = time.perf_counter()
        for _ in range(self.timed_steps):
            step()
        elapsed = time.perf_counter() - start
        return elapsed / (self.timed_steps * self.batch_size)

    # ------------------------------------------------------------------
    def profile(self) -> ProfileResult:
        t_cpu = self._time_fp32()
        t_npu = self._time_int8()
        if self.npu_speedup_assumption is not None:
            t_npu = t_cpu / self.npu_speedup_assumption
        return ProfileResult(t_cpu_sample_s=t_cpu, t_npu_sample_s=t_npu)
