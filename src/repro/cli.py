"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``run``       train one workload with one method and print the summary
``compare``   run several methods on one workload, print a table
``jobs``      schedule a multi-tenant job file over the tidal trace
``list``      show available workloads, methods, presets and models
``trace``     print the tidal utilisation trace and idle windows
``analyze``   diagnose exported traces: ``analyze report <trace.jsonl>``
              prints the critical-path/straggler/anomaly report,
              ``analyze diff <a.jsonl> <b.jsonl>`` compares two runs
              phase-by-phase (``--format table|json|markdown``)

``run``/``compare`` accept ``--faults SPEC`` to inject unplanned
faults: semicolon-separated clauses like
``crash:epoch=1,soc=3``, ``flap:epoch=2,pcb=0,mult=0.2,until=4``,
``straggler:epoch=1,soc=7,factor=0.5``, ``storm:epoch=3,groups=2`` or
``random:seed=7,epochs=8,crashes=4,flaps=1``.  ``--fault-mode``
selects how *baselines* react (``fail-stop`` aborts, ``continue``
keeps the survivors); SoCFlow always recovers.

Telemetry: ``--trace PATH`` records every simulated span (compute,
allreduce, leader sync, NIC waits, recovery, ...) and writes a Chrome
``chrome://tracing``/Perfetto trace (or a JSONL event log with
``--trace-format jsonl``); ``--metrics PATH`` writes the metrics
registry as JSONL.  Either flag also prints the per-epoch breakdown
table, and traced runs print the live bottleneck summary at exit.
Paths ending in ``.gz`` are gzip-compressed transparently.
``compare`` writes one file per method (``run.ring.json``).

Examples
--------
::

    python -m repro.cli list
    python -m repro.cli run --workload vgg11 --method socflow --socs 32
    python -m repro.cli run --workload vgg11 --faults "crash:epoch=1,soc=3"
    python -m repro.cli run --workload vgg11 --trace run.json \
        --metrics run-metrics.jsonl
    python -m repro.cli compare --workload resnet18 --methods ring,socflow
    python -m repro.cli jobs --spec examples/jobs.yaml --report report.json
    python -m repro.cli trace --threshold 0.25
    python -m repro.cli analyze report run.jsonl.gz --format markdown
    python -m repro.cli analyze diff eager.jsonl graph.jsonl
"""

from __future__ import annotations

import argparse
import sys

from .cluster import (ClusterTopology, FaultSpecError, TidalTrace,
                      parse_fault_spec)
from .core import SoCFlow, SoCFlowOptions
from .distributed import STRATEGY_REGISTRY, build_strategy
from .harness import SCALE_PRESETS, WORKLOADS, format_table, make_run_config
from .nn.models import MODEL_REGISTRY
from .telemetry import Telemetry, render_epoch_table, write_trace

__all__ = ["main", "build_parser"]

_ALL_METHODS = sorted(STRATEGY_REGISTRY) + ["socflow"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SoCFlow reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="train one workload with one method")
    _add_run_args(run)
    run.add_argument("--method", default="socflow", choices=_ALL_METHODS)

    compare = sub.add_parser("compare",
                             help="run several methods on one workload")
    _add_run_args(compare)
    compare.add_argument("--methods", default="ring,fedavg,socflow",
                         help="comma-separated method names")

    jobs = sub.add_parser(
        "jobs", help="schedule a multi-tenant job file over the tidal trace")
    jobs.add_argument("--spec", required=True, metavar="PATH",
                      help="YAML/JSON job file ({cluster: ..., jobs: [...]})")
    jobs.add_argument("--socs", type=int, default=None,
                      help="cluster size (overrides the file's cluster "
                           "section; default 32)")
    jobs.add_argument("--seed", type=int, default=None,
                      help="session-trace seed (overrides the file)")
    jobs.add_argument("--horizon", type=float, default=None,
                      help="scheduling horizon in hours (default 24)")
    jobs.add_argument("--start-hour", type=float, default=None,
                      help="simulation start on the tidal day (default 0)")
    jobs.add_argument("--quantum", type=float, default=None,
                      help="minimum scheduling-round length, hours "
                           "(default 0.25)")
    jobs.add_argument("--sessions-per-hour", type=float, default=None,
                      help="peak user-session arrival rate (default 60)")
    jobs.add_argument("--static-window", default=None, metavar="START:HOURS",
                      help="disable elasticity: jobs run only inside the "
                           "fixed window, e.g. '22:8'")
    jobs.add_argument("--workers", type=_positive_int, default=1,
                      help="host processes for logical-group real math")
    jobs.add_argument("--faults", default=None, metavar="SPEC",
                      help="fault-injection spec (epochs = rounds)")
    jobs.add_argument("--serve", action="store_true",
                      help="co-schedule with the request-level serving "
                           "plane: inference replicas bid for SoCs under "
                           "an SLO and preempt training on pressure")
    jobs.add_argument("--serve-model", default=None, metavar="MODEL",
                      help="model the replicas serve (default resnet18)")
    jobs.add_argument("--peak-rps", type=float, default=None,
                      help="peak aggregate request rate (default 60)")
    jobs.add_argument("--slo-ms", type=float, default=None,
                      help="p99 latency SLO per check window "
                           "(default 600 ms)")
    jobs.add_argument("--flash-crowd", action="append", default=None,
                      metavar="START:DUR:MULT",
                      help="inject a flash crowd (hours, hours, rate "
                           "multiplier); repeatable")
    jobs.add_argument("--min-replicas", type=int, default=None,
                      help="serving floor (default 1)")
    jobs.add_argument("--max-replicas", type=int, default=None,
                      help="serving ceiling (default: the cluster)")
    jobs.add_argument("--report", default=None, metavar="PATH",
                      help="write the schedule report as JSON")
    _add_fusion_args(jobs)
    _add_telemetry_args(jobs)

    sub.add_parser("list", help="show workloads, methods, presets, models")

    trace = sub.add_parser("trace", help="print the tidal trace")
    trace.add_argument("--threshold", type=float, default=0.25)
    trace.add_argument("--seed", type=int, default=0)

    analyze = sub.add_parser(
        "analyze",
        help="diagnose exported JSONL traces (critical path, stragglers, "
             "run-vs-run diffs)")
    analyze_sub = analyze.add_subparsers(dest="analyze_command",
                                         required=True)
    report = analyze_sub.add_parser(
        "report", help="bottleneck report for one trace")
    report.add_argument("trace_file", metavar="TRACE.jsonl",
                        help="JSONL trace exported with --trace-format "
                             "jsonl (.gz accepted)")
    report.add_argument("--top", type=_positive_int, default=8,
                        help="critical-path segments to show (default 8)")
    _add_analyze_args(report)
    diff = analyze_sub.add_parser(
        "diff", help="compare two traces (A = baseline, B = new)")
    diff.add_argument("trace_a", metavar="A.jsonl")
    diff.add_argument("trace_b", metavar="B.jsonl")
    diff.add_argument("--threshold", type=float, default=0.02,
                      help="relative significance floor (default 0.02)")
    _add_analyze_args(diff)
    return parser


def _add_analyze_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", default="table",
                        choices=("table", "json", "markdown"),
                        help="output format (default: table)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the rendered report to PATH instead "
                             "of stdout")


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="vgg11",
                        choices=sorted(WORKLOADS))
    parser.add_argument("--preset", default="quick",
                        choices=sorted(SCALE_PRESETS))
    parser.add_argument("--socs", type=int, default=32)
    parser.add_argument("--groups", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="host processes training logical groups in "
                             "parallel (SoCFlow real math); results are "
                             "bit-identical for any value (default: 1)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection spec, e.g. "
                             "'crash:epoch=1,soc=3;flap:epoch=2,pcb=0,"
                             "mult=0.2,until=4'")
    parser.add_argument("--fault-mode", default="fail-stop",
                        choices=("fail-stop", "continue"),
                        help="baseline reaction to dead SoCs "
                             "(SoCFlow always recovers)")
    _add_fusion_args(parser)
    _add_telemetry_args(parser)


def _add_fusion_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fusion-threshold-mb", type=float, default=None,
                        metavar="MB",
                        help="bucketed gradient fusion: close a bucket at "
                             "this many MiB of simulated-scale gradients "
                             "and overlap its collective with backward "
                             "(default: whole-model sync)")
    parser.add_argument("--fusion-max-ops", type=_positive_int, default=None,
                        metavar="N",
                        help="bucketed gradient fusion: at most N tensors "
                             "per bucket (combines with the MiB threshold; "
                             "either knob alone enables fusion)")
    parser.add_argument("--graph", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="compile the training step: trace once, replay "
                             "many with a preallocated tensor arena "
                             "(bit-identical to eager; default: off)")


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a trace of the simulated run "
                             "(open chrome format in Perfetto)")
    parser.add_argument("--trace-format", default="chrome",
                        choices=("chrome", "jsonl"),
                        help="trace file format (default: chrome)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write the metrics registry as JSONL")


def _parse_faults(args):
    """Parse ``--faults``; raises FaultSpecError on malformed specs."""
    if args.faults is None:
        return None
    return parse_fault_spec(args.faults,
                            ClusterTopology(num_socs=args.socs))


def _telemetry_for(args) -> Telemetry | None:
    if args.trace is None and args.metrics is None:
        return None
    return Telemetry.active()


def _train(args, method: str, fault_schedule=None, telemetry=None):
    groups = args.groups or max(2, args.socs // 4)
    config = make_run_config(args.workload, args.preset,
                             num_socs=args.socs, num_groups=groups,
                             max_epochs=args.epochs, seed=args.seed,
                             fault_schedule=fault_schedule,
                             fault_mode=getattr(args, "fault_mode",
                                                "fail-stop"),
                             telemetry=telemetry,
                             workers=getattr(args, "workers", 1),
                             fusion_threshold_mb=getattr(
                                 args, "fusion_threshold_mb", None),
                             fusion_max_ops=getattr(
                                 args, "fusion_max_ops", None),
                             graph=bool(getattr(args, "graph", None)))
    if method == "socflow":
        return SoCFlow(SoCFlowOptions()).train(config)
    return build_strategy(method).train(config)


def _result_row(method: str, result) -> list:
    shares = result.phase_shares()
    return [method, f"{result.best_accuracy:.1%}",
            round(result.sim_time_hours, 4),
            round(result.energy.total_kj, 1),
            f"{shares.get('sync', 0.0):.0%}"]


_HEADERS = ["method", "best_acc", "sim_hours", "energy_kJ", "sync_share"]


def _fault_summary(result) -> str:
    if result.extra.get("aborted"):
        return (f"faults: run ABORTED at epoch "
                f"{result.extra['abort_epoch']} "
                f"(dead SoCs: {result.extra['dead_socs']})")
    recoveries = result.extra.get("recoveries", [])
    if "all_dead_epoch" in result.extra:
        parts = [f"faults: every SoC dead at epoch "
                 f"{result.extra['all_dead_epoch']}; stopped with "
                 f"{len(recoveries)} recovery step(s)"]
    else:
        parts = [f"faults: completed with {len(recoveries)} "
                 f"recovery step(s)"]
    for r in recoveries:
        parts.append(f"  epoch {r['epoch']}: dead={r['dead_socs']} "
                     f"-> {r['num_groups']} groups "
                     f"(rolled back to epoch {r['rolled_back_to']})")
    return "\n".join(parts)


def _network_summary(result) -> str:
    """One-line NIC health report for the run summary."""
    degraded = result.extra.get("degraded_pcbs") or {}
    if degraded:
        detail = ", ".join(f"{pcb}@{mult:.2f}"
                           for pcb, mult in sorted(degraded.items()))
    else:
        detail = "none"
    retries = result.extra.get("network_retries", 0)
    return f"network: retries={retries}, degraded PCBs: {detail}"


def _method_path(path: str, method: str) -> str:
    """Insert the method name before the extension: run.json -> run.ring.json."""
    base, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.{method}"
    return f"{base}.{method}.{ext}"


def _emit_telemetry(args, telemetry, out, method: str | None = None) -> None:
    """Write trace/metrics files, print the per-epoch table and the
    live bottleneck summary.

    Analysis runs before the metrics file is written so any ``health.*``
    anomaly series it emits land in the export.
    """
    if telemetry is None:
        return
    if telemetry.epoch_rows:
        title = f"per-epoch breakdown ({method})" if method \
            else "per-epoch breakdown"
        print(f"[{title}]", file=out)
        print(render_epoch_table(telemetry.epoch_rows), file=out)
    if telemetry.tracer.enabled and len(telemetry.tracer.records):
        from .telemetry import analyze_records
        from .telemetry.analysis import render_live_summary
        report = analyze_records(telemetry.tracer.records,
                                 metrics=telemetry.metrics)
        print(render_live_summary(report), file=out)
    if args.trace is not None:
        path = (args.trace if method is None
                else _method_path(args.trace, method))
        write_trace(telemetry.tracer, path, fmt=args.trace_format)
        print(f"trace: {len(telemetry.tracer.records)} records -> {path} "
              f"({args.trace_format})", file=out)
    if args.metrics is not None:
        path = (args.metrics if method is None
                else _method_path(args.metrics, method))
        telemetry.metrics.write_jsonl(path)
        print(f"metrics: {len(telemetry.metrics)} series -> {path}",
              file=out)


def cmd_run(args, out) -> int:
    try:
        fault_schedule = _parse_faults(args)
    except FaultSpecError as err:
        print(f"bad --faults spec: {err}", file=sys.stderr)
        return 2
    telemetry = _telemetry_for(args)
    result = _train(args, args.method, fault_schedule, telemetry)
    print(format_table(_HEADERS, [_result_row(args.method, result)]),
          file=out)
    print("accuracy per epoch: "
          + " ".join(f"{a:.2f}" for a in result.accuracy_history), file=out)
    print(_network_summary(result), file=out)
    if fault_schedule is not None:
        print(_fault_summary(result), file=out)
    _emit_telemetry(args, telemetry, out)
    return 0


def cmd_compare(args, out) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in _ALL_METHODS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        fault_schedule = _parse_faults(args)
    except FaultSpecError as err:
        print(f"bad --faults spec: {err}", file=sys.stderr)
        return 2
    rows = []
    for method in methods:
        telemetry = _telemetry_for(args)
        rows.append(_result_row(method,
                                _train(args, method, fault_schedule,
                                       telemetry)))
        _emit_telemetry(args, telemetry, out, method=method)
    print(format_table(_HEADERS, rows), file=out)
    return 0


def _parse_static_window(spec: str) -> tuple[float, float]:
    """``'22:8'`` -> (start hour 22.0, duration 8.0 h)."""
    start_s, sep, hours_s = spec.partition(":")
    try:
        start, hours = float(start_s), float(hours_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --static-window {spec!r}; expected START:HOURS") from None
    if not sep or hours <= 0:
        raise argparse.ArgumentTypeError(
            f"bad --static-window {spec!r}; expected START:HOURS")
    return start, hours


def _job_row(record) -> list:
    return [record.job.id, record.status, record.job.priority,
            f"{record.epochs_done}/{record.job.epochs}",
            f"{record.final_accuracy:.1%}",
            round(record.soc_hours, 1), record.resizes, record.preemptions]


_JOB_HEADERS = ["job", "status", "prio", "epochs", "accuracy", "soc_h",
                "resizes", "preempts"]


def cmd_jobs(args, out) -> int:
    from .cluster.workload import SessionSimulator
    from .jobs import ElasticScheduler, JobAdmissionError, JobSpecError, \
        load_job_file
    try:
        jobs, cluster = load_job_file(args.spec)
    except (JobSpecError, OSError) as err:
        print(f"bad job file: {err}", file=sys.stderr)
        return 2

    def setting(cli_value, key, default):
        if cli_value is not None:
            return cli_value
        return cluster.get(key, default)

    socs = int(setting(args.socs, "socs", 32))
    seed = int(setting(args.seed, "seed", 0))
    peak = float(setting(args.sessions_per_hour,
                         "peak_sessions_per_hour", 60.0))
    horizon = float(setting(args.horizon, "horizon_hours", 24.0))
    start_hour = float(setting(args.start_hour, "start_hour", 0.0))
    quantum = float(setting(args.quantum, "quantum_hours", 0.25))
    topology = ClusterTopology(num_socs=socs)
    try:
        fault_schedule = (None if args.faults is None
                          else parse_fault_spec(args.faults, topology))
    except FaultSpecError as err:
        print(f"bad --faults spec: {err}", file=sys.stderr)
        return 2
    window = None
    if args.static_window is not None:
        try:
            window = _parse_static_window(args.static_window)
        except argparse.ArgumentTypeError as err:
            print(str(err), file=sys.stderr)
            return 2
    telemetry = _telemetry_for(args)
    fusion_threshold = setting(args.fusion_threshold_mb,
                               "fusion_threshold_mb", None)
    fusion_max_ops = setting(args.fusion_max_ops, "fusion_max_ops", None)
    graph = setting(args.graph, "graph", False)
    common = dict(
        quantum_hours=quantum, horizon_hours=horizon,
        start_hour=start_hour, elastic=window is None, window=window,
        fault_schedule=fault_schedule, telemetry=telemetry,
        workers=args.workers,
        fusion_threshold_mb=(None if fusion_threshold is None
                             else float(fusion_threshold)),
        fusion_max_ops=(None if fusion_max_ops is None
                        else int(fusion_max_ops)),
        graph=bool(graph))
    if args.serve:
        from .serving import (ArrivalProcess, FlashCrowd, Region,
                              ServiceModel, ServingCoScheduler,
                              ServingPlane)
        if telemetry is not None and telemetry.metrics.enabled \
                and telemetry.metrics.histogram_reservoir is None:
            # request-resolution latencies: bound the histograms before
            # any instrument exists so a day of traffic stays O(4k)
            telemetry.metrics.histogram_reservoir = 4096
        try:
            crowds = [FlashCrowd.parse(spec)
                      for spec in (args.flash_crowd or
                                   cluster.get("flash_crowds", []))]
        except ValueError as err:
            print(f"bad --flash-crowd spec: {err}", file=sys.stderr)
            return 2
        serve_model = str(setting(args.serve_model, "serve_model",
                                  "resnet18"))
        arrivals = ArrivalProcess(
            [Region("global",
                    float(setting(args.peak_rps, "peak_rps", 60.0)))],
            start_hour=start_hour, horizon_hours=horizon,
            flash_crowds=crowds, seed=seed)
        try:
            service = ServiceModel.for_model(serve_model,
                                             soc=topology.soc, max_batch=4)
        except (KeyError, ValueError):
            print(f"unknown --serve-model {serve_model!r}",
                  file=sys.stderr)
            return 2
        max_replicas = setting(args.max_replicas, "max_replicas", None)
        plane = ServingPlane(
            arrivals, service,
            slo_ms=float(setting(args.slo_ms, "slo_ms", 600.0)),
            min_replicas=int(setting(args.min_replicas,
                                     "min_replicas", 1)),
            max_replicas=(None if max_replicas is None
                          else int(max_replicas)),
            check_interval_hours=min(quantum, 0.25),
            telemetry=telemetry)
        scheduler = ServingCoScheduler(topology, plane, **common)
    else:
        simulator = SessionSimulator(topology, peak_sessions_per_hour=peak,
                                     seed=seed)
        sessions = simulator.simulate_day()
        if telemetry is not None and telemetry.metrics.enabled:
            # overload on the session side used to be invisible
            telemetry.metrics.counter("serving.dropped_sessions").inc(
                simulator.dropped_sessions)
        scheduler = ElasticScheduler(topology, sessions, **common)
    admitted = 0
    for job in jobs:
        try:
            scheduler.submit(job)
            admitted += 1
        except JobAdmissionError as err:
            print(f"rejected: {err}", file=out)
    if not admitted:
        print("no jobs admitted", file=sys.stderr)
        return 1
    report = scheduler.run()
    rows = [_job_row(report.jobs[job_id]) for job_id in sorted(report.jobs)]
    print(format_table(_JOB_HEADERS, rows), file=out)
    mode = "elastic" if window is None else \
        f"static window {window[0]:g}h+{window[1]:g}h"
    print(f"{mode}: {len(report.completed)}/{len(report.jobs)} jobs "
          f"completed over {report.horizon_hours:g} h in {report.rounds} "
          f"rounds", file=out)
    print(f"idle-capacity utilisation: {report.utilisation:.1%} "
          f"({report.used_soc_hours:.1f} of "
          f"{report.available_soc_hours:.1f} SoC-hours)", file=out)
    serving = report.extra.get("serving")
    if serving is not None:
        p99 = serving.get("max_p99_ms")
        print(f"serving: {serving['served']}/{serving['requests']} requests "
              f"served ({serving['dropped']} shed), worst window p99 "
              f"{'-' if p99 is None else f'{p99:.0f}ms'} vs SLO "
              f"{serving['slo_ms']:.0f}ms, "
              f"{serving['violation_windows']} violation window(s), "
              f"replicas up to {serving['max_replicas_seen']} "
              f"({serving['scale_ups']} scale-ups, "
              f"{serving['preempted_socs']} preempted from training)",
              file=out)
    if args.report is not None:
        import json
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.report}", file=out)
    _emit_telemetry(args, telemetry, out)
    return 0


def cmd_list(args, out) -> int:
    del args
    print("workloads:", ", ".join(sorted(WORKLOADS)), file=out)
    print("methods:  ", ", ".join(_ALL_METHODS), file=out)
    print("presets:  ", ", ".join(sorted(SCALE_PRESETS)), file=out)
    print("models:   ", ", ".join(sorted(MODEL_REGISTRY)), file=out)
    return 0


def cmd_trace(args, out) -> int:
    trace = TidalTrace(seed=args.seed)
    rows = [[hour, f"{trace.busy_ratio(hour):.0%}"]
            for hour in range(0, 24, 2)]
    print(format_table(["hour", "busy"], rows), file=out)
    window = trace.longest_idle_window(args.threshold)
    print(f"longest idle window: {window.duration_hours:.1f} h "
          f"(threshold {args.threshold:.0%})", file=out)
    return 0


def cmd_analyze(args, out) -> int:
    from .telemetry import analyze_trace, diff_reports
    from .telemetry.analysis import render_diff, render_report
    try:
        if args.analyze_command == "report":
            rendered = render_report(analyze_trace(args.trace_file),
                                     fmt=args.format, top=args.top)
        else:
            diff = diff_reports(analyze_trace(args.trace_a),
                                analyze_trace(args.trace_b),
                                threshold=args.threshold)
            rendered = render_diff(diff, fmt=args.format)
    except (OSError, ValueError) as err:
        print(f"analyze: {err}", file=sys.stderr)
        return 2
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(rendered)
        print(f"analysis -> {args.out}", file=out)
    else:
        print(rendered, end="", file=out)
    return 0


_COMMANDS = {"run": cmd_run, "compare": cmd_compare, "jobs": cmd_jobs,
             "list": cmd_list, "trace": cmd_trace, "analyze": cmd_analyze}


def main(argv: list[str] | None = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
