"""Figure 13: ablation of SoCFlow's techniques, one at a time.

RING -> +Group -> +Mapping -> +Plan -> +Mixed.  Each step must not slow
training down, and the cumulative speedup must be substantial (the
paper's Figure 13 shows ~4h -> ~0.5h for VGG-11).
"""

from conftest import print_block

from repro.core import SoCFlow, SoCFlowOptions
from repro.harness import format_table

STEPS = [
    ("RING", None),
    ("+Group", SoCFlowOptions(mapping="naive", planning=False,
                              precision="fp32", mixed=False)),
    ("+Mapping", SoCFlowOptions(mapping="integrity", planning=False,
                                precision="fp32", mixed=False)),
    ("+Plan", SoCFlowOptions(mapping="integrity", planning=True,
                             precision="fp32", mixed=False)),
    ("+Mixed", SoCFlowOptions(mapping="integrity", planning=True,
                              precision="mixed", mixed=True)),
]


def test_fig13_technique_ablation(benchmark, suite):
    def compute():
        table = {}
        for model in ("vgg11", "resnet18"):
            config = suite.config(model, num_socs=32, max_epochs=3)
            times = {}
            for label, options in STEPS:
                if options is None:
                    times[label] = suite.run(model, "ring").sim_time_hours
                else:
                    times[label] = SoCFlow(options).train(
                        config).sim_time_hours
            table[model] = times
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    for model, times in table.items():
        rows = [[label, round(hours, 3)] for label, hours in times.items()]
        print_block(f"Figure 13: ablation (hours), {model}",
                    format_table(["configuration", "hours"], rows))

    for model, times in table.items():
        ordered = [times[label] for label, _ in STEPS]
        # each added technique never hurts
        for before, after in zip(ordered, ordered[1:]):
            assert after <= before * 1.02, (model, before, after)
        # grouping alone is a big win over one flat ring
        assert times["+Group"] < times["RING"], model
        # mixed precision is a further real win
        assert times["+Mixed"] < times["+Plan"], model
        # cumulative speedup is large (paper: ~10x for VGG-11)
        assert times["RING"] / times["+Mixed"] > 4, model
