"""Figure 6: accuracy vs logical-group count.

Convergence accuracy degrades as the group count grows (delayed
aggregation across more groups = larger effective batch + staleness),
and the *first-epoch* accuracy mirrors the trend — the observation the
group-size heuristic (§3.1) is built on.
"""

from conftest import print_block

from repro.core import GroupSizeSelector, SoCFlow, SoCFlowOptions
from repro.harness import format_table

GROUP_COUNTS = [1, 2, 4, 8, 16]


def test_fig06_accuracy_vs_group_count(benchmark, suite):
    def compute():
        rows = {}
        for n in GROUP_COUNTS:
            config = suite.config("vgg11", num_socs=32, max_epochs=6,
                                  preset="bench")
            from dataclasses import replace
            config = replace(config, num_groups=n)
            result = SoCFlow(SoCFlowOptions(precision="fp32",
                                            mixed=False)).train(config)
            rows[n] = (result.extra["first_epoch_group_accuracy"],
                       result.best_accuracy)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block(
        "Figure 6: accuracy vs group count (VGG-11)",
        format_table(
            ["groups", "first_epoch_acc_pct", "final_acc_pct"],
            [[n, round(100 * first, 1), round(100 * final, 1)]
             for n, (first, final) in rows.items()]))

    first_epoch = {n: first for n, (first, _) in rows.items()}
    final = {n: f for n, (_, f) in rows.items()}
    # small group counts converge well; 16 groups degrade notably
    assert final[1] > final[16]
    assert first_epoch[1] > first_epoch[16]

    # the heuristic picks a moderate group count from the profile
    chosen = GroupSizeSelector(drop_threshold=0.15).select(first_epoch)
    print_block("Heuristic choice", format_table(
        ["selected group count"], [[chosen]]))
    assert 1 <= chosen <= 8
