"""Extension: LAN-WAN federation across SoC-Cluster servers.

Two edge sites train the same job with SoCFlow locally and average
weights over a 100 Mbps WAN every round.  The shape to check: the WAN
sync adds only a small overhead when delayed (the whole point of the
hierarchy), and a starved uplink visibly hurts.
"""

from dataclasses import replace

from conftest import print_block

from repro.cluster import ClusterTopology, EdgeSite
from repro.core import CrossSiteConfig, CrossSiteSoCFlow
from repro.harness import format_table


def _sites(wan_bps):
    return tuple(EdgeSite(f"site{i}", ClusterTopology(num_socs=16),
                          wan_bps=wan_bps) for i in range(2))


def test_cross_site_training(benchmark, suite):
    def compute():
        config = replace(suite.config("vgg11", num_socs=16, max_epochs=4),
                         num_groups=4)
        single = suite.run("vgg11", "socflow", num_socs=16, max_epochs=4)
        fast_wan = CrossSiteSoCFlow(CrossSiteConfig(
            sites=_sites(100e6), site_sync_every=2)).train(config)
        slow_wan = CrossSiteSoCFlow(CrossSiteConfig(
            sites=_sites(5e6), site_sync_every=2)).train(config)
        return single, fast_wan, slow_wan

    single, fast_wan, slow_wan = benchmark.pedantic(compute, rounds=1,
                                                    iterations=1)
    rows = [
        ["1 site x16 SoCs", round(single.sim_time_hours, 4),
         round(100 * single.best_accuracy, 1)],
        ["2 sites, 100 Mbps WAN", round(fast_wan.sim_time_hours, 4),
         round(100 * fast_wan.best_accuracy, 1)],
        ["2 sites, 5 Mbps WAN", round(slow_wan.sim_time_hours, 4),
         round(100 * slow_wan.best_accuracy, 1)],
    ]
    print_block("LAN-WAN federation (VGG-11, 4 epochs)",
                format_table(["deployment", "hours", "best_acc_pct"], rows))

    # a starved uplink costs real time
    assert slow_wan.sim_time_s > fast_wan.sim_time_s
    # two sites split the data; per-round wall time stays in the same
    # order as the single-site run plus WAN sync
    assert fast_wan.sim_time_s < 4 * single.sim_time_s
    assert fast_wan.extra["num_sites"] == 2
