"""Structured event tracing on the simulated clock.

A :class:`Tracer` records typed spans and instant events as the
simulator charges time, with SoC/PCB/logical-group/communication-group
attribution.  Everything is driven by the *simulated* clock
(:class:`~repro.cluster.clock.PhaseClock`), so a trace of a 60-SoC run
renders the paper-scale timeline, not the reduced numpy execution.

The default is a :class:`NullTracer` whose methods are no-ops and whose
``enabled`` flag lets hot paths skip building attribution lists
entirely, so an untraced run does no extra work and stays bit-identical
to a build without telemetry at all.

Records are plain, deterministic data: two runs with the same seed and
fault schedule produce byte-identical exports (see
:mod:`repro.telemetry.export`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SPAN_KINDS", "TraceRecord", "NullTracer", "Tracer"]

#: the span/event taxonomy (DESIGN.md "Telemetry").  ``compute``,
#: ``allreduce``, ``leader_sync``, ``nic_wait``, ``checkpoint``,
#: ``recovery`` and ``fault`` are the paper-facing kinds; ``job``,
#: ``queue`` and ``resize`` belong to the multi-tenant job scheduler
#: (:mod:`repro.jobs`); ``bucket_sync`` is one gradient bucket's
#: collective under comm/compute overlap; ``serve`` is one check window
#: of the inference serving plane (:mod:`repro.serving`) and ``scale``
#: its replica scale-up/down events; the rest cover the remaining
#: charged phases so a trace accounts for every simulated second.
SPAN_KINDS = frozenset({
    "compute", "allreduce", "leader_sync", "nic_wait", "checkpoint",
    "recovery", "fault", "dispatch", "update", "sync", "epoch",
    "preemption", "job", "queue", "resize", "bucket_sync", "graph_replay",
    "serve", "scale",
})


@dataclass(frozen=True)
class TraceRecord:
    """One span (``ph='X'``) or instant event (``ph='i'``)."""

    kind: str
    name: str
    ph: str                 # "X" = complete span, "i" = instant event
    ts_s: float             # simulated start time, seconds
    dur_s: float            # simulated duration (0 for instants)
    soc: int | None = None
    pcb: int | None = None
    lg: int | None = None   # logical group
    cg: int | None = None   # communication group
    job: str | None = None  # owning training job (multi-tenant runs)
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "name": self.name, "ph": self.ph,
               "ts_s": self.ts_s, "dur_s": self.dur_s}
        for key in ("soc", "pcb", "lg", "cg", "job"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceRecord":
        """Rebuild a record from its :meth:`to_dict` form (JSONL loader)."""
        try:
            return cls(
                kind=payload["kind"], name=payload["name"],
                ph=payload["ph"], ts_s=float(payload["ts_s"]),
                dur_s=float(payload["dur_s"]),
                soc=payload.get("soc"), pcb=payload.get("pcb"),
                lg=payload.get("lg"), cg=payload.get("cg"),
                job=payload.get("job"), args=dict(payload.get("args", {})))
        except KeyError as err:
            raise ValueError(
                f"trace record is missing required field {err}") from None

    @property
    def end_s(self) -> float:
        return self.ts_s + self.dur_s


class NullTracer:
    """Records nothing; ``enabled`` gates any per-span work at call sites."""

    enabled = False

    def bind_topology(self, topology) -> None:
        pass

    def span(self, kind, start_s, dur_s, **attrs) -> None:
        pass

    def event(self, kind, ts_s, **attrs) -> None:
        pass


class Tracer:
    """Append-only recorder of typed spans/events on the simulated clock."""

    enabled = True

    def __init__(self, topology=None):
        self.records: list[TraceRecord] = []
        self.topology = topology

    def bind_topology(self, topology) -> None:
        """Attach the cluster topology so ``soc`` attribution derives
        the owning PCB automatically."""
        self.topology = topology

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def _record(self, kind: str, ph: str, ts_s: float, dur_s: float,
                name: str | None, soc, pcb, lg, cg, job, args: dict) -> None:
        if kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {kind!r}; "
                             f"expected one of {sorted(SPAN_KINDS)}")
        if dur_s < 0:
            raise ValueError(f"span duration must be non-negative: {dur_s}")
        if pcb is None and soc is not None and soc >= 0 \
                and self.topology is not None:
            pcb = self.topology.pcb_of(soc)
        self.records.append(TraceRecord(
            kind=kind, name=name or kind, ph=ph, ts_s=float(ts_s),
            dur_s=float(dur_s), soc=soc, pcb=pcb, lg=lg, cg=cg, job=job,
            args=args))

    def span(self, kind: str, start_s: float, dur_s: float, *,
             name: str | None = None, soc: int | None = None,
             pcb: int | None = None, lg: int | None = None,
             cg: int | None = None, job: str | None = None, **args) -> None:
        """Record a complete span ``[start_s, start_s + dur_s)``."""
        self._record(kind, "X", start_s, dur_s, name, soc, pcb, lg, cg,
                     job, args)

    def event(self, kind: str, ts_s: float, *, name: str | None = None,
              soc: int | None = None, pcb: int | None = None,
              lg: int | None = None, cg: int | None = None,
              job: str | None = None, **args) -> None:
        """Record an instant event at ``ts_s``."""
        self._record(kind, "i", ts_s, 0.0, name, soc, pcb, lg, cg, job, args)
