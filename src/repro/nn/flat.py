"""Fused flat-buffer storage for module parameters and gradients.

Real training stacks (Horovod, DDP, DynaComm) fuse many small tensors
into one contiguous exchange buffer so optimiser updates and allreduce
reductions become a single vectorised operation instead of a Python
loop over an ``OrderedDict``.  This module brings the same data plane
to the numpy engine:

:class:`FlatLayout`
    The (key, shape, offset) table describing how a module's parameters
    and buffers pack into one 1-D float32 array.  Layouts are interned,
    so two models of the same architecture share one layout object and
    layout equality is an ``is`` check.

:class:`FlatState`
    An ``OrderedDict[str, np.ndarray]`` state dict whose values are
    zero-copy views into a single contiguous ``.flat`` array.  It is a
    drop-in replacement for the dicts ``Module.state_dict`` returns;
    aggregation primitives detect it and reduce the fused array in one
    operation.

:class:`FlatParamBuffer`
    Owns two contiguous arrays — ``data`` (parameters + buffers) and
    ``grads`` (parameter gradients) — and rebinds a module's tensors to
    views of them.  All fused fast paths are bit-identical to the
    per-key loops they replace: they run the same elementwise
    operations in the same dtype over the concatenation of the same
    segments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["FlatLayout", "FlatState", "FlatParamBuffer"]

#: interned layouts keyed by their spec tuple
_LAYOUT_CACHE: dict[tuple, "FlatLayout"] = {}


def _intern_layout(spec: tuple) -> "FlatLayout":
    layout = _LAYOUT_CACHE.get(spec)
    if layout is None:
        layout = FlatLayout(spec)
        _LAYOUT_CACHE[spec] = layout
    return layout


class FlatLayout:
    """Packing table: key order, shapes and offsets into the flat array.

    Keys are ordered parameters-first then buffers, which is exactly the
    order ``Module.state_dict`` emits, so a flat snapshot and a per-key
    snapshot enumerate identically.
    """

    __slots__ = ("spec", "keys", "shapes", "sizes", "offsets", "total",
                 "num_params", "param_total")

    def __init__(self, spec: tuple):
        # spec = ((key, shape), ...), num_params
        entries, num_params = spec
        self.spec = spec
        self.keys = tuple(key for key, _ in entries)
        self.shapes = tuple(shape for _, shape in entries)
        self.sizes = tuple(int(np.prod(shape, dtype=np.int64)) if shape
                           else 1 for shape in self.shapes)
        offsets = np.concatenate([[0], np.cumsum(self.sizes)])
        self.offsets = tuple(int(o) for o in offsets)
        self.total = self.offsets[-1]
        self.num_params = num_params
        self.param_total = self.offsets[num_params]

    @staticmethod
    def from_entries(entries: Sequence[tuple[str, tuple[int, ...]]],
                     num_params: int) -> "FlatLayout":
        spec = (tuple((key, tuple(shape)) for key, shape in entries),
                int(num_params))
        return _intern_layout(spec)

    def views(self, flat: np.ndarray) -> list[np.ndarray]:
        """Zero-copy per-key views of a contiguous ``flat`` array."""
        return [flat[a:b].reshape(shape) for a, b, shape in
                zip(self.offsets[:-1], self.offsets[1:], self.shapes)]

    def param_slice(self) -> slice:
        return slice(0, self.param_total)

    def param_views(self, arr: np.ndarray) -> list[np.ndarray]:
        """Per-parameter views of a ``(param_total,)`` array (e.g. a
        fused gradient or velocity buffer)."""
        n = self.num_params
        return [arr[a:b].reshape(shape) for a, b, shape in
                zip(self.offsets[:n], self.offsets[1:n + 1],
                    self.shapes[:n])]

    def __len__(self) -> int:
        return len(self.keys)

    def __reduce__(self):
        return (_intern_layout, (self.spec,))


def _rebuild_flat_state(layout: FlatLayout, flat: np.ndarray) -> "FlatState":
    return FlatState(layout, flat)


class FlatState(OrderedDict):
    """State dict backed by one contiguous array.

    Behaves exactly like the plain ``OrderedDict[str, np.ndarray]``
    state dicts used everywhere (iteration order, keys, values are
    real ndarrays), but also exposes ``.flat`` and ``.layout`` so the
    fused aggregation/merge paths can operate on the whole model at
    once.
    """

    def __init__(self, layout: FlatLayout, flat: np.ndarray):
        if flat.size != layout.total:
            raise ValueError(
                f"flat array has {flat.size} elements, layout needs "
                f"{layout.total}")
        flat = np.ascontiguousarray(flat, dtype=np.float32)
        if flat.ndim != 1:
            flat = flat.reshape(-1)
        super().__init__(zip(layout.keys, layout.views(flat)))
        self.layout = layout
        self.flat = flat
        # numpy collapses view chains, so a view of a view of X reports
        # ``.base is X`` — intactness must compare against the storage
        # owner, not against ``flat`` (itself possibly a view).
        owner = flat
        while isinstance(owner.base, np.ndarray):
            owner = owner.base
        self._owner = owner

    def is_intact(self) -> bool:
        """True while every value is still a view of ``.flat``.

        Key reassignment (``state[k] = other_array``) desynchronises the
        dict from the fused array; fused consumers check this and fall
        back to the per-key path when it fails.
        """
        if len(self) != len(self.layout):
            return False
        for value in self.values():
            if getattr(value, "base", None) is not self._owner:
                return False
        return True

    def copy(self) -> "FlatState":
        return FlatState(self.layout, self.flat.copy())

    def __reduce__(self):
        return (_rebuild_flat_state, (self.layout, self.flat))


def common_flat_layout(states: Iterable[dict]) -> FlatLayout | None:
    """The shared layout if every state is an intact FlatState, else None."""
    layout = None
    for state in states:
        if not isinstance(state, FlatState):
            return None
        if layout is None:
            layout = state.layout
        elif state.layout is not layout:
            return None
        if not state.is_intact():
            return None
    return layout


class FlatParamBuffer:
    """Contiguous parameter/gradient storage bound to a live module.

    After ``FlatParamBuffer(module)``:

    - every parameter's ``.data`` is a view into :attr:`data`,
    - every registered buffer is a view into :attr:`data` (after the
      parameter region), and
    - every parameter's gradient, once produced by ``backward``, lands
      in a view of :attr:`grads` (via ``Tensor._grad_buf``).

    ``state_dict`` then costs one ``memcpy`` and SGD/aggregation can
    update the whole model with a handful of vectorised array ops.
    """

    def __init__(self, module):
        named_params = list(module.named_parameters())
        named_buffers = list(module.named_buffers())
        entries = [(name, tuple(p.data.shape)) for name, p in named_params]
        entries += [(name, tuple(np.asarray(b).shape))
                    for name, b in named_buffers]
        for _, param in named_params:
            if param.data.dtype != np.float32:
                raise TypeError("flat buffers require float32 parameters")
        for _, buf in named_buffers:
            if np.asarray(buf).dtype != np.float32:
                raise TypeError("flat buffers require float32 buffers")
        self.layout = FlatLayout.from_entries(entries, len(named_params))

        self.data = np.empty(self.layout.total, dtype=np.float32)
        self.grads = np.zeros(self.layout.param_total, dtype=np.float32)

        views = self.layout.views(self.data)
        self.param_tensors: list[Tensor] = [p for _, p in named_params]
        self.param_views: list[np.ndarray] = views[:len(named_params)]
        self.buffer_views: list[np.ndarray] = views[len(named_params):]
        grad_offsets = self.layout.offsets[:len(named_params) + 1]
        self.grad_views: list[np.ndarray] = [
            self.grads[a:b].reshape(shape) for a, b, shape in
            zip(grad_offsets[:-1], grad_offsets[1:],
                self.layout.shapes[:len(named_params)])]

        # Move the live values into the fused storage and rebind.
        for param, view, gview in zip(self.param_tensors, self.param_views,
                                      self.grad_views):
            view[...] = param.data
            param.data = view
            param._grad_buf = gview
        self._rebind_buffers(module, named_buffers)

    @property
    def params(self) -> np.ndarray:
        """The parameter region of :attr:`data` (1-D float32 view)."""
        return self.data[:self.layout.param_total]

    def _rebind_buffers(self, module, named_buffers) -> None:
        """Point every registered buffer (and any attribute aliasing it)
        at its view of the fused array."""
        replacements = {}
        for (_, buf), view in zip(named_buffers, self.buffer_views):
            view[...] = buf
            replacements[id(buf)] = view
        for sub in module.modules():
            for name, buf in list(sub._buffers.items()):
                if id(buf) in replacements:
                    sub._buffers[name] = replacements[id(buf)]
            for name, value in list(sub.__dict__.items()):
                if isinstance(value, np.ndarray) and id(value) in replacements:
                    object.__setattr__(sub, name, replacements[id(value)])

    # -- integrity ------------------------------------------------------
    def is_intact(self) -> bool:
        """True while every parameter's ``.data`` is still its view.

        Code that rebinds ``param.data`` (rather than writing through
        it) silently detaches the tensor from the fused storage; callers
        check this before taking a fused fast path.
        """
        for param, view in zip(self.param_tensors, self.param_views):
            if param.data is not view:
                return False
        return True

    def grads_ready(self) -> bool:
        """True when every parameter gradient *is* its flat view, i.e.
        :attr:`grads` currently holds the complete fused gradient."""
        for param, gview in zip(self.param_tensors, self.grad_views):
            if param.grad is not gview:
                return False
        return True

    # -- state ----------------------------------------------------------
    def state_dict(self) -> FlatState:
        """Snapshot the full (param + buffer) state as a FlatState.

        One contiguous copy; per-key values are views into the copy so
        the result is independent of future training steps, exactly like
        the per-key ``Module.state_dict``.
        """
        return FlatState(self.layout, self.data.copy())

    def load_flat(self, state: FlatState) -> None:
        self.data[...] = state.flat

    def __reduce__(self):
        raise TypeError("FlatParamBuffer is bound to live tensors and "
                        "cannot be pickled; ship FlatState snapshots")
