"""Job queue with admission control.

The queue is the scheduler's waiting room: submitted jobs are screened
by structural admission control (can this job *ever* run on this
cluster?), then wait in priority order — ties broken by submission
time, then by submission sequence — until the elastic scheduler can
gang-place at least ``min_socs`` free chips for them.  Preempted jobs
re-enter the queue with their original submission time, so a tenant
never loses its fairness position by being evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.topology import ClusterTopology
from .spec import TrainingJob

__all__ = ["JobAdmissionError", "QueueEntry", "JobQueue"]


class JobAdmissionError(ValueError):
    """The job can never run on this cluster and is rejected outright."""


@dataclass(order=False)
class QueueEntry:
    """One queued job plus its fairness bookkeeping."""

    job: TrainingJob
    submit_hour: float          # when the tenant submitted (queue-wait t0)
    sequence: int               # FIFO tie-break among equal priorities
    requeues: int = 0           # how many preemptions sent it back here
    meta: dict = field(default_factory=dict)

    @property
    def sort_key(self) -> tuple:
        return (-self.job.priority, self.submit_hour, self.sequence)


class JobQueue:
    """Priority queue with admission control for :class:`TrainingJob`.

    Admission control is *structural*: a job whose ``min_socs`` exceeds
    the cluster, whose workload is unknown, or whose id collides with a
    previously admitted job is rejected at submit time with a reason —
    it never occupies a queue slot it can never leave.
    """

    def __init__(self, topology: ClusterTopology,
                 known_workloads: "set[str] | None" = None):
        self.topology = topology
        self.known_workloads = known_workloads
        self._entries: list[QueueEntry] = []
        self._admitted_ids: set[str] = set()
        self._sequence = 0

    # ------------------------------------------------------------------
    def submit(self, job: TrainingJob, hour: float) -> QueueEntry:
        """Admit ``job`` at ``hour`` or raise :class:`JobAdmissionError`."""
        if job.id in self._admitted_ids:
            raise JobAdmissionError(f"duplicate job id {job.id!r}")
        if job.min_socs > self.topology.num_socs:
            raise JobAdmissionError(
                f"job {job.id!r} needs >= {job.min_socs} SoCs but the "
                f"cluster only has {self.topology.num_socs}")
        if self.known_workloads is not None \
                and job.workload not in self.known_workloads:
            raise JobAdmissionError(
                f"job {job.id!r}: unknown workload {job.workload!r}")
        entry = QueueEntry(job=job, submit_hour=float(hour),
                           sequence=self._sequence)
        self._sequence += 1
        self._admitted_ids.add(job.id)
        self._entries.append(entry)
        return entry

    def requeue(self, entry: QueueEntry) -> None:
        """Return a preempted job, keeping its original fairness position."""
        entry.requeues += 1
        self._entries.append(entry)

    # ------------------------------------------------------------------
    def pending(self) -> list[QueueEntry]:
        """Queued entries in scheduling order (priority, then FIFO)."""
        return sorted(self._entries, key=lambda e: e.sort_key)

    def remove(self, job_id: str) -> QueueEntry:
        for i, entry in enumerate(self._entries):
            if entry.job.id == job_id:
                return self._entries.pop(i)
        raise KeyError(f"job {job_id!r} is not queued")

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, job_id: str) -> bool:
        return any(e.job.id == job_id for e in self._entries)
