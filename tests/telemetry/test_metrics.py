"""Metrics registry: instruments, labels, deterministic export."""

import json

import pytest

from repro.telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                             NullMetricsRegistry)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_keeps_series(self):
        g = Gauge()
        g.set(1.0)
        g.set(0.5)
        assert g.value == 0.5
        assert g.series == [1.0, 0.5]
        assert g.summary() == {"value": 0.5, "observations": 2}


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0

    def test_summary_fields(self):
        h = Histogram()
        h.observe(2.0)
        h.observe(4.0)
        summary = h.summary()
        assert summary["count"] == 2
        assert summary["mean"] == 3.0
        assert summary["min"] == 2.0 and summary["max"] == 4.0

    def test_empty_histogram(self):
        assert Histogram().summary() == {"count": 0}
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("nic.bytes", pcb=3)
        b = reg.counter("nic.bytes", pcb=3)
        c = reg.counter("nic.bytes", pcb=4)
        assert a is b and a is not c
        assert len(reg) == 2

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_collect_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(1)
        reg.gauge("a.first", pcb=1).set(0.5)
        rows = reg.collect()
        assert [r["name"] for r in rows] == ["a.first", "z.last"]
        assert rows[0]["labels"] == {"pcb": 1}
        assert rows[0]["type"] == "gauge"
        assert rows[1]["type"] == "counter"

    def test_jsonl_is_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.histogram("epoch.seconds").observe(1.5)
            reg.counter("retries", pcb=0).inc(3)
            return reg
        assert build().to_jsonl() == build().to_jsonl()
        for line in build().to_jsonl().splitlines():
            json.loads(line)

    def test_write_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("retries").inc()
        path = tmp_path / "metrics.jsonl"
        reg.write_jsonl(path)
        assert json.loads(path.read_text())["name"] == "retries"


class TestNullRegistry:
    def test_all_instruments_are_noop(self):
        reg = NullMetricsRegistry()
        assert reg.enabled is False
        reg.counter("a").inc(5)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(2)
        assert reg.collect() == []


class TestHistogramReservoir:
    def test_exact_stats_survive_sampling(self):
        h = Histogram(reservoir=16)
        for i in range(1000):
            h.observe(float(i))
        assert len(h.observations) == 16
        s = h.summary()
        assert s["count"] == 1000
        assert s["sum"] == sum(range(1000))
        assert s["min"] == 0.0 and s["max"] == 999.0
        assert s["mean"] == pytest.approx(499.5)
        assert s["sampled"] == 16

    def test_no_sampling_below_capacity(self):
        h = Histogram(reservoir=100)
        for i in range(50):
            h.observe(float(i))
        assert h.observations == [float(i) for i in range(50)]
        assert "sampled" not in h.summary()
        assert h.percentile(50) == 24.0        # still exact (nearest rank)

    def test_sampling_is_deterministic(self):
        def build():
            h = Histogram(reservoir=8)
            for i in range(500):
                h.observe(float(i))
            return h.observations
        assert build() == build()

    def test_sampled_percentiles_stay_in_range(self):
        h = Histogram(reservoir=32)
        for i in range(10_000):
            h.observe(float(i))
        for p in (0, 50, 90, 99, 100):
            assert 0.0 <= h.percentile(p) <= 9999.0
        # the median of a uniform stream lands near the true median
        assert abs(h.percentile(50) - 5000.0) < 2500.0

    def test_unbounded_mode_unchanged(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.observations == [3.0, 1.0, 2.0]
        s = h.summary()
        assert s["count"] == 3 and "sampled" not in s

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Histogram(reservoir=0)

    def test_registry_knob_applies_to_histograms_only(self):
        reg = MetricsRegistry(histogram_reservoir=4)
        h = reg.histogram("epoch.seconds")
        for i in range(100):
            h.observe(float(i))
        assert len(h.observations) == 4
        assert h.summary()["count"] == 100
        assert reg.histogram("epoch.seconds") is h      # get-or-create
        reg.counter("c").inc()                          # unaffected kinds
        assert reg.counter("c").value == 1.0

    def test_write_jsonl_gzip(self, tmp_path):
        import gzip
        reg = MetricsRegistry()
        reg.counter("retries").inc(2)
        path = tmp_path / "metrics.jsonl.gz"
        reg.write_jsonl(path)
        with gzip.open(path, "rt") as fh:
            assert json.loads(fh.read())["value"] == 2.0
