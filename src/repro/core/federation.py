"""Cross-site training: SoCFlow inside each edge site, WAN-delayed
weight averaging across sites (the LAN-WAN extension).

Each site runs the full SoCFlow pipeline on its own data shard (a real
per-site :class:`~repro.core.socflow.SoCFlow` run each round); every
``site_sync_every`` epochs the sites' weights average through the WAN
aggregator.  The geographic hierarchy mirrors SoCFlow's own: frequent
sync where bandwidth is cheap (intra-group), delayed sync where it is
scarce (cross-group, and now cross-site).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster.multiserver import EdgeSite, WanFabric
from ..comm.primitives import average_states
from ..data.loader import iid_partition
from ..distributed.base import (RunConfig, StrategyResult,
                                evaluate_accuracy)
from .mixed_precision import GroupMixedTrainer
from .socflow import SoCFlow, SoCFlowOptions

__all__ = ["CrossSiteConfig", "CrossSiteSoCFlow"]


@dataclass(frozen=True)
class CrossSiteConfig:
    """Federation settings on top of one per-site RunConfig."""

    sites: tuple[EdgeSite, ...]
    #: WAN weight averaging happens every this many epochs
    site_sync_every: int = 2
    socflow: SoCFlowOptions = field(default_factory=SoCFlowOptions)

    def __post_init__(self):
        if not self.sites:
            raise ValueError("need at least one site")
        if self.site_sync_every < 1:
            raise ValueError("site_sync_every must be >= 1")


class CrossSiteSoCFlow:
    """Train one model across several SoC-Cluster servers."""

    def __init__(self, config: CrossSiteConfig):
        self.config = config
        self.fabric = WanFabric(list(config.sites))

    def train(self, run_config: RunConfig) -> StrategyResult:
        sites = self.config.sites
        shards = iid_partition(run_config.task.x_train,
                               run_config.task.y_train, len(sites),
                               seed=run_config.seed)
        # A shared initial model: reuse SoCFlow's group builder once.
        template = GroupMixedTrainer(run_config, controller=None,
                                     quant_config=self.config.socflow.quant,
                                     mixed=False)
        shared_state = template.state_dict()

        site_states = [dict(shared_state) for _ in sites]
        history: list[float] = []
        total_time = 0.0
        energy = None
        rounds = run_config.max_epochs // self.config.site_sync_every
        for round_index in range(max(1, rounds)):
            round_states = []
            round_time = 0.0
            for site, shard, state in zip(sites, shards, site_states):
                site_task = replace(run_config.task, x_train=shard.x,
                                    y_train=shard.y)
                site_config = replace(
                    run_config, task=site_task,
                    topology=site.topology,
                    max_epochs=self.config.site_sync_every,
                    init_state=state,
                    seed=run_config.seed + round_index)
                result = SoCFlow(self.config.socflow).train(site_config)
                round_states.append(result.extra["final_state"])
                round_time = max(round_time, result.sim_time_s)
                energy = (result.energy if energy is None
                          else energy + result.energy)
            merged = average_states(round_states)
            site_states = [dict(merged) for _ in sites]
            from ..cluster.spec import model_profile
            payload = model_profile(run_config.model_name).payload_bytes()
            total_time += round_time + self.fabric.sync_time(payload)
            probe = GroupMixedTrainer(run_config, controller=None,
                                      quant_config=self.config.socflow.quant,
                                      mixed=False)
            probe.fp32.load_state_dict(merged)
            history.append(evaluate_accuracy(
                probe.fp32, run_config.task.x_test, run_config.task.y_test))

        return StrategyResult(
            strategy="cross_site_socflow",
            accuracy_history=history,
            sim_time_s=total_time,
            breakdown={"total": total_time},
            energy=energy,
            epochs_run=len(history) * self.config.site_sync_every,
            epochs_to_target=None,
            converged=False,
            extra={"num_sites": len(sites)},
        )
