"""Name-based strategy construction for the experiment harness."""

from __future__ import annotations

from typing import Callable

from .base import Strategy
from .fedavg import FedAvg
from .hipress import HiPress
from .local import LocalSingleSoC
from .parameter_server import ParameterServer
from .ring_allreduce import RingAllReduce
from .ssp import StaleSynchronous
from .tree_fedavg import TreeFedAvg
from .two_d_parallel import TwoDParallel

STRATEGY_REGISTRY: dict[str, Callable[[], Strategy]] = {
    "local": LocalSingleSoC,
    "ps": ParameterServer,
    "ring": RingAllReduce,
    "hipress": HiPress,
    "2d_paral": TwoDParallel,
    "ssp": StaleSynchronous,
    "fedavg": FedAvg,
    "t_fedavg": TreeFedAvg,
}


def build_strategy(name: str, **kwargs) -> Strategy:
    """Construct a baseline strategy by its registry name.

    SoCFlow itself lives in :mod:`repro.core` and registers separately
    (see :func:`repro.core.build_socflow`).
    """
    try:
        factory = STRATEGY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGY_REGISTRY))
        raise ValueError(f"unknown strategy {name!r}; known: {known}") from None
    return factory(**kwargs)
