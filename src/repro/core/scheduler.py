"""Global scheduler: the control-board software (§3, Figure 5a).

Responsibilities reproduced here:

- *dispatch*: model/data broadcast cost before training starts;
- *checkpointing*: models checkpoint to UFS so user workloads can
  preempt training at any time without losing progress;
- *preemption*: a sudden user-load event terminates whole logical
  groups (the flexible group structure means only those groups stop);
- *underclocking-aware rebalancing* (§4.1 optimisation 2): when DVFS
  slows a SoC, its group's batch shares are rebalanced so the slow chip
  stops being a straggler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.network import NetworkFabric
from ..cluster.topology import ClusterTopology

__all__ = ["PreemptionEvent", "UnderclockEvent", "GlobalScheduler"]

#: sustained UFS 3.1 sequential write bandwidth, bytes/s
_UFS_WRITE_BPS = 500e6


@dataclass(frozen=True)
class PreemptionEvent:
    """User load returns at the start of ``epoch``: drop ``num_groups``."""

    epoch: int
    num_groups: int = 1


@dataclass(frozen=True)
class UnderclockEvent:
    """DVFS slows ``soc`` to ``factor`` of nominal speed from ``epoch``."""

    epoch: int
    soc: int
    factor: float

    def __post_init__(self):
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


@dataclass
class GlobalScheduler:
    """Event bookkeeping + cost formulas for the control-board logic."""

    topology: ClusterTopology
    rebalance: bool = True
    events: list = field(default_factory=list)
    _clock_factors: dict[int, float] = field(default_factory=dict)

    # -- dispatch -------------------------------------------------------
    def dispatch_seconds(self, fabric: NetworkFabric, model_bytes: float,
                         data_bytes_per_soc: float) -> float:
        """Broadcast the model and per-SoC data shards from the control
        board at the start of a job."""
        from ..cluster.network import CONTROL_BOARD
        socs = list(range(self.topology.num_socs))
        per_soc = model_bytes + data_bytes_per_soc
        return fabric.transfer_time(
            [_flow(CONTROL_BOARD, s, per_soc) for s in socs])

    # -- checkpoint / preemption ----------------------------------------
    @staticmethod
    def checkpoint_seconds(model_bytes: float) -> float:
        """Write one model checkpoint to the SoC's UFS storage."""
        return model_bytes / _UFS_WRITE_BPS

    def preemptions_at(self, epoch: int) -> list[PreemptionEvent]:
        return [e for e in self.events
                if isinstance(e, PreemptionEvent) and e.epoch == epoch]

    # -- underclocking ----------------------------------------------------
    def apply_underclocks(self, epoch: int) -> None:
        for event in self.events:
            if isinstance(event, UnderclockEvent) and event.epoch == epoch:
                self._clock_factors[event.soc] = event.factor

    def group_slowdown(self, group_socs: list[int]) -> float:
        """Wall-time multiplier for one group's compute.

        Without rebalancing the slowest member is a straggler
        (multiplier ``1/min_factor``); with rebalancing work moves to
        faster members and the multiplier is the harmonic-mean ratio
        ``G / sum(factors)``.
        """
        factors = [self._clock_factors.get(s, 1.0) for s in group_socs]
        if all(f == 1.0 for f in factors):
            return 1.0
        if self.rebalance:
            return len(factors) / sum(factors)
        return 1.0 / min(factors)


def _flow(src: int, dst: int, nbytes: float):
    from ..cluster.network import Flow
    return Flow(src, dst, nbytes)
