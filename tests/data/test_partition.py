"""Dirichlet non-IID partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (dirichlet_partition, iid_partition,
                        label_distribution, skewness)


def labelled_data(n=400, classes=5, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, classes, size=n).astype(np.int64)
    x = rng.standard_normal((n, 2)).astype(np.float32)
    return x, y


class TestDirichlet:
    def test_partition_is_complete(self):
        x, y = labelled_data()
        parts = dirichlet_partition(x, y, 8, alpha=0.5, seed=0)
        assert sum(len(p) for p in parts) == len(x)

    def test_no_empty_parts(self):
        x, y = labelled_data(n=60)
        parts = dirichlet_partition(x, y, 16, alpha=0.05, seed=0)
        assert all(len(p) >= 1 for p in parts)

    def test_small_alpha_skews_more(self):
        x, y = labelled_data(n=2000)
        skew_low = skewness(dirichlet_partition(x, y, 8, alpha=0.05,
                                                seed=1), 5)
        skew_high = skewness(dirichlet_partition(x, y, 8, alpha=100.0,
                                                 seed=1), 5)
        assert skew_low > skew_high + 0.15

    def test_huge_alpha_approaches_iid(self):
        x, y = labelled_data(n=2000)
        dirichlet = skewness(dirichlet_partition(x, y, 4, alpha=1000.0,
                                                 seed=2), 5)
        iid = skewness(iid_partition(x, y, 4, seed=2), 5)
        assert abs(dirichlet - iid) < 0.1

    def test_deterministic(self):
        x, y = labelled_data()
        a = dirichlet_partition(x, y, 4, alpha=0.5, seed=3)
        b = dirichlet_partition(x, y, 4, alpha=0.5, seed=3)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.y, pb.y)

    def test_validation(self):
        x, y = labelled_data(n=20)
        with pytest.raises(ValueError):
            dirichlet_partition(x, y, 0)
        with pytest.raises(ValueError):
            dirichlet_partition(x, y, 2, alpha=0.0)

    @given(st.integers(1, 12), st.floats(0.05, 10.0), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_any_configuration_partitions_fully(self, parts, alpha, seed):
        x, y = labelled_data(n=100, seed=seed)
        partition = dirichlet_partition(x, y, parts, alpha=alpha, seed=seed)
        assert sum(len(p) for p in partition) == 100
        assert all(len(p) >= 1 for p in partition)


class TestMetrics:
    def test_label_distribution_sums_to_one(self):
        x, y = labelled_data()
        part = dirichlet_partition(x, y, 2, seed=0)[0]
        dist = label_distribution(part, 5)
        assert dist.sum() == pytest.approx(1.0)

    def test_skewness_zero_for_identical_shards(self):
        x = np.zeros((10, 1), dtype=np.float32)
        y = np.array([0, 1] * 5, dtype=np.int64)
        from repro.data import ArrayDataset
        shards = [ArrayDataset(x[:5], np.array([0, 1, 0, 1, 0])),
                  ArrayDataset(x[5:], np.array([0, 1, 0, 1, 0]))]
        assert skewness(shards, 2) < 0.11


class TestNonIidFedAvg:
    def test_noniid_hurts_fedavg(self, quick_config):
        """The classic FL result: label skew slows convergence."""
        from dataclasses import replace
        from repro.distributed import FedAvg
        config = replace(quick_config, max_epochs=3)
        iid = FedAvg().train(config)
        skewed = FedAvg(partition_alpha=0.1).train(config)
        # weaker-or-equal accuracy under heavy skew (allow small noise)
        assert skewed.best_accuracy <= iid.best_accuracy + 0.08
