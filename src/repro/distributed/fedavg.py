"""FedAvg baseline (McMahan et al., AISTATS'17), IID setting.

Every SoC is a client holding an IID shard; each round (= epoch) the
clients train locally for one pass over their shard, then the server
(the control board) averages the weights.  No per-batch network
traffic, but the delayed aggregation costs convergence: more rounds to
reach the same accuracy and a 1.9–5.6% final-accuracy gap on the
from-scratch tasks (Table 3) — both effects emerge from the real local
training below, not from hard-coding.
"""

from __future__ import annotations

import math

from ..comm.primitives import average_states
from ..data.loader import DataLoader, iid_partition
from ..nn.optim import SGD
from .base import (CostModel, RunConfig, Strategy, StrategyResult,
                   evaluate_accuracy, fp32_train_step, make_model,
                   record_epoch_telemetry)

__all__ = ["FedAvg"]


class FedAvg(Strategy):
    name = "fedavg"

    #: clients run this many local passes over their shard per round
    local_epochs = 1

    def __init__(self, partition_alpha: float | None = None):
        """``partition_alpha=None`` gives the paper's IID setting; a
        float enables Dirichlet label skew (non-IID extension)."""
        self.partition_alpha = partition_alpha

    def num_clients(self, config: RunConfig) -> int:
        return config.topology.num_socs

    def _partition(self, config: RunConfig, num_clients: int):
        if self.partition_alpha is None:
            return iid_partition(config.task.x_train, config.task.y_train,
                                 num_clients, seed=config.seed)
        from ..data.partition import dirichlet_partition
        return dirichlet_partition(config.task.x_train,
                                   config.task.y_train, num_clients,
                                   alpha=self.partition_alpha,
                                   seed=config.seed)

    def round_sync_seconds(self, cost: CostModel) -> float:
        """Weight upload + download through a SoC-hosted server."""
        socs = list(range(cost.topology.num_socs))
        return cost.fabric.parameter_server_time(socs, cost.grad_bytes)

    def _local_batch(self, config: RunConfig, shard_size: int) -> int:
        """Local batch small enough for several local steps per round."""
        return max(4, min(config.batch_size, shard_size // 4 or 1))

    def train(self, config: RunConfig) -> StrategyResult:
        cost = CostModel(config, telemetry=config.telemetry)
        num_clients = self.num_clients(config)
        global_model = make_model(config)
        shards = self._partition(config, num_clients)
        client_model = make_model(config)  # reused buffer for local runs
        # Fused data plane: flattening both replicas makes every local
        # SGD step, the round average and the state loads whole-model
        # array ops (bit-identical to the per-key paths).
        global_model.flatten_parameters()
        client_flat = client_model.flatten_parameters()
        if config.graph:
            # One executor serves every client round: load_state_dict
            # writes weights in place, so the flat storage stays intact
            # and captured programs remain valid across rounds.
            client_model.enable_graph_executor()

        # Simulated per-round cost: every client trains its full-scale
        # shard locally (all clients in parallel), then one aggregation.
        sim_shard = cost.config.sim_samples_per_epoch / num_clients
        compute_s = cost.compute_seconds(sim_shard, "cpu") * self.local_epochs
        sync_s = self.round_sync_seconds(cost)

        telemetry = cost.telemetry
        history: list[float] = []
        state: dict = {}
        extra: dict = {}
        for epoch in range(config.max_epochs):
            epoch_t0 = cost.clock.now
            if telemetry.enabled:
                phases0 = cost.clock.breakdown()
                hidden0 = cost.clock.attributed_breakdown().get("sync", 0.0)
            dead, abort = self._epoch_fault_state(config, epoch, cost)
            if abort:
                extra.update(aborted=True, abort_epoch=epoch,
                             dead_socs=sorted(dead))
                break
            global_state = global_model.state_dict()
            client_states = []
            for index, shard in enumerate(shards):
                if index in dead:
                    continue        # the client's SoC is down this round
                client_model.load_state_dict(global_state)
                optimizer = SGD(client_model.parameters(), lr=config.lr,
                                momentum=config.momentum,
                                weight_decay=config.weight_decay,
                                flat=client_flat)
                loader = DataLoader(
                    shard, self._local_batch(config, len(shard)),
                    shuffle=True, seed=config.seed * 1000 + epoch * 64 + index)
                for _ in range(self.local_epochs):
                    for x, y in loader:
                        fp32_train_step(client_model, optimizer, x, y)
                client_states.append(client_model.state_dict())
            if client_states:
                global_model.load_state_dict(average_states(
                    client_states, metrics=cost.telemetry.metrics))

            update_s = cost.update_seconds() * math.ceil(
                sim_shard / config.sim_global_batch)
            if telemetry.tracer.enabled:
                # one round = local passes in lock-step, then the
                # weight exchange through the server
                telemetry.tracer.span("compute", epoch_t0, compute_s,
                                      num_socs=num_clients)
                telemetry.tracer.span("update", epoch_t0 + compute_s,
                                      update_s)
                telemetry.tracer.span("sync",
                                      epoch_t0 + compute_s + update_s,
                                      sync_s, num_socs=num_clients)
            cost.clock.advance(compute_s, "compute")
            cost.energy.charge_compute(compute_s, num_clients, 1.0)
            cost.clock.advance(update_s, "update")
            cost.energy.charge_compute(update_s, num_clients, 1.0)
            cost.charge_epoch_sync(sync_s, num_clients)

            accuracy = evaluate_accuracy(global_model, config.task.x_test,
                                         config.task.y_test)
            self._epoch_accuracy_bookkeeping(accuracy, epoch, config,
                                             history, state)
            if telemetry.enabled:
                record_epoch_telemetry(telemetry, cost, epoch, epoch_t0,
                                       phases0, hidden0, accuracy)
        if config.fault_schedule is not None:
            extra.setdefault("aborted", False)
        return self._result(self.name, config, cost, history, state, extra)
