"""Figure 9: end-to-end training energy at 32 SoCs, all methods."""

from conftest import METHODS, print_block

from repro.harness import format_table

WORKLOADS_FIG9 = ["mobilenet", "vgg11", "resnet18", "lenet5_emnist",
                  "lenet5_fmnist"]


def test_fig09_training_energy(benchmark, suite):
    def compute():
        table = {}
        for workload in WORKLOADS_FIG9:
            table[workload] = {
                method: suite.run(workload, method).energy.total_kj
                for method in METHODS}
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [[w, *(round(table[w][m], 1) for m in METHODS)]
            for w in WORKLOADS_FIG9]
    print_block("Figure 9: training energy (kJ, 32 SoCs, equal epochs)",
                format_table(["workload", *METHODS], rows))

    for workload in WORKLOADS_FIG9:
        energy = table[workload]
        # SoCFlow cheapest among distributed-ML methods (paper: 1.9-158x)
        for method in ("ps", "ring", "hipress", "2d_paral"):
            assert energy["socflow"] < energy[method], (workload, method)
        # PS burns the most energy of the DML methods
        assert energy["ps"] == max(energy[m] for m in
                                   ("ps", "ring", "hipress", "2d_paral"))

    reduction_ps = table["vgg11"]["ps"] / table["vgg11"]["socflow"]
    reduction_ring = table["vgg11"]["ring"] / table["vgg11"]["socflow"]
    print_block("VGG-11 energy reduction", format_table(
        ["baseline", "factor"],
        [["ps", round(reduction_ps, 1)], ["ring", round(reduction_ring, 1)]]))
    assert reduction_ps > reduction_ring > 1.5
