"""Harness: workloads, presets, run-config assembly."""

import pytest

from repro.harness import (SCALE_PRESETS, WORKLOADS, make_run_config,
                           prepare_task)


class TestWorkloads:
    def test_all_table3_rows_present(self):
        assert set(WORKLOADS) == {
            "mobilenet", "vgg11", "resnet18", "vgg11_celeba",
            "resnet18_celeba", "lenet5_emnist", "lenet5_fmnist",
            "resnet50_finetune"}

    def test_mobilenet_uses_batch_256(self):
        assert WORKLOADS["mobilenet"].sim_global_batch == 256
        assert WORKLOADS["vgg11"].sim_global_batch == 64

    def test_transfer_workload_flags(self):
        assert WORKLOADS["resnet50_finetune"].transfer_from == "cinic10"


class TestPresets:
    def test_presets_ordered_by_size(self):
        quick = SCALE_PRESETS["quick"]
        bench = SCALE_PRESETS["bench"]
        full = SCALE_PRESETS["full"]
        assert quick.data_scale < bench.data_scale < full.data_scale
        assert quick.max_epochs <= bench.max_epochs <= full.max_epochs


class TestMakeRunConfig:
    def test_sim_fields_stay_at_paper_scale(self):
        config = make_run_config("vgg11", "quick", num_socs=32)
        assert config.sim_samples_per_epoch == 50_000
        assert config.sim_global_batch == 64
        # while the real task is small
        assert len(config.task.x_train) < 5_000

    def test_topology_size(self):
        config = make_run_config("vgg11", "quick", num_socs=16)
        assert config.topology.num_socs == 16

    def test_lenet_gets_grayscale_task(self):
        config = make_run_config("lenet5_emnist", "quick")
        assert config.task.input_shape[0] == 1
        assert config.task.num_classes == 47

    def test_max_epochs_override(self):
        config = make_run_config("vgg11", "quick", max_epochs=1)
        assert config.max_epochs == 1

    def test_transfer_config_pretrained_and_frozen(self):
        config = make_run_config("resnet50_finetune", "quick")
        assert config.init_state is not None
        assert config.freeze_backbone

    def test_prepare_task_deterministic(self):
        workload = WORKLOADS["vgg11"]
        preset = SCALE_PRESETS["quick"]
        import numpy as np
        a = prepare_task(workload, preset, seed=3)
        b = prepare_task(workload, preset, seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
