"""The telemetry context threaded through the simulator.

One :class:`Telemetry` object bundles a tracer and a metrics registry
and rides on :class:`~repro.distributed.base.RunConfig`; the cost
model, network fabric, scheduler and strategies all read it from there.
The module-level :data:`NULL_TELEMETRY` singleton is the default
everywhere: both of its halves are no-ops and ``enabled`` is False, so
instrumented call sites can skip attribution work entirely and an
untraced run is bit-identical to the pre-telemetry code path.
"""

from __future__ import annotations

from .metrics import MetricsRegistry, NullMetricsRegistry
from .tracer import NullTracer, Tracer

__all__ = ["Telemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Tracer + metrics + the simulated clock they are anchored to."""

    def __init__(self, tracer=None, metrics=None):
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = (metrics if metrics is not None
                        else NullMetricsRegistry())
        self.clock = None
        self.topology = None
        #: per-epoch report rows (see :meth:`record_epoch`)
        self.epoch_rows: list[dict] = []

    @classmethod
    def active(cls) -> "Telemetry":
        """A fully-enabled context: real tracer + real registry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def attach(self, clock=None, topology=None) -> None:
        """Bind the simulated clock / topology the records refer to.

        Called by the owning :class:`~repro.distributed.base.CostModel`;
        probe cost models (group-size warm-up, Eq. 1 planning) never
        attach, so their throwaway clocks cannot hijack the timeline.
        """
        if clock is not None:
            self.clock = clock
        if topology is not None:
            self.topology = topology
            self.tracer.bind_topology(topology)

    @property
    def now(self) -> float:
        """Current simulated time (0 before a clock is attached)."""
        return self.clock.now if self.clock is not None else 0.0

    def record_epoch(self, **row) -> None:
        """Append one per-epoch report row (phase deltas, accuracy, …)."""
        self.epoch_rows.append(dict(row))


NULL_TELEMETRY = Telemetry()
