"""Request arrival processes for the inference serving plane.

The paper's "millions of users" side stops being an aggregate busy
curve here: each region emits a non-homogeneous Poisson stream of
*individual inference requests* whose rate follows the tidal diurnal
shape (:class:`~repro.cluster.trace.TidalTrace`), optionally spiked by
flash crowds.  The idle-SoC signal the training scheduler harvests is
then *generated* by serving this traffic, not read off a canned trace.

Generation is by thinning with Poisson superposition: the diurnal base
stream is thinned against a constant ``peak_rps`` envelope, and every
flash crowd contributes an independent component at its *excess* rate
``(multiplier - 1) * base`` over its interval — so a 10x crowd does not
force a 10x envelope on the whole horizon.  All arrivals are drawn up
front for the full horizon, which makes the realisation a pure function
of the parameters and seed: scheduling-policy choices (round lengths,
check windows) can never perturb the workload they are being judged
against, and reruns are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.trace import TidalTrace

__all__ = ["FlashCrowd", "Region", "ArrivalProcess"]


@dataclass(frozen=True)
class FlashCrowd:
    """A transient surge: rate multiplies by ``multiplier`` for a while.

    ``start_hour`` is absolute (same axis as the horizon, may exceed
    24); the surge holds for ``duration_hours`` then vanishes.
    """

    start_hour: float
    duration_hours: float
    multiplier: float

    def __post_init__(self):
        if self.duration_hours <= 0:
            raise ValueError("flash crowd needs a positive duration")
        if self.multiplier <= 1.0:
            raise ValueError("flash crowd multiplier must exceed 1")

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours

    @classmethod
    def parse(cls, spec: str) -> "FlashCrowd":
        """``START:DUR:MULT`` (hours, hours, factor) -> crowd."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad flash-crowd spec {spec!r}; expected START:DUR:MULT")
        try:
            start, dur, mult = (float(p) for p in parts)
        except ValueError:
            raise ValueError(
                f"bad flash-crowd spec {spec!r}; expected three numbers"
            ) from None
        return cls(start, dur, mult)


@dataclass(frozen=True)
class Region:
    """One user population with its own diurnal phase and peak rate.

    ``phase_shift_hours`` moves the whole tidal shape later in the day
    (an eastern region peaks earlier -> negative shift), which is how a
    multi-region deployment flattens the aggregate valley.
    """

    name: str
    peak_rps: float
    phase_shift_hours: float = 0.0

    def __post_init__(self):
        if self.peak_rps <= 0:
            raise ValueError("peak_rps must be positive")


class ArrivalProcess:
    """Pre-generated request arrival times over a fixed horizon.

    Parameters
    ----------
    regions:
        The populations whose streams superpose.  A single
        ``Region("global", peak_rps)`` reproduces one tidal curve.
    flash_crowds:
        Surges applied to the *aggregate* rate (every region spikes
        together — the platform-wide launch/event case).
    start_hour, horizon_hours:
        Absolute window the process covers.  Queries outside it raise.
    """

    def __init__(self, regions: "list[Region]",
                 *, start_hour: float = 0.0, horizon_hours: float = 24.0,
                 trace: TidalTrace | None = None,
                 flash_crowds: "list[FlashCrowd] | None" = None,
                 seed: int = 0):
        if not regions:
            raise ValueError("need at least one region")
        if horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        self.regions = list(regions)
        self.flash_crowds = list(flash_crowds or [])
        self.start_hour = start_hour
        self.horizon_hours = horizon_hours
        self.trace = trace or TidalTrace(seed=seed)
        self.seed = seed
        self._arrivals = self._generate()

    # ------------------------------------------------------------------
    @classmethod
    def from_times(cls, times, *, start_hour: float = 0.0,
                   horizon_hours: float = 24.0,
                   trace: TidalTrace | None = None) -> "ArrivalProcess":
        """Wrap explicit arrival times (tests, replayed real traces)."""
        proc = cls.__new__(cls)
        proc.regions = []
        proc.flash_crowds = []
        proc.start_hour = start_hour
        proc.horizon_hours = horizon_hours
        proc.trace = trace or TidalTrace()
        proc.seed = 0
        proc._arrivals = np.sort(np.asarray(times, dtype=float))
        return proc

    # ------------------------------------------------------------------
    @property
    def end_hour(self) -> float:
        return self.start_hour + self.horizon_hours

    @property
    def arrivals_h(self) -> np.ndarray:
        """All arrival times (absolute hours), sorted ascending."""
        return self._arrivals

    def __len__(self) -> int:
        return len(self._arrivals)

    # ------------------------------------------------------------------
    def rate_rps(self, hour: float) -> float:
        """Instantaneous aggregate request rate at ``hour``."""
        base = sum(
            region.peak_rps
            * self.trace.busy_ratio(hour - region.phase_shift_hours)
            / self.trace.peak_busy
            for region in self.regions)
        # superposed excess components -> overlapping crowds add
        mult = 1.0 + sum(crowd.multiplier - 1.0 for crowd in self.flash_crowds
                         if crowd.start_hour <= hour < crowd.end_hour)
        return base * mult

    def slice_h(self, t0: float, t1: float) -> np.ndarray:
        """Arrival times in ``[t0, t1)`` (absolute hours)."""
        lo = int(np.searchsorted(self._arrivals, t0, side="left"))
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        return self._arrivals[lo:hi]

    def count_between(self, t0: float, t1: float) -> int:
        lo = int(np.searchsorted(self._arrivals, t0, side="left"))
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        return hi - lo

    # ------------------------------------------------------------------
    # Generation (thinning + superposition)
    # ------------------------------------------------------------------
    def _generate(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        streams: list[np.ndarray] = []
        for region in self.regions:
            # base diurnal component: thin against the region's peak
            streams.append(self._thin(
                rng, envelope_rps=region.peak_rps,
                t0=self.start_hour, t1=self.end_hour,
                rate_fn=lambda h, r=region: (
                    r.peak_rps
                    * self.trace.busy_ratio_array(h - r.phase_shift_hours)
                    / self.trace.peak_busy)))
            # each flash crowd adds an independent excess component at
            # (multiplier - 1) x the base rate over its interval, so the
            # quiet hours never pay for the surge's envelope
            for crowd in self.flash_crowds:
                t0 = max(self.start_hour, crowd.start_hour)
                t1 = min(self.end_hour, crowd.end_hour)
                if t1 <= t0:
                    continue
                excess = crowd.multiplier - 1.0
                streams.append(self._thin(
                    rng, envelope_rps=region.peak_rps * excess,
                    t0=t0, t1=t1,
                    rate_fn=lambda h, r=region, e=excess: (
                        e * r.peak_rps
                        * self.trace.busy_ratio_array(h - r.phase_shift_hours)
                        / self.trace.peak_busy)))
        if not streams:                                 # pragma: no cover
            return np.empty(0)
        merged = np.concatenate(streams)
        merged.sort(kind="stable")
        return merged

    @staticmethod
    def _thin(rng, *, envelope_rps: float, t0: float, t1: float,
              rate_fn) -> np.ndarray:
        """One thinned Poisson component on ``[t0, t1)`` (hours).

        Candidates arrive homogeneously at ``envelope_rps``; each
        survives with probability ``rate(t) / envelope``.  Drawing the
        count first, then sorted uniform times, keeps the whole
        component a fixed number of RNG calls -> reproducible.
        """
        hours = t1 - t0
        expected = envelope_rps * 3600.0 * hours
        n = int(rng.poisson(expected))
        if n == 0:
            return np.empty(0)
        times = t0 + rng.random(n) * hours
        keep = rng.random(n) * envelope_rps < rate_fn(times)
        return times[keep]
