"""Text table rendering."""

from repro.harness import format_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [["vgg11", 1.5], ["r18", 20]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000123], [12345.6], [1.5]])
        assert "0.000123" in out
        assert "1.23e+04" in out or "12345" in out.replace(",", "")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_series_header_and_rows(self):
        out = format_series("fig4b", [4, 8], [1.0, 2.0],
                            x_label="socs", y_label="latency")
        assert out.startswith("[fig4b]")
        assert "socs" in out and "latency" in out
        assert "4" in out and "8" in out
