"""Deep Gradient Compression: top-k + residual properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import DgcCompressor, SparseGradient


class TestSparseGradient:
    def test_densify_roundtrip(self):
        sparse = SparseGradient(indices=np.array([1, 3]),
                                values=np.array([2.0, -1.0],
                                                dtype=np.float32),
                                shape=(5,))
        np.testing.assert_allclose(sparse.densify(), [0, 2, 0, -1, 0])

    def test_wire_bytes(self):
        sparse = SparseGradient(np.array([0]), np.array([1.0]), (10,))
        assert sparse.wire_bytes == 8
        assert sparse.nnz == 1


class TestDgc:
    def test_keeps_largest_magnitudes(self):
        comp = DgcCompressor(ratio=0.25)
        grad = np.array([0.1, -5.0, 0.2, 3.0], dtype=np.float32)
        sparse = comp.compress("w", grad)
        assert sparse.nnz == 1
        assert sparse.values[0] == pytest.approx(-5.0)

    def test_residual_accumulates_dropped_mass(self):
        comp = DgcCompressor(ratio=0.25)
        grad = np.array([1.0, 10.0, 1.0, 1.0], dtype=np.float32)
        comp.compress("w", grad)
        # second round: the 1.0 entries have doubled in the residual sum
        sparse2 = comp.compress("w", grad)
        dense2 = sparse2.densify()
        assert dense2.max() == pytest.approx(10.0)  # fresh top value again

    def test_nothing_lost_over_rounds(self):
        """Conservation: transmitted + residual == total gradient mass."""
        comp = DgcCompressor(ratio=0.3)
        rng = np.random.default_rng(0)
        total_sent = np.zeros(20, dtype=np.float64)
        total_grad = np.zeros(20, dtype=np.float64)
        for _ in range(10):
            grad = rng.standard_normal(20).astype(np.float32)
            total_grad += grad
            total_sent += comp.compress("w", grad).densify()
        residual = comp._residuals["w"]
        np.testing.assert_allclose(total_sent + residual, total_grad,
                                   atol=1e-4)

    def test_ratio_one_sends_everything(self):
        comp = DgcCompressor(ratio=1.0)
        grad = np.random.default_rng(1).standard_normal(16).astype(np.float32)
        sparse = comp.compress("w", grad)
        np.testing.assert_allclose(sparse.densify(), grad, atol=1e-6)

    def test_min_keep_floor(self):
        comp = DgcCompressor(ratio=0.001, min_keep=2)
        sparse = comp.compress("w", np.ones(10, dtype=np.float32))
        assert sparse.nnz == 2

    def test_per_name_residuals_independent(self):
        comp = DgcCompressor(ratio=0.5)
        comp.compress("a", np.array([1.0, 2.0], dtype=np.float32))
        comp.compress("b", np.array([3.0, 4.0], dtype=np.float32))
        assert set(comp._residuals) == {"a", "b"}

    def test_reset_clears_residuals(self):
        comp = DgcCompressor(ratio=0.5)
        comp.compress("a", np.ones(4, dtype=np.float32))
        comp.reset()
        assert comp._residuals == {}

    def test_compression_ratio_accounts_for_indices(self):
        assert DgcCompressor(ratio=0.01).compression_ratio() == \
            pytest.approx(0.02)

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            DgcCompressor(ratio=0.0)

    @given(st.integers(0, 10_000), st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_nnz_matches_ratio(self, seed, ratio):
        comp = DgcCompressor(ratio=ratio)
        grad = np.random.default_rng(seed).standard_normal(100).astype(
            np.float32)
        sparse = comp.compress("w", grad)
        assert sparse.nnz == max(1, int(round(ratio * 100)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_multi_dim_shapes_preserved(self, seed):
        comp = DgcCompressor(ratio=0.1)
        grad = np.random.default_rng(seed).standard_normal(
            (4, 3, 2)).astype(np.float32)
        assert comp.compress("w", grad).densify().shape == (4, 3, 2)
