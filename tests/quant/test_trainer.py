"""Int8Trainer: stability, weight-master semantics, gradient clipping."""

import numpy as np
import pytest

from repro.nn.models import LeNet5
from repro.quant import Int8Trainer, QuantConfig


def tiny_model():
    return LeNet5(num_classes=4, in_channels=1, image_size=12, width=0.3,
                  seed=0)


def batch(rng, n=16):
    x = rng.standard_normal((n, 1, 12, 12)).astype(np.float32)
    y = rng.integers(0, 4, size=n)
    return x, y


class TestTraining:
    def test_loss_decreases_on_memorized_batch(self):
        rng = np.random.default_rng(0)
        model = tiny_model()
        trainer = Int8Trainer(model, lr=0.05, config=QuantConfig(),
                              momentum=0.9, seed=0)
        x, y = batch(rng)
        first = trainer.train_step(x, y)
        for _ in range(25):
            last = trainer.train_step(x, y)
        assert last < first

    def test_weights_stay_fp32_masters(self):
        """Weights between steps must NOT be on the INT8 grid — FP32
        masters accumulate sub-grid updates."""
        rng = np.random.default_rng(1)
        model = tiny_model()
        trainer = Int8Trainer(model, lr=1e-4, config=QuantConfig(), seed=0)
        x, y = batch(rng)
        before = model.parameters()[0].data.copy()
        trainer.train_step(x, y)
        after = model.parameters()[0].data
        delta = np.abs(after - before).max()
        grid_step = np.abs(before).max() / 127
        assert 0 < delta < grid_step  # a sub-grid update survived

    def test_predict_logits_restores_weights(self):
        rng = np.random.default_rng(2)
        model = tiny_model()
        trainer = Int8Trainer(model, lr=0.01, config=QuantConfig(), seed=0)
        x, _ = batch(rng)
        before = model.parameters()[0].data.copy()
        trainer.predict_logits(x)
        np.testing.assert_array_equal(model.parameters()[0].data, before)

    def test_activation_quantizers_attached(self):
        from repro.nn.modules import Conv2d, Linear
        model = tiny_model()
        Int8Trainer(model, lr=0.01, config=QuantConfig(), seed=0)
        hooks = [m.output_quant for m in model.modules()
                 if isinstance(m, (Conv2d, Linear))]
        assert hooks and all(h is not None for h in hooks)

    def test_no_activation_quant_when_disabled(self):
        from repro.nn.modules import Conv2d, Linear
        model = tiny_model()
        Int8Trainer(model, lr=0.01,
                    config=QuantConfig(quantize_activations=False), seed=0)
        hooks = [m.output_quant for m in model.modules()
                 if isinstance(m, (Conv2d, Linear))]
        assert all(h is None for h in hooks)


class TestGradientClipping:
    def test_clip_bounds_global_norm(self):
        rng = np.random.default_rng(3)
        model = tiny_model()
        trainer = Int8Trainer(model, lr=0.0001, config=QuantConfig(
            quantize_gradients=False), seed=0, max_grad_norm=0.5)
        x, y = batch(rng, 8)
        trainer.train_step(100.0 * x, y)  # huge inputs -> huge grads
        total = sum(float((p.grad.astype(np.float64) ** 2).sum())
                    for p in model.parameters() if p.grad is not None)
        assert np.sqrt(total) <= 0.5 * 1.01

    def test_small_gradients_untouched(self):
        rng = np.random.default_rng(4)
        model = tiny_model()
        trainer = Int8Trainer(model, lr=1e-5, config=QuantConfig(
            quantize_gradients=False, quantize_activations=False,
            quantize_weights=False), seed=0, max_grad_norm=1e9)
        x, y = batch(rng, 8)
        trainer.train_step(x, y)
        total = sum(float((p.grad ** 2).sum())
                    for p in model.parameters() if p.grad is not None)
        assert total > 0  # clipping at a huge bound changed nothing


class TestLrProperty:
    def test_lr_roundtrip(self):
        trainer = Int8Trainer(tiny_model(), lr=0.05, config=QuantConfig(),
                              seed=0)
        trainer.lr = 0.001
        assert trainer.lr == 0.001
        assert trainer.optimizer.lr == 0.001
