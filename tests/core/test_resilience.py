"""Recovery invariants, property-based.

After any fault schedule the cluster must end up in a state the
paper's theorems still describe: every survivor sits in exactly one
logical group, the integrity-greedy bounds (Theorems 1-2) hold on the
survivor subset, and parameters are conserved through rollback and
merge.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (ClusterTopology, FaultInjector, FaultSchedule,
                           SoCCrash)
from repro.core import (CommunicationPlan, SoCFlow, SoCFlowOptions,
                        contention_degree, integrity_greedy_mapping,
                        naive_mapping, survivor_group_count)
from repro.harness import make_run_config

# a survivor scenario: cluster size, dead subset, requested group count
survivor_cases = st.integers(10, 60).flatmap(lambda num_socs: st.tuples(
    st.just(num_socs),
    st.sets(st.integers(0, num_socs - 1), max_size=num_socs - 1),
    st.integers(1, 8),
))


def _survivors(num_socs, dead):
    return [s for s in range(num_socs) if s not in dead]


class TestSurvivorMappingInvariants:
    @given(survivor_cases)
    @settings(max_examples=120, deadline=None)
    def test_every_survivor_in_exactly_one_group(self, case):
        num_socs, dead, groups_wanted = case
        alive = _survivors(num_socs, dead)
        num_groups = min(groups_wanted, len(alive))
        topo = ClusterTopology(num_socs=num_socs)
        mapping = integrity_greedy_mapping(topo, num_groups, alive=set(alive))
        placed = [s for socs in mapping.groups for s in socs]
        assert sorted(placed) == alive          # partition: all, exactly once
        assert all(socs for socs in mapping.groups)

    @given(survivor_cases)
    @settings(max_examples=120, deadline=None)
    def test_theorem_bounds_hold_on_survivors(self, case):
        num_socs, dead, groups_wanted = case
        alive = set(_survivors(num_socs, dead))
        num_groups = min(groups_wanted, len(alive))
        topo = ClusterTopology(num_socs=num_socs)
        mapping = integrity_greedy_mapping(topo, num_groups, alive=alive)
        # Theorem 2: each group contends with at most 2 others per NIC
        for g in range(mapping.num_groups):
            assert contention_degree(mapping, g) <= 2
        # which is what lets the CG colouring stay at two classes
        assert CommunicationPlan.from_mapping(mapping).num_cgs <= 2
        # Theorem 1: no worse than the naive layout on the same survivors
        baseline = naive_mapping(topo, num_groups, alive=alive)
        assert mapping.conflict_count() <= baseline.conflict_count()

    @given(survivor_cases)
    @settings(max_examples=120, deadline=None)
    def test_group_sizes_stay_balanced(self, case):
        num_socs, dead, groups_wanted = case
        alive = set(_survivors(num_socs, dead))
        num_groups = min(groups_wanted, len(alive))
        topo = ClusterTopology(num_socs=num_socs)
        mapping = integrity_greedy_mapping(topo, num_groups, alive=alive)
        sizes = [len(socs) for socs in mapping.groups]
        assert max(sizes) - min(sizes) <= 1


class TestSurvivorGroupCount:
    @given(st.integers(1, 60), st.integers(1, 16), st.integers(1, 60))
    @settings(max_examples=200, deadline=None)
    def test_result_always_usable(self, num_alive, prev_groups, prev_socs):
        n = survivor_group_count(num_alive, prev_groups, prev_socs)
        assert 1 <= n <= min(num_alive, prev_groups)

    @given(st.integers(1, 16), st.integers(1, 60), st.integers(1, 59))
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_survivors(self, prev_groups, prev_socs, num_alive):
        fewer = survivor_group_count(num_alive, prev_groups, prev_socs)
        more = survivor_group_count(num_alive + 1, prev_groups, prev_socs)
        assert more >= fewer

    def test_no_deaths_keeps_group_count(self):
        assert survivor_group_count(32, 8, 32) == 8

    def test_group_size_preserving_kill(self):
        # 32 SoCs / 7 groups -> size 4; killing 4 leaves 28 = 7 * 4
        assert survivor_group_count(28, 7, 32) == 7

    def test_heavy_losses_shrink_group_count(self):
        assert survivor_group_count(8, 8, 32) == 2
        assert survivor_group_count(3, 8, 32) == 1


def _quick_config(schedule, num_groups=4, epochs=3, socs=16):
    return make_run_config("vgg11", "quick", num_socs=socs,
                           num_groups=num_groups, max_epochs=epochs,
                           fault_schedule=schedule)


class TestEndToEndRecovery:
    def test_final_groups_partition_survivors(self):
        schedule = FaultSchedule((SoCCrash(1, 2), SoCCrash(1, 7),
                                  SoCCrash(2, 11)))
        result = SoCFlow(SoCFlowOptions()).train(_quick_config(schedule))
        extra = result.extra
        assert extra["aborted"] is False
        assert extra["dead_socs"] == [2, 7, 11]
        placed = sorted(s for g in extra["final_groups"] for s in g)
        assert placed == [s for s in range(16) if s not in {2, 7, 11}]
        assert len(extra["recoveries"]) == 2        # dead set changed twice

    def test_recovery_rolls_back_to_last_merge(self):
        schedule = FaultSchedule((SoCCrash(2, 0),))
        result = SoCFlow(SoCFlowOptions()).train(_quick_config(schedule))
        (recovery,) = result.extra["recoveries"]
        assert recovery["epoch"] == 2
        assert recovery["rolled_back_to"] == 1
        assert recovery["recovery_seconds"] > 0

    def test_parameters_conserved_through_rollback_and_merge(self):
        schedule = FaultSchedule((SoCCrash(1, 3), SoCCrash(1, 4)))
        faulted = SoCFlow(SoCFlowOptions()).train(_quick_config(schedule))
        clean = SoCFlow(SoCFlowOptions()).train(_quick_config(None))
        faulted_state = faulted.extra["final_state"]
        clean_state = clean.extra["final_state"]
        assert set(faulted_state) == set(clean_state)
        for key in clean_state:
            assert faulted_state[key].shape == clean_state[key].shape
            assert np.all(np.isfinite(faulted_state[key]))

    def test_crash_with_recovery_regrows_groups(self):
        schedule = FaultSchedule((SoCCrash(1, 0, recover_epoch=3),))
        result = SoCFlow(SoCFlowOptions()).train(
            _quick_config(schedule, epochs=4))
        recoveries = result.extra["recoveries"]
        assert [r["epoch"] for r in recoveries] == [1, 3]
        assert result.extra["dead_socs"] == []
        placed = sorted(s for g in result.extra["final_groups"] for s in g)
        assert placed == list(range(16))

    def test_all_dead_run_stops_gracefully(self):
        crashes = tuple(SoCCrash(1, s) for s in range(16))
        result = SoCFlow(SoCFlowOptions()).train(_quick_config(
            FaultSchedule(crashes), epochs=3))
        # only epoch 0 trained before the cluster died
        assert len(result.accuracy_history) == 1
        assert result.extra["all_dead_epoch"] == 1

    def test_injected_random_schedule_still_completes(self):
        topo = ClusterTopology(num_socs=16)
        schedule = FaultInjector(topo, seed=11).sample(
            4, num_crashes=3, num_flaps=1, num_stragglers=1)
        result = SoCFlow(SoCFlowOptions()).train(
            _quick_config(schedule, epochs=4))
        assert result.extra["aborted"] is False
        assert len(result.accuracy_history) == 4
        dead = set(result.extra["dead_socs"])
        placed = sorted(s for g in result.extra["final_groups"] for s in g)
        assert placed == [s for s in range(16) if s not in dead]

    def test_nic_flap_charges_retries(self):
        from repro.cluster import NicDegradation
        schedule = FaultSchedule((NicDegradation(1, 0, 0.1,
                                                 recover_epoch=3),))
        result = SoCFlow(SoCFlowOptions()).train(
            _quick_config(schedule, epochs=4))
        assert result.extra["network_retries"] > 0
        clean = SoCFlow(SoCFlowOptions()).train(_quick_config(None, epochs=4))
        assert result.sim_time_s > clean.sim_time_s


class TestMappingRejectsBadSurvivors:
    def test_empty_survivor_set(self):
        topo = ClusterTopology(num_socs=10)
        with pytest.raises(ValueError):
            integrity_greedy_mapping(topo, 1, alive=set())

    def test_more_groups_than_survivors(self):
        topo = ClusterTopology(num_socs=10)
        with pytest.raises(ValueError):
            integrity_greedy_mapping(topo, 5, alive={0, 1, 2})
