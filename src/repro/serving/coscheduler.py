"""SLO-aware training/serving co-scheduling.

:class:`ServingCoScheduler` closes the loop the ISSUE's tentpole asks
for: the serving plane and the training tenants bid for the same SoCs.
Each scheduling round, *before* training capacity is computed, the
plane advances to the round's start — serving the requests that arrived
since the last round and re-running its autoscaler.  Scale-ups claim
from the idle pool first; only when that runs dry does the plane
publish a deficit, which this scheduler settles by preempting the
highest-numbered training-held SoCs (training prefers low ids, serving
high ids, so the two pools churn at one boundary instead of
fragmenting).  The preemption itself rides the existing warm-checkpoint
path: the victims simply vanish from this round's capacity, and the
base class's fair-share allocator shrinks or preempts the affected jobs
exactly as it would for a session surge.  As load ebbs the plane
releases SoCs and training grows back into them through the normal
elastic surplus grant.

Serving *is* the day job here: the co-scheduler is normally built with
an empty session list, because the request stream — not a canned busy
curve — generates the idle-SoC signal.  (Sessions can still be supplied
to model a second, opaque tenant.)
"""

from __future__ import annotations

from ..cluster.topology import ClusterTopology
from ..jobs.scheduler import ElasticScheduler, ScheduleReport
from .plane import ServingPlane

__all__ = ["ServingCoScheduler"]


class ServingCoScheduler(ElasticScheduler):
    """:class:`~repro.jobs.scheduler.ElasticScheduler` sharing the
    cluster with a :class:`~repro.serving.plane.ServingPlane`.

    The plane must cover the scheduler's horizon (its arrival process
    is pre-generated) and is advanced only from the round loop, so the
    workload realisation is identical across scheduling policies.
    """

    def __init__(self, topology: ClusterTopology, plane: ServingPlane,
                 *, sessions=None, **kwargs):
        super().__init__(topology, sessions or [], **kwargs)
        self.plane = plane
        # one timeline: plane spans must land on the scheduler's clock
        plane.sim_zero_hour = self.start_hour
        if plane.arrivals.start_hour > self.start_hour + 1e-9 or \
                plane.arrivals.end_hour < self.start_hour \
                + self.horizon_hours - 1e-9:
            raise ValueError(
                "arrival process does not cover the scheduling horizon")

    # ------------------------------------------------------------------
    def _training_held(self) -> "set[int]":
        held: set[int] = set()
        for ex in self._execs.values():
            if ex.running and not ex.complete:
                held.update(ex.allocated)
        return held

    def _free_pool(self, round_index: int) -> "list[int]":
        """SoCs nobody holds: not dead, not serving, not training."""
        dead = self._dead_socs(round_index)
        held = self.plane.held_socs
        training = self._training_held()
        return [s for s in range(self.topology.num_socs)
                if s not in dead and s not in held and s not in training]

    # ------------------------------------------------------------------
    # Round hooks
    # ------------------------------------------------------------------
    def _begin_round(self, hour: float, round_index: int) -> None:
        plane = self.plane
        free = self._free_pool(round_index)
        if round_index == 0 and plane.autoscale and not plane.replicas:
            plane.bootstrap(free, hour)
        plane.advance(hour, claimable=free)
        if plane.pending_deficit > 0:
            # idle pool exhausted: preempt training, highest ids first
            dead = self._dead_socs(round_index)
            victims = sorted(
                (s for s in self._training_held() if s not in dead),
                reverse=True)[:plane.pending_deficit]
            plane.grant(victims, hour)

    def _end_run(self, hour: float) -> None:
        self.plane.advance(hour, claimable=self._free_pool(0), flush=True)

    # ------------------------------------------------------------------
    def _idle_socs(self, hour: float, round_index: int) -> list:
        """Training-available SoCs: alive, un-served, session-free."""
        busy = self._session_index.busy_socs_at(hour % 24.0)
        dead = self._dead_socs(round_index)
        held = self.plane.held_socs
        return [s for s in range(self.topology.num_socs)
                if s not in busy and s not in dead and s not in held]

    # ------------------------------------------------------------------
    def run(self) -> ScheduleReport:
        report = super().run()
        report.extra["serving"] = self.plane.summary()
        metrics = self.telemetry.metrics
        if metrics.enabled:
            metrics.gauge("serving.replica_soc_hours").set(
                self.plane.replica_soc_hours)
        return report
