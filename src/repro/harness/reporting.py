"""Plain-text table/series rendering for the benchmark harness.

This is the fallback renderer behind the telemetry subsystem's
per-epoch and metrics summaries (:mod:`repro.telemetry.export`) as
well as the benchmark suite's figure tables.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e7:
            return f"{value:.3e}"
        if abs(value) >= 1000:
            # fixed-point keeps wide columns comparable digit-for-digit
            # (scientific notation made >1e4 values unalignable)
            return f"{value:,.1f}"
        if abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table with a header rule.

    Columns whose every non-empty value is a number are right-aligned,
    so signs and magnitudes line up (mixed columns and labels stay
    left-aligned).
    """
    table = [[_cell(v) for v in row] for row in rows]
    numeric = [all(_is_numeric(row[i]) or row[i] in ("", None)
                   for row in rows) and any(_is_numeric(row[i])
                                            for row in rows)
               for i in range(len(headers))] if rows else \
              [False] * len(headers)
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]

    def line(cells):
        return "  ".join(c.rjust(w) if right else c.ljust(w)
                         for c, w, right in zip(cells, widths, numeric))
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in table])


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned columns."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return f"[{name}]\n" + format_table([x_label, y_label], rows)
