"""A compact Vision Transformer — the paper's §5 future-work model.

"The recent developments of mobile NPUs open up more opportunities for
SoCFlow to train relatively larger DNNs, including Transformers, on
SoC-Cluster."  This ViT-style classifier exercises exactly the pieces
CNNs don't: LayerNorm, multi-head self-attention and GELU MLPs, all
expressed through the same autograd engine so every SoCFlow strategy
can train it unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from .. import functional as F
from .. import init
from ..modules import Conv2d, Linear, Module, Sequential
from ..tensor import Tensor

__all__ = ["LayerNorm", "MultiHeadAttention", "TransformerBlock", "VisionTransformer"]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = self.register_parameter(
            "weight", Tensor(init.ones((dim,))))
        self.bias = self.register_parameter(
            "bias", Tensor(init.zeros((dim,))))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class GELU(Module):
    """Tanh-approximated GELU (the mobile-friendly form)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = 0.7978845608 * (x + 0.044715 * x * x * x)
        return x * 0.5 * (1.0 + inner.tanh())


class MultiHeadAttention(Module):
    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must divide evenly into heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)                       # (B, T, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)      # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale   # (B, H, T, T)
        attention = F.softmax(scores, axis=-1)
        out = attention @ v                     # (B, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj(out)


class TransformerBlock(Module):
    """Pre-norm attention + MLP with residuals."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float,
                 rng: np.random.Generator):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadAttention(dim, num_heads, rng)
        self.norm2 = LayerNorm(dim)
        hidden = int(dim * mlp_ratio)
        self.mlp = Sequential(
            Linear(dim, hidden, rng),
            GELU(),
            Linear(hidden, dim, rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.mlp(self.norm2(x))


class VisionTransformer(Module):
    """ViT-style classifier over small images.

    Patches come from a strided convolution; a learned position
    embedding is added; mean-pooled tokens feed the classifier head.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, width: float = 1.0, seed: int = 0,
                 patch_size: int = 4, depth: int = 4, num_heads: int = 4):
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image_size must be a multiple of patch_size")
        rng = np.random.default_rng(seed)
        dim = max(num_heads, int(round(128 * width)))
        dim -= dim % num_heads
        self.patch_embed = Conv2d(in_channels, dim, patch_size, rng,
                                  stride=patch_size)
        tokens = (image_size // patch_size) ** 2
        self.pos_embed = self.register_parameter(
            "pos_embed",
            Tensor(0.02 * rng.standard_normal((1, tokens, dim))
                   .astype(np.float32)))
        self.blocks = Sequential(*[
            TransformerBlock(dim, num_heads, mlp_ratio=2.0, rng=rng)
            for _ in range(depth)])
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        patches = self.patch_embed(x)            # (B, D, H', W')
        batch, dim = patches.shape[0], patches.shape[1]
        tokens = patches.reshape(batch, dim, -1).transpose(0, 2, 1)
        tokens = tokens + self.pos_embed
        tokens = self.blocks(tokens)
        pooled = self.norm(tokens).mean(axis=1)  # (B, D)
        return self.head(pooled)
