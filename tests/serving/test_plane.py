"""Serving-plane tests: batching queue, SLO tracking, the autoscaler."""

import pytest

from repro.serving import (ArrivalProcess, FlashCrowd, Region,
                           ServiceModel, ServingPlane)
from repro.telemetry import Telemetry


def service(per_request_s=0.1, batch_overhead_s=0.1, max_batch=4):
    return ServiceModel("m", per_request_s=per_request_s,
                        batch_overhead_s=batch_overhead_s,
                        max_batch=max_batch)


def plane_for(times, svc=None, horizon=1.0, **kw):
    arrivals = ArrivalProcess.from_times(times, horizon_hours=horizon)
    kw.setdefault("slo_ms", 1000.0)
    kw.setdefault("check_interval_hours", 0.25)
    return ServingPlane(arrivals, svc or service(), **kw)


def drive(plane, until, socs=8):
    free = [s for s in range(socs) if s not in plane.held_socs]
    plane.bootstrap(free, plane.arrivals.start_hour)
    h = plane.arrivals.start_hour
    while h < until:
        h = min(h + 0.25, until)
        free = [s for s in range(socs) if s not in plane.held_socs]
        plane.advance(h, claimable=free)
    plane.advance(until, claimable=free, flush=True)


class TestBatching:
    def test_simultaneous_requests_share_one_batch(self):
        plane = plane_for([0.1, 0.1, 0.1, 0.1])
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        stats = plane.windows[0]
        assert stats.served == 4
        assert plane.replicas[0].batches == 1
        # every request waited only for the one batch: overhead + 4*per
        assert stats.p99_ms == pytest.approx(500.0, rel=1e-6)

    def test_second_batch_queues_behind_first(self):
        svc = service()                  # batch of 1 takes 0.2 s
        t0 = 0.1
        t1 = 0.1 + 0.05 / 3600.0         # arrives while batch 1 runs
        plane = plane_for([t0, t1], svc)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        stats = plane.windows[0]
        assert plane.replicas[0].batches == 2
        # second request: waits 0.2 s minus its 0.05 s lateness, then
        # its own 0.2 s batch
        assert stats.p99_ms == pytest.approx(350.0, rel=1e-6)

    def test_batch_respects_max_batch(self):
        plane = plane_for([0.1] * 6)     # 6 simultaneous, max_batch 4
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        assert plane.replicas[0].batches == 2
        assert plane.total_served == 6

    def test_requests_spread_across_replicas(self):
        plane = plane_for([0.1] * 8, autoscale=False)
        plane.provision([0, 1], 0.0)
        plane.advance(1.0, flush=True)
        assert plane.replicas[0].batches == 1
        assert plane.replicas[1].batches == 1

    def test_sheds_after_timeout(self):
        # one replica, 0.2 s/batch-of-1, 40 simultaneous arrivals, shed
        # at 1 s: only ~5 batches (of up to 4) can start inside 1 s + a
        # short tail; the rest drop and are counted
        plane = plane_for([0.1] * 40, shed_after_s=1.0)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        assert plane.total_dropped > 0
        assert plane.total_served + plane.total_dropped \
            + (len(plane._queue) - plane._head) == 40

    def test_no_replicas_queues_then_flags_violation(self):
        plane = plane_for([0.1, 0.2], autoscale=False, shed_after_s=1e9)
        plane.advance(1.0, flush=True)
        assert plane.total_served == 0
        stats = plane.windows[0]
        assert stats.queue_depth == 2
        assert stats.violation


class TestSLO:
    def test_violation_window_counted(self):
        svc = service(per_request_s=0.3)      # batch of 1 = 0.4 s
        plane = plane_for([0.1], svc, slo_ms=300.0)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        assert plane.violation_windows == 1
        assert plane.windows[0].violation

    def test_fast_service_no_violation(self):
        plane = plane_for([0.1], slo_ms=300.0)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        assert plane.violation_windows == 0


class TestAutoscaler:
    def test_scales_up_for_demand(self):
        proc = ArrivalProcess([Region("g", 20.0)], horizon_hours=24.0,
                              seed=0)
        plane = ServingPlane(proc, service(), slo_ms=2000.0,
                             min_replicas=1)
        drive(plane, 24.0, socs=16)
        # peak demand (20 rps vs ~12 rps/replica at 60% util) needs >1
        assert max(w.replicas for w in plane.windows) > 1
        assert plane.scale_ups > 0

    def test_claims_highest_ids_first(self):
        proc = ArrivalProcess([Region("g", 20.0)], horizon_hours=24.0,
                              seed=0)
        plane = ServingPlane(proc, service(), slo_ms=2000.0,
                             min_replicas=1)
        free = list(range(16))
        plane.bootstrap(free, 0.0)
        assert plane.held_socs == {15}
        plane.advance(14.0, claimable=free)      # through the peak
        assert all(s >= 8 for s in plane.held_socs)

    def test_scales_down_when_load_ebbs(self):
        proc = ArrivalProcess([Region("g", 20.0)], horizon_hours=24.0,
                              seed=0)
        plane = ServingPlane(proc, service(), min_replicas=1,
                             scale_down_patience=2)
        drive(plane, 24.0, socs=16)
        assert plane.scale_downs > 0
        # overnight trough is back at the floor
        assert plane.windows[-1].replicas == 1

    def test_publishes_deficit_when_pool_dry(self):
        proc = ArrivalProcess([Region("g", 40.0)], horizon_hours=15.0,
                              seed=0)
        plane = ServingPlane(proc, service(), min_replicas=1)
        free = [0]
        plane.bootstrap(free, 0.0)
        plane.advance(14.0, claimable=free)      # peak, nothing to claim
        assert plane.pending_deficit > 0

    def test_grant_settles_deficit_and_counts_preemptions(self):
        proc = ArrivalProcess([Region("g", 40.0)], horizon_hours=15.0,
                              seed=0)
        plane = ServingPlane(proc, service(), min_replicas=1)
        free = [0]
        plane.bootstrap(free, 0.0)
        plane.advance(14.0, claimable=free)
        deficit = plane.pending_deficit
        plane.grant(list(range(1, 1 + deficit)), 14.0)
        assert plane.pending_deficit == 0
        assert plane.preempted_socs == deficit

    def test_respects_max_replicas(self):
        proc = ArrivalProcess([Region("g", 100.0)], horizon_hours=24.0,
                              seed=0)
        plane = ServingPlane(proc, service(), min_replicas=1,
                             max_replicas=3)
        drive(plane, 24.0, socs=32)
        assert max(w.replicas for w in plane.windows) <= 3

    def test_frozen_pool_without_autoscale(self):
        proc = ArrivalProcess([Region("g", 40.0)], horizon_hours=24.0,
                              seed=0)
        plane = ServingPlane(proc, service(), autoscale=False)
        plane.provision(list(range(4)), 0.0)
        drive(plane, 24.0, socs=16)
        assert plane.scale_ups == 0
        assert plane.scale_downs == 0
        assert plane.held_socs == {0, 1, 2, 3}


class TestDeterminismAndTelemetry:
    def test_bit_identical_reruns(self):
        def run():
            proc = ArrivalProcess(
                [Region("g", 20.0)], horizon_hours=24.0, seed=5,
                flash_crowds=[FlashCrowd(13.0, 1.0, 3.0)])
            plane = ServingPlane(proc, service(), min_replicas=1)
            drive(plane, 24.0, socs=16)
            return plane.summary()
        assert run() == run()

    def test_emits_spans_and_metrics(self):
        telemetry = Telemetry.active()
        telemetry.metrics.histogram_reservoir = 512
        plane = plane_for([0.1, 0.2, 0.3], telemetry=telemetry)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        serve_spans = [r for r in telemetry.tracer.records
                       if r.kind == "serve"]
        assert len(serve_spans) == len(plane.windows)
        assert sum(s.args["served"] for s in serve_spans) == 3
        hist = telemetry.metrics.histogram("serving.latency_ms")
        assert hist.count == 3
        assert telemetry.metrics.counter("serving.requests").value == 3

    def test_summary_latency_block_from_histogram(self):
        telemetry = Telemetry.active()
        plane = plane_for([0.1] * 4, telemetry=telemetry)
        plane.provision([0], 0.0)
        plane.advance(1.0, flush=True)
        summary = plane.summary()
        assert summary["latency_ms"]["p99"] == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            plane_for([], slo_ms=0.0)
        with pytest.raises(ValueError):
            plane_for([], target_utilisation=1.5)
        with pytest.raises(ValueError):
            plane_for([], min_replicas=2, max_replicas=1)
        with pytest.raises(ValueError):
            plane_for([], check_interval_hours=0.0)

    def test_provision_rejects_duplicate(self):
        plane = plane_for([])
        plane.provision([0], 0.0)
        with pytest.raises(ValueError):
            plane.provision([0], 0.0)
