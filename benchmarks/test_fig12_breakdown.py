"""Figure 12: training-time breakdown (Compute / Sync / Update).

The paper's reading: RING spends ~81% of its time synchronising,
HiPress/2D-Paral ~70-77%, FedAvg only ~16-35%, and SoCFlow lands in the
middle (~46%) thanks to hierarchical aggregation.
"""

from conftest import print_block

from repro.harness import format_table

METHODS_FIG12 = ["socflow", "ring", "hipress", "2d_paral", "fedavg"]


def test_fig12_time_breakdown(benchmark, suite):
    def compute():
        table = {}
        for model in ("vgg11", "resnet18"):
            table[model] = {m: suite.run(model, m).phase_shares()
                            for m in METHODS_FIG12}
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    for model, shares in table.items():
        rows = [[m,
                 round(100 * shares[m].get("compute", 0), 1),
                 round(100 * shares[m].get("sync", 0), 1),
                 round(100 * shares[m].get("update", 0), 1)]
                for m in METHODS_FIG12]
        print_block(f"Figure 12: busy-time breakdown (%), {model}",
                    format_table(["method", "compute", "sync", "update"],
                                 rows))

    for model in table:
        sync = {m: table[model][m].get("sync", 0.0) for m in METHODS_FIG12}
        # the paper's ordering: DML baselines > SoCFlow > FedAvg
        assert sync["ring"] > sync["socflow"] > sync["fedavg"], model
        assert sync["ring"] > 0.4, model
        assert sync["fedavg"] < 0.35, model
        # SoCFlow below the DML band (paper: ~46%; compute-heavy models
        # hide even more sync under the planned schedule)
        assert 0.05 < sync["socflow"] < 0.80, model
