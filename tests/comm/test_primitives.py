"""State-dict averaging arithmetic."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import (average_states, state_l2_distance,
                        weighted_average_states, zeros_like_state)


def state(*values):
    return OrderedDict(w=np.array(values, dtype=np.float32))


class TestAverage:
    def test_uniform_average(self):
        out = average_states([state(1.0), state(3.0)])
        np.testing.assert_allclose(out["w"], [2.0])

    def test_single_state_identity(self):
        out = average_states([state(5.0)])
        np.testing.assert_allclose(out["w"], [5.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_weighted(self):
        out = weighted_average_states([state(0.0), state(10.0)], [3.0, 1.0])
        np.testing.assert_allclose(out["w"], [2.5])

    def test_weights_normalised(self):
        a = weighted_average_states([state(1.0), state(3.0)], [1, 1])
        b = weighted_average_states([state(1.0), state(3.0)], [100, 100])
        np.testing.assert_allclose(a["w"], b["w"])

    def test_merge_metrics_accounted(self):
        from repro.telemetry import MetricsRegistry
        reg = MetricsRegistry()
        out = average_states([state(1.0), state(3.0)], metrics=reg)
        assert reg.counter("comm.merges").value == 1
        nbytes = sum(np.asarray(v).nbytes for v in out.values())
        assert reg.counter("comm.merged_bytes").value == nbytes * 2

    def test_null_metrics_no_op(self):
        from repro.telemetry import NullMetricsRegistry
        out = average_states([state(1.0), state(3.0)],
                             metrics=NullMetricsRegistry())
        np.testing.assert_allclose(out["w"], [2.0])

    def test_mismatched_keys_raise(self):
        bad = OrderedDict(v=np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError, match="mismatched"):
            average_states([state(1.0), bad])

    def test_weight_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_average_states([state(1.0)], [1.0, 2.0])

    def test_nonpositive_weight_sum_raises(self):
        with pytest.raises(ValueError):
            weighted_average_states([state(1.0), state(2.0)], [1.0, -1.0])

    def test_preserves_dtype(self):
        out = average_states([state(1.0), state(2.0)])
        assert out["w"].dtype == np.float32

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_average_bounded_by_extremes(self, values):
        states = [state(v) for v in values]
        out = average_states(states)
        assert min(values) - 1e-3 <= out["w"][0] <= max(values) + 1e-3


class TestDistanceAndZeros:
    def test_l2_distance(self):
        assert state_l2_distance(state(0.0, 0.0), state(3.0, 4.0)) == \
            pytest.approx(5.0)

    def test_distance_zero_for_identical(self):
        s = state(1.0, 2.0)
        assert state_l2_distance(s, s) == 0.0

    def test_zeros_like(self):
        out = zeros_like_state(state(1.0, 2.0))
        np.testing.assert_array_equal(out["w"], [0.0, 0.0])
