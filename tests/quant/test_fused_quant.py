"""Fused segment quantisation must match per-tensor quantisation bit
for bit, including the stochastic-rounding random stream."""

import numpy as np
import pytest

from repro.quant.int8 import (QuantConfig, fake_quantize,
                              fake_quantize_segments)


def segmented_array(sizes, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    flat = (rng.standard_normal(sum(sizes)) * scale).astype(np.float32)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    return flat, starts, np.asarray(sizes, dtype=np.int64)


def perkey_reference(flat, starts, sizes, config, rng=None):
    out = np.empty_like(flat)
    for start, size in zip(starts, sizes):
        seg = flat[start:start + size]
        out[start:start + size] = fake_quantize(seg, config, rng=rng)
    return out


SIZES = [64, 1, 300, 7, 128]


@pytest.mark.parametrize("bits", [8, 4])
def test_deterministic_rounding_matches_per_tensor(bits):
    config = QuantConfig(bits=bits, stochastic_rounding=False)
    flat, starts, sizes = segmented_array(SIZES)
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))


def test_stochastic_rounding_consumes_identical_rng_stream():
    config = QuantConfig(bits=8, stochastic_rounding=True)
    flat, starts, sizes = segmented_array(SIZES, seed=3)
    fused = fake_quantize_segments(flat, starts, sizes, config,
                                   rng=np.random.default_rng(42))
    perkey = perkey_reference(flat, starts, sizes, config,
                              rng=np.random.default_rng(42))
    assert np.array_equal(fused, perkey)


def test_rng_position_identical_after_call():
    config = QuantConfig(bits=8, stochastic_rounding=True)
    flat, starts, sizes = segmented_array(SIZES, seed=5)
    rng_fused = np.random.default_rng(7)
    rng_perkey = np.random.default_rng(7)
    fake_quantize_segments(flat, starts, sizes, config, rng=rng_fused)
    perkey_reference(flat, starts, sizes, config, rng=rng_perkey)
    # downstream draws must agree, i.e. both consumed the same stream
    assert np.array_equal(rng_fused.random(8), rng_perkey.random(8))


def test_zero_segment_uses_unit_scale():
    config = QuantConfig(bits=8, stochastic_rounding=False)
    flat, starts, sizes = segmented_array([16, 16, 16], seed=1)
    flat[16:32] = 0.0
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))
    assert np.all(fused[16:32] == 0.0)


def test_float16_format_matches_per_tensor():
    config = QuantConfig(float16=True)
    flat, starts, sizes = segmented_array(SIZES, seed=2)
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))


def test_extreme_magnitudes_match_per_tensor():
    config = QuantConfig(bits=8, stochastic_rounding=False)
    flat, starts, sizes = segmented_array([32, 32], seed=4, scale=1e30)
    flat[32:] *= 1e-60  # second segment tiny
    fused = fake_quantize_segments(flat, starts, sizes, config)
    assert np.array_equal(fused, perkey_reference(flat, starts, sizes,
                                                  config))
