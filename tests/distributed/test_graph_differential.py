"""Differential harness: ``--graph`` may not move ANYTHING observable.

The graph executor replays a compiled training step instead of
re-interpreting the autograd tape, so a ``graph=True`` run must be a
pure host-side optimisation: for every registered strategy (plus
SoCFlow) it must produce

- bit-identical learning: the same accuracy history and, for SoCFlow,
  the byte-identical final state;
- an identical simulated wall clock (the executor changes host time
  only; simulated time prices the modelled cluster, which is
  unchanged);
- identical metrics except the ``graph.*`` counters the executor
  itself contributes.

The contract must survive worker processes, injected faults (whose
re-grouping rebinds parameter storage and must invalidate captured
programs mid-run, not corrupt them) and tracing.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (ClusterTopology, FaultSchedule, NicDegradation,
                          SoCCrash)
from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import STRATEGY_REGISTRY, RunConfig, build_strategy
from repro.telemetry import MetricsRegistry, Telemetry, Tracer

METHODS = sorted(STRATEGY_REGISTRY) + ["socflow"]

#: strategies that attach the executor to a host-side model when
#: ``graph=True`` (hipress keeps its DGC gradient hook eager; every
#: other method must still be bit-identical with the flag on, trivially)
GRAPH_AWARE = {"local", "ps", "ring", "2d_paral", "fedavg", "t_fedavg",
               "ssp", "socflow"}


def base_config(tiny_task, **overrides):
    kwargs = dict(
        task=tiny_task, model_name="vgg11", width=0.15, batch_size=16,
        lr=0.05, momentum=0.9, max_epochs=2, seed=0,
        topology=ClusterTopology(num_socs=16),
        sim_samples_per_epoch=50_000, sim_global_batch=64, num_groups=4)
    kwargs.update(overrides)
    return RunConfig(**kwargs)


def run(config, method, options=None):
    metrics = MetricsRegistry()
    config = dataclasses.replace(
        config, telemetry=Telemetry(metrics=metrics))
    if method == "socflow":
        result = SoCFlow(options or SoCFlowOptions()).train(config)
    else:
        result = build_strategy(method).train(config)
    return result, metrics


def non_graph_metrics(metrics):
    """Every series except the executor's own ``graph.*`` counters."""
    return [r for r in metrics.collect()
            if not r["name"].startswith("graph.")]


def assert_differential(ref, ref_metrics, graphed, graphed_metrics):
    __tracer__ = "hide"
    assert graphed.accuracy_history == ref.accuracy_history
    assert graphed.epochs_run == ref.epochs_run
    assert graphed.sim_time_s == ref.sim_time_s
    assert graphed.breakdown == ref.breakdown
    assert non_graph_metrics(graphed_metrics) == non_graph_metrics(
        ref_metrics)
    if "final_state" in ref.extra:
        a, b = ref.extra["final_state"], graphed.extra["final_state"]
        assert list(a) == list(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key


@pytest.fixture(scope="module")
def references(tiny_task):
    """One eager (graph=False) run per method, shared across tests."""
    return {method: run(base_config(tiny_task), method)
            for method in METHODS}


@pytest.mark.parametrize("method", METHODS)
def test_graph_run_is_differentially_identical(references, tiny_task,
                                               method):
    ref, ref_metrics = references[method]
    graphed, graphed_metrics = run(base_config(tiny_task, graph=True),
                                   method)
    assert_differential(ref, ref_metrics, graphed, graphed_metrics)


@pytest.mark.parametrize("method", ["local", "ring"])
def test_graph_stats_report_replays(tiny_task, method):
    """The per-run report proves the compiled path actually ran: one
    capture per shape, everything else replayed."""
    graphed, graphed_metrics = run(base_config(tiny_task, graph=True),
                                   method)
    stats = graphed.extra["graph_stats"]
    assert stats["captures"] >= 1
    assert stats["replays"] > stats["captures"]
    assert stats["fallbacks"] == 0
    counters = {r["name"]: r["value"] for r in graphed_metrics.collect()
                if r["name"].startswith("graph.")}
    assert counters["graph.replays"] == stats["replays"]
    assert counters["graph.captures"] == stats["captures"]


def test_hipress_falls_back_to_eager_with_counter(references, tiny_task):
    """DGC mutates gradients between backward and optimizer.step; the
    compiled program fuses those phases, so hipress must stay eager —
    and therefore be *exactly* the eager run — while recording an
    explicit fallback (``graph.fallbacks`` = 1) instead of silently
    dropping the flag."""
    ref, ref_metrics = references["hipress"]
    graphed, graphed_metrics = run(base_config(tiny_task, graph=True),
                                   "hipress")
    assert_differential(ref, ref_metrics, graphed, graphed_metrics)
    assert "graph_stats" not in ref.extra
    assert graphed.extra["graph_stats"] == {
        "captures": 0, "replays": 0, "eager_steps": 0, "fallbacks": 1}
    counters = {r["name"]: r["value"] for r in graphed_metrics.collect()
                if r["name"].startswith("graph.")}
    assert counters["graph.fallbacks"] == 1
    assert counters["graph.replays"] == 0


@pytest.mark.parametrize("precision", ["mixed", "int8"])
def test_mixed_precision_graph_is_differentially_identical(tiny_task,
                                                           precision):
    """Fig. 14's INT8-bearing precision modes with ``--graph``: the
    quantised step compiles too (stochastic-rounding RNG stream, EMA
    observer updates and master-weight correction replay bit-exactly),
    and nothing observable moves.  The per-precision stats prove the
    INT8 programs actually replayed rather than silently falling back."""
    options = SoCFlowOptions(precision=precision)
    ref, ref_metrics = run(base_config(tiny_task), "socflow", options)
    graphed, graphed_metrics = run(base_config(tiny_task, graph=True),
                                   "socflow", options)
    assert_differential(ref, ref_metrics, graphed, graphed_metrics)
    assert "graph_stats" not in ref.extra
    stats = graphed.extra["graph_stats"]
    assert stats["int8"]["captures"] >= 1
    assert stats["int8"]["replays"] > stats["int8"]["captures"]
    assert stats["int8"]["fallbacks"] == 0
    counters = {(r["name"], r["labels"].get("precision")): r["value"]
                for r in graphed_metrics.collect()
                if r["name"].startswith("graph.")}
    assert counters[("graph.replays", "int8")] == stats["int8"]["replays"]
    assert counters[("graph.int8_fallbacks", None)] == 0
    if precision == "mixed":
        assert stats["fp32"]["replays"] > 0
        assert counters[("graph.replays", "fp32")] == stats["fp32"]["replays"]


def test_workers_remain_bit_identical_with_graph(references, tiny_task):
    """SoCFlow with worker processes: each worker rebuilds its trainer
    (and its executor) from the pickled config; results must match the
    sequential graphed run, which matches eager."""
    ref, _ = references["socflow"]
    config = base_config(tiny_task, graph=True, workers=2)
    graphed, _ = run(config, "socflow")
    assert graphed.accuracy_history == ref.accuracy_history
    assert graphed.sim_time_s == ref.sim_time_s
    a, b = ref.extra["final_state"], graphed.extra["final_state"]
    for key in a:
        assert np.array_equal(a[key], b[key]), key


@pytest.mark.parametrize("method", ["ring", "socflow"])
def test_graph_runs_survive_faults_identically(tiny_task, method):
    """Crash + NIC flap under ``continue``: SoCFlow's re-grouping
    rebinds survivor parameter storage mid-run, which must invalidate
    captured programs (fallback), never corrupt them."""
    schedule = FaultSchedule((SoCCrash(1, 2),
                              NicDegradation(1, 0, 0.25, recover_epoch=2)))
    faulted = dict(fault_schedule=schedule, fault_mode="continue",
                   max_epochs=3)
    ref, ref_metrics = run(base_config(tiny_task, **faulted), method)
    graphed, graphed_metrics = run(
        base_config(tiny_task, graph=True, **faulted), method)
    assert_differential(ref, ref_metrics, graphed, graphed_metrics)
    assert graphed.extra.get("aborted", False) is False


def test_tracing_does_not_perturb_graph_runs(references, tiny_task):
    """The tracer observes the executor without changing it, and a
    graphed run emits a ``graph_replay`` span carrying the stats."""
    ref, _ = references["ring"]
    config = base_config(tiny_task, graph=True)
    traced_config = dataclasses.replace(
        config, telemetry=Telemetry(tracer=Tracer(),
                                    metrics=MetricsRegistry()))
    traced = build_strategy("ring").train(traced_config)
    assert traced.accuracy_history == ref.accuracy_history
    assert traced.sim_time_s == ref.sim_time_s
    spans = [r for r in traced_config.telemetry.tracer.records
             if r.name == "graph_replay"]
    assert len(spans) == 1
    assert spans[0].args["replays"] == traced.extra["graph_stats"]["replays"]
