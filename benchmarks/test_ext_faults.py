"""Extension: fault injection and recovery (ext-4).

The headline scenario kills 4 of 32 SoCs at epoch 1 and flaps one PCB
NIC mid-run.  SoCFlow rolls back to the last merged checkpoint,
re-forms groups over the survivors and finishes within 2 accuracy
points of the fault-free run, while the fail-stop baselines abort on
the first dead SoC.  A second scenario shrinks the group count
(heavier losses) and a sweep shows the simulated-time cost growing
with the crash count.

The group-size arithmetic behind the headline scenario: 7 groups at
32 SoCs means group size 4, so losing 4 SoCs leaves 28 survivors and
Eq. 1 re-selects exactly 7 groups — the data sharding (and hence the
learning dynamics) is conserved through the recovery.
"""

from conftest import EPOCHS, print_block

from repro.cluster import FaultSchedule, NicDegradation, SoCCrash
from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.harness import format_table, make_run_config

WORKLOAD = "vgg11"
SOCS = 32
GROUPS = 7          # group size 4: killing 4 SoCs preserves the count


def headline_schedule():
    """4 crashed SoCs at epoch 1 plus one PCB NIC flap at epoch 2."""
    crashes = tuple(SoCCrash(1, s) for s in (4, 5, 6, 7))
    flap = NicDegradation(2, pcb=2, multiplier=0.25, recover_epoch=3)
    return FaultSchedule(crashes + (flap,))


def config_with(schedule, fault_mode="fail-stop", epochs=EPOCHS):
    return make_run_config(WORKLOAD, "quick", num_socs=SOCS,
                           num_groups=GROUPS, max_epochs=epochs,
                           fault_schedule=schedule, fault_mode=fault_mode)


def test_socflow_survives_what_failstop_aborts(benchmark):
    def compute():
        clean = SoCFlow(SoCFlowOptions()).train(config_with(None))
        faulted = SoCFlow(SoCFlowOptions()).train(
            config_with(headline_schedule()))
        baselines = {m: build_strategy(m).train(
            config_with(headline_schedule())) for m in ("ring", "ps")}
        return clean, faulted, baselines

    clean, faulted, baselines = benchmark.pedantic(compute, rounds=1,
                                                   iterations=1)
    rows = [["socflow (fault-free)", "completed",
             round(100 * clean.final_accuracy, 1), clean.epochs_run],
            ["socflow (4 dead + NIC flap)", "recovered",
             round(100 * faulted.final_accuracy, 1), faulted.epochs_run]]
    for method, result in baselines.items():
        rows.append([f"{method} (fail-stop)",
                     "ABORTED" if result.extra["aborted"] else "completed",
                     round(100 * result.final_accuracy, 1),
                     result.epochs_run])
    print_block("ext-4: 4-of-32 SoCs killed + one PCB NIC flap",
                format_table(["run", "outcome", "final_acc_pct", "epochs"],
                             rows))

    # SoCFlow recovers: full epoch budget, accuracy within 2 points
    assert faulted.extra["aborted"] is False
    assert faulted.epochs_run == clean.epochs_run == EPOCHS
    assert len(faulted.extra["recoveries"]) == 1
    assert faulted.extra["final_num_groups"] == GROUPS
    assert abs(faulted.final_accuracy - clean.final_accuracy) <= 0.02
    # recovery is not free: rollback + degraded links cost simulated time
    assert faulted.sim_time_s > clean.sim_time_s
    assert faulted.extra["network_retries"] > 0
    # the fail-stop baselines die on the first dead SoC
    for result in baselines.values():
        assert result.extra["aborted"] is True
        assert result.extra["abort_epoch"] == 1
        assert result.epochs_run < EPOCHS


def test_heavy_losses_shrink_groups_but_finish(benchmark):
    def compute():
        crashes = tuple(SoCCrash(1, s) for s in range(12))
        return SoCFlow(SoCFlowOptions()).train(
            config_with(FaultSchedule(crashes)))

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_block("ext-4: 12-of-32 SoCs killed (group count shrinks)",
                format_table(["groups_after", "final_acc_pct", "epochs"],
                             [[result.extra["final_num_groups"],
                               round(100 * result.final_accuracy, 1),
                               result.epochs_run]]))
    # 20 survivors at group size 4 -> Eq. 1 re-selects 5 groups
    assert result.extra["final_num_groups"] == 5
    assert result.extra["aborted"] is False
    assert result.epochs_run == EPOCHS
    assert result.final_accuracy > 0.15


def test_fault_sweep_costs_grow_with_crash_count(benchmark):
    def compute():
        runs = {}
        for crashes in (0, 2, 4, 8):
            schedule = (FaultSchedule(tuple(SoCCrash(1, s)
                                            for s in range(crashes)))
                        if crashes else None)
            runs[crashes] = SoCFlow(SoCFlowOptions()).train(
                config_with(schedule))
        return runs

    runs = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[crashes, result.extra.get("final_num_groups", GROUPS),
             round(100 * result.final_accuracy, 1),
             round(result.sim_time_hours, 4)]
            for crashes, result in runs.items()]
    print_block("ext-4 sweep: crash count vs groups / accuracy / hours",
                format_table(["crashes", "groups", "final_acc_pct",
                              "hours"], rows))

    for crashes, result in runs.items():
        assert result.epochs_run == EPOCHS, crashes
    # dead SoCs never make the simulated run cheaper, and losses heavy
    # enough to shrink the group count cost strictly more
    times = [runs[c].sim_time_s for c in (0, 2, 4, 8)]
    assert all(t >= times[0] for t in times[1:])
    assert times[3] > times[0]
    assert runs[8].extra["final_num_groups"] < GROUPS
