"""Physical layout of the SoC-Cluster (Figure 2a/2c).

SoCs are numbered 0..M-1 and grouped into PCBs of ``socs_per_pcb``
(5 on the commercial server).  Every PCB shares one NIC toward the
central switch; all cross-PCB traffic serialises through the two PCB
NICs involved — the root cause of the paper's Observation #2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import SOC_REGISTRY, SoCSpec

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Static shape of one SoC-Cluster server."""

    num_socs: int = 60
    socs_per_pcb: int = 5
    soc: SoCSpec = field(default_factory=lambda: SOC_REGISTRY["sd865"])
    #: shared PCB NIC bandwidth, bits/s (1 Gbps on the real server)
    pcb_nic_bps: float = 1e9
    #: central switch backplane, bits/s (dual SFP+ = 20 Gbps)
    switch_bps: float = 20e9
    #: one-way per-message latency, seconds
    hop_latency_s: float = 0.5e-3
    #: per-participant collective startup cost (§2.3: preparing/starting a
    #: 32-SoC aggregation took 1300 ms, i.e. ~40 ms per SoC)
    startup_per_soc_s: float = 0.040

    def __post_init__(self):
        if self.num_socs <= 0 or self.socs_per_pcb <= 0:
            raise ValueError("num_socs and socs_per_pcb must be positive")

    @property
    def num_pcbs(self) -> int:
        return -(-self.num_socs // self.socs_per_pcb)

    def pcb_of(self, soc: int) -> int:
        if not 0 <= soc < self.num_socs:
            raise ValueError(f"SoC id {soc} out of range [0, {self.num_socs})")
        return soc // self.socs_per_pcb

    def socs_on_pcb(self, pcb: int) -> list[int]:
        if not 0 <= pcb < self.num_pcbs:
            raise ValueError(f"PCB id {pcb} out of range [0, {self.num_pcbs})")
        start = pcb * self.socs_per_pcb
        return list(range(start, min(start + self.socs_per_pcb,
                                     self.num_socs)))

    def same_pcb(self, a: int, b: int) -> bool:
        return self.pcb_of(a) == self.pcb_of(b)

    def crossings(self, socs: list[int]) -> int:
        """Number of PCBs a set of SoCs touches beyond the first."""
        return len({self.pcb_of(s) for s in socs}) - 1

    def restricted(self, num_socs: int) -> "ClusterTopology":
        """The same server using only the first ``num_socs`` chips."""
        if num_socs > self.num_socs:
            raise ValueError(f"server only has {self.num_socs} SoCs")
        return ClusterTopology(
            num_socs=num_socs, socs_per_pcb=self.socs_per_pcb, soc=self.soc,
            pcb_nic_bps=self.pcb_nic_bps, switch_bps=self.switch_bps,
            hop_latency_s=self.hop_latency_s,
            startup_per_soc_s=self.startup_per_soc_s)
