"""Admission control and fairness ordering of the job queue."""

import pytest

from repro.cluster import ClusterTopology
from repro.jobs import JobAdmissionError, JobQueue, TrainingJob

from .conftest import make_job


@pytest.fixture()
def queue():
    return JobQueue(ClusterTopology(num_socs=8),
                    known_workloads={"tiny", "vgg11"})


class TestAdmissionControl:
    def test_admits_valid_job(self, queue):
        entry = queue.submit(make_job("a"), hour=0.0)
        assert entry.job.id == "a"
        assert "a" in queue

    def test_rejects_duplicate_id(self, queue):
        queue.submit(make_job("a"), hour=0.0)
        with pytest.raises(JobAdmissionError, match="duplicate"):
            queue.submit(make_job("a"), hour=1.0)

    def test_rejects_oversized_floor(self, queue):
        with pytest.raises(JobAdmissionError, match="only has 8"):
            queue.submit(make_job("big", min_socs=9, max_socs=16), hour=0.0)

    def test_rejects_unknown_workload(self, queue):
        with pytest.raises(JobAdmissionError, match="unknown workload"):
            queue.submit(make_job("x", workload="gpt"), hour=0.0)

    def test_unknown_workloads_allowed_without_registry(self):
        queue = JobQueue(ClusterTopology(num_socs=8))
        queue.submit(make_job("x", workload="anything"), hour=0.0)
        assert len(queue) == 1


class TestOrdering:
    def test_priority_then_fifo(self, queue):
        queue.submit(make_job("low", priority=1), hour=0.0)
        queue.submit(make_job("high", priority=5), hour=1.0)
        queue.submit(make_job("low2", priority=1), hour=0.5)
        assert [e.job.id for e in queue.pending()] == ["high", "low", "low2"]

    def test_requeue_keeps_fairness_position(self, queue):
        first = queue.submit(make_job("first"), hour=0.0)
        queue.submit(make_job("second"), hour=1.0)
        queue.remove("first")
        queue.requeue(first)          # preempted much later
        assert [e.job.id for e in queue.pending()] == ["first", "second"]
        assert first.requeues == 1

    def test_remove_missing_raises(self, queue):
        with pytest.raises(KeyError):
            queue.remove("ghost")

    def test_len_and_bool(self, queue):
        assert not queue
        queue.submit(make_job("a"), hour=0.0)
        assert queue and len(queue) == 1
